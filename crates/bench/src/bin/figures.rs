//! Regenerates every figure and table of the paper's evaluation (§VI) and
//! the headline claims of the abstract. See `DESIGN.md` §3 for the index.
//!
//! Usage:
//!   cargo run --release -p swag-bench --bin figures -- all
//!   cargo run --release -p swag-bench --bin figures -- fig3 fig6c tab-desc
//!
//! Each experiment prints an aligned table and writes
//! `experiments/<id>.csv`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swag_bench::{experiments_dir, fmt_bytes, fmt_duration, pearson, time_per_call, ResultTable};
use swag_client::{compare_architectures, ClientPipeline, CrowdScenario, Uploader, VideoProfile};
use swag_core::similarity::{sim_parallel, sim_perp};
use swag_core::{
    abstract_segment, segment_video, similarity, vector_model_similarity, AveragingRule,
    CameraProfile, DescriptorCodec, Fov, RepFov, Segment, TimedFov,
};
use swag_geo::{angle_diff_deg, LatLon, LocalFrame, Vec2};
use swag_net::{plan_uploads, Connectivity, DataPlan, NetworkLink, UploadPolicy};
use swag_sensors::scenarios::{self, citywide_rep_fovs, CitywideConfig};
use swag_sensors::{generate_trace, DeviceClock, Mobility, SensorNoise, TraceConfig};
use swag_server::{CloudServer, FovIndex, IndexKind, Query, QueryOptions, SegmentId, SegmentRef};
use swag_utility::{global_utility, greedy_select, random_select, OnlineSelector, Priced};
use swag_vision::{
    estimate_rotation_deg, frame_diff_similarity, site_survey, suggest_view_radius, ColorHistogram,
    Frame, GridDescriptor, Renderer, Resolution, World,
};

const ALL: &[&str] = &[
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig6c",
    "tab-desc",
    "tab-acc",
    "tab-traffic",
    "tab-util",
    "tab-online",
    "tab-motion",
    "tab-arch",
    "ablation-thresh",
    "ablation-radius",
    "ablation-mean",
    "ablation-smoothing",
    "ablation-survey",
    "ablation-split",
    "ablation-granularity",
    "ablation-mbr",
    "ablation-simmodel",
    "tab-e2e",
    "tab-policy",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        let start = Instant::now();
        match id {
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6a" => fig6a(),
            "fig6b" => fig6b(),
            "fig6c" => fig6c(),
            "tab-desc" => tab_desc(),
            "tab-acc" => tab_acc(),
            "tab-traffic" => tab_traffic(),
            "tab-util" => tab_util(),
            "tab-online" => tab_online(),
            "tab-motion" => tab_motion(),
            "tab-arch" => tab_arch(),
            "ablation-granularity" => ablation_granularity(),
            "ablation-mbr" => ablation_mbr(),
            "tab-e2e" => tab_e2e(),
            "tab-policy" => tab_policy(),
            "ablation-simmodel" => ablation_simmodel(),
            "ablation-thresh" => ablation_thresh(),
            "ablation-radius" => ablation_radius(),
            "ablation-mean" => ablation_mean(),
            "ablation-smoothing" => ablation_smoothing(),
            "ablation-survey" => ablation_survey(),
            "ablation-split" => ablation_split(),
            other => {
                eprintln!("unknown experiment id '{other}'; known: {ALL:?}");
                std::process::exit(2);
            }
        }
        eprintln!("[{id} done in {}]", fmt_duration(start.elapsed()));
    }
}

fn finish(table: ResultTable) {
    table.print();
    match table.save_csv(&experiments_dir()) {
        Ok(path) => eprintln!("saved {}", path.display()),
        Err(e) => eprintln!("could not save CSV: {e}"),
    }
}

fn f(x: f64) -> String {
    format!("{x:.4}")
}

// ---------------------------------------------------------------------
// Fig. 3 — theoretical translation similarity model
// ---------------------------------------------------------------------
fn fig3() {
    let cam = CameraProfile::smartphone(); // α = 25°, R = 100 m
    let mut t = ResultTable::new("fig3", &["d_m", "sim_parallel", "sim_perp"]);
    let mut d = 0.0;
    while d <= 300.0 {
        t.row(vec![
            format!("{d:.0}"),
            f(sim_parallel(d, &cam)),
            f(sim_perp(d, &cam)),
        ]);
        d += 5.0;
    }
    finish(t);
    println!(
        "shape check: Sim_parallel stays positive (at 300 m: {:.3}); Sim_perp hits 0 at 2R·sinα = {:.1} m",
        sim_parallel(300.0, &cam),
        cam.perp_cutoff_m()
    );
}

// ---------------------------------------------------------------------
// Fig. 4 — translation similarity: theory vs noisy practice vs CV
// ---------------------------------------------------------------------
fn fig4() {
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());

    for (case, _look_off) in [("parallel", 0.0), ("perp", 90.0)] {
        let mut t = ResultTable::new(
            &format!("fig4-{case}"),
            &["d_m", "theory", "practice_noisy", "cv_frame_diff"],
        );
        // 60 s walk at 1.4 m/s, sampled once per second.
        let noisy = if case == "parallel" {
            scenarios::walk_parallel(60.0, &SensorNoise::smartphone(), 4)
        } else {
            scenarios::walk_perpendicular(60.0, &SensorNoise::smartphone(), 4)
        };
        let clean = if case == "parallel" {
            scenarios::walk_parallel(60.0, &SensorNoise::NONE, 4)
        } else {
            scenarios::walk_perpendicular(60.0, &SensorNoise::NONE, 4)
        };
        // CV similarity averaged over 4 world seeds to suppress
        // scene-specific baseline noise.
        let seeds = [11u64, 23, 37, 51];
        let samples: Vec<usize> = (0..=60).map(|s| (s * 25).min(clean.len() - 1)).collect();
        let mut cv = vec![0.0f64; samples.len()];
        for &seed in &seeds {
            let world = World::random_city(seed, 300.0, 400);
            let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);
            let base = pose_of(&clean[samples[0]], &frame);
            let frame0 = renderer.render(base.0, base.1, Resolution::P240);
            for (k, &i) in samples.iter().enumerate() {
                let p = pose_of(&clean[i], &frame);
                let img = renderer.render(p.0, p.1, Resolution::P240);
                cv[k] += frame_diff_similarity(&frame0, &img) / seeds.len() as f64;
            }
        }
        let f0_clean = clean[samples[0]].fov;
        let f0_noisy = noisy[0].fov;
        for (k, &i) in samples.iter().enumerate() {
            let d = 1.4 * (i as f64 / 25.0);
            let theory = similarity(&f0_clean, &clean[i].fov, &cam);
            // Practice: nearest noisy sample by time (dropout may have
            // removed the exact frame).
            let noisy_i = noisy
                .iter()
                .min_by(|a, b| {
                    (a.t - clean[i].t)
                        .abs()
                        .total_cmp(&(b.t - clean[i].t).abs())
                })
                .expect("non-empty trace");
            let practice = similarity(&f0_noisy, &noisy_i.fov, &cam);
            t.row(vec![format!("{d:.1}"), f(theory), f(practice), f(cv[k])]);
        }
        finish(t);
    }
}

fn pose_of(tf: &TimedFov, frame: &LocalFrame) -> (Vec2, f64) {
    (frame.to_local(tf.fov.p), tf.fov.theta)
}

// ---------------------------------------------------------------------
// Fig. 5 — FoV vs CV pairwise-similarity matrices (3 scenarios)
// ---------------------------------------------------------------------
fn fig5() {
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());
    let world = World::random_city(5, 400.0, 500);
    let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);

    let mut summary = ResultTable::new(
        "fig5-summary",
        &[
            "case",
            "n_poses",
            "pearson_fov_vs_cv",
            "fov_offdiag_zero_frac",
        ],
    );
    let cases: Vec<(&str, Vec<TimedFov>)> = vec![
        (
            "rotation",
            scenarios::rotate_in_place(36.0, 5.0, &SensorNoise::NONE, 1),
        ),
        (
            "translation-drive",
            scenarios::drive_straight(30.0, 8.0, &SensorNoise::NONE, 2),
        ),
        (
            "reality-bike-turn",
            scenarios::bike_ride_with_turn(100.0, 4.0, &SensorNoise::NONE, 3),
        ),
    ];
    for (name, trace) in cases {
        // Subsample one pose per second.
        let poses: Vec<TimedFov> = trace.iter().step_by(25).copied().collect();
        let n = poses.len();
        let frames: Vec<Frame> = poses
            .iter()
            .map(|p| {
                let (pos, az) = pose_of(p, &frame);
                renderer.render(pos, az, Resolution::P240)
            })
            .collect();

        let mut mat = ResultTable::new(&format!("fig5-{name}"), &["i", "j", "fov_sim", "cv_sim"]);
        let mut fov_flat = Vec::with_capacity(n * n);
        let mut cv_flat = Vec::with_capacity(n * n);
        let mut zeros = 0usize;
        for i in 0..n {
            for j in 0..n {
                let fs = similarity(&poses[i].fov, &poses[j].fov, &cam);
                let cs = frame_diff_similarity(&frames[i], &frames[j]);
                fov_flat.push(fs);
                cv_flat.push(cs);
                if i != j && fs == 0.0 {
                    zeros += 1;
                }
                mat.row(vec![i.to_string(), j.to_string(), f(fs), f(cs)]);
            }
        }
        let r = pearson(&fov_flat, &cv_flat);
        summary.row(vec![
            name.into(),
            n.to_string(),
            f(r),
            f(zeros as f64 / (n * n - n) as f64),
        ]);
        let _ = mat.save_csv(&experiments_dir());
    }
    finish(summary);
}

// ---------------------------------------------------------------------
// Fig. 6(a) — segmentation cost: FoV vs CV across resolutions
// ---------------------------------------------------------------------
fn fig6a() {
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());
    let world = World::random_city(9, 300.0, 300);
    let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);

    // 10 s of video at 25 fps.
    let full = scenarios::city_walk(6, 2, &SensorNoise::NONE);
    let trace = &full[..250.min(full.len())];

    // FoV-based segmentation cost (the whole algorithm).
    let fov_time = time_per_call(100, || {
        std::hint::black_box(segment_video(trace, &cam, 0.5));
    });

    let mut t = ResultTable::new(
        "fig6a",
        &[
            "method",
            "resolution",
            "video_s",
            "seg_time_total",
            "per_frame_us",
            "vs_fov",
        ],
    );
    t.row(vec![
        "FoV".into(),
        "-".into(),
        "10".into(),
        fmt_duration(fov_time),
        format!(
            "{:.3}",
            fov_time.as_nanos() as f64 / 1e3 / trace.len() as f64
        ),
        "1x".into(),
    ]);

    for res in Resolution::ALL {
        // CV segmentation: anchor differencing over the same 250 frames.
        // Frames are rendered outside the timed region (rendering stands
        // in for camera capture, which both methods share); only the
        // similarity computation — the part the descriptor choice
        // controls — is timed.
        let mut anchor: Option<Frame> = None;
        let mut cv_total = std::time::Duration::ZERO;
        for tf in trace {
            let (pos, az) = pose_of(tf, &frame);
            let img = renderer.render(pos, az, res);
            match &anchor {
                None => anchor = Some(img),
                Some(a) => {
                    let start = Instant::now();
                    let sim = frame_diff_similarity(a, &img);
                    cv_total += start.elapsed();
                    if sim < 0.8 {
                        anchor = Some(img);
                    }
                }
            }
        }
        let per_frame = cv_total.as_nanos() as f64 / 1e3 / trace.len() as f64;
        let slowdown = cv_total.as_nanos() as f64 / fov_time.as_nanos() as f64;
        t.row(vec![
            "CV-frame-diff".into(),
            res.label().into(),
            "10".into(),
            fmt_duration(cv_total),
            format!("{per_frame:.1}"),
            format!("{slowdown:.0}x slower"),
        ]);
    }
    finish(t);
}

// ---------------------------------------------------------------------
// Fig. 6(b) — index build time vs number of records
// ---------------------------------------------------------------------
fn fig6b() {
    let cfg = CitywideConfig::default();
    let mut t = ResultTable::new(
        "fig6b",
        &[
            "records",
            "insert_total",
            "per_insert_us",
            "bulk_load_total",
        ],
    );
    for n in [1_000usize, 2_000, 5_000, 10_000, 20_000, 50_000] {
        let reps = citywide_rep_fovs(n, &cfg, 42);
        let start = Instant::now();
        let mut index = FovIndex::new(IndexKind::RTree);
        for (i, rep) in reps.iter().enumerate() {
            index.insert(rep, SegmentId(i as u32));
        }
        let incr = start.elapsed();

        let items: Vec<(RepFov, SegmentId)> = reps
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, SegmentId(i as u32)))
            .collect();
        let start = Instant::now();
        let bulk = FovIndex::bulk_load(items);
        let bulk_time = start.elapsed();
        assert_eq!(bulk.len(), n);

        t.row(vec![
            n.to_string(),
            fmt_duration(incr),
            format!("{:.2}", incr.as_nanos() as f64 / 1e3 / n as f64),
            fmt_duration(bulk_time),
        ]);
    }
    finish(t);
    println!("paper check: 20 000 inserts complete well under the paper's 20 s");
}

// ---------------------------------------------------------------------
// Fig. 6(c) — query latency: R-tree vs linear scan vs data size
// ---------------------------------------------------------------------
fn fig6c() {
    let cfg = CitywideConfig::default();
    let frame = LocalFrame::new(scenarios::default_origin());
    let mut t = ResultTable::new(
        "fig6c",
        &[
            "records",
            "rtree_query_us",
            "linear_query_us",
            "rtree_speedup",
            "mean_hits",
        ],
    );
    let mut rng = StdRng::seed_from_u64(7);
    for n in [500usize, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000] {
        let reps = citywide_rep_fovs(n, &cfg, 42);
        let mut rtree = FovIndex::new(IndexKind::RTree);
        let mut linear = FovIndex::new(IndexKind::Linear);
        for (i, rep) in reps.iter().enumerate() {
            rtree.insert(rep, SegmentId(i as u32));
            linear.insert(rep, SegmentId(i as u32));
        }
        // 200 random queries: 200 m radius, 1-hour window.
        let queries: Vec<Query> = (0..200)
            .map(|_| {
                let pos = frame.from_local(Vec2::new(
                    rng.random_range(-cfg.extent_m..cfg.extent_m),
                    rng.random_range(-cfg.extent_m..cfg.extent_m),
                ));
                let t0 = rng.random_range(0.0..cfg.time_window_s - 3600.0);
                Query::new(t0, t0 + 3600.0, pos, 200.0)
            })
            .collect();

        let mut hits_total = 0usize;
        let rtree_time = time_per_call(1, || {
            for q in &queries {
                hits_total += rtree.candidates(q).len();
            }
        }) / queries.len() as u32;
        let linear_time = time_per_call(1, || {
            for q in &queries {
                std::hint::black_box(linear.candidates(q));
            }
        }) / queries.len() as u32;

        t.row(vec![
            n.to_string(),
            format!("{:.2}", rtree_time.as_nanos() as f64 / 1e3),
            format!("{:.2}", linear_time.as_nanos() as f64 / 1e3),
            format!(
                "{:.1}x",
                linear_time.as_nanos() as f64 / rtree_time.as_nanos().max(1) as f64
            ),
            format!("{:.1}", hits_total as f64 / queries.len() as f64),
        ]);
    }
    finish(t);
    println!("paper check: R-tree queries stay far below 100 ms at 50 000 segments");
}

// ---------------------------------------------------------------------
// tab-desc — descriptor size & extract/match cost
// ---------------------------------------------------------------------
fn tab_desc() {
    let cam = CameraProfile::smartphone();
    let world = World::random_city(3, 300.0, 300);
    let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);
    let res = Resolution::P720;
    let img_a = renderer.render(Vec2::ZERO, 0.0, res);
    let img_b = renderer.render(Vec2::new(5.0, 5.0), 10.0, res);

    // FoV "extraction" = segment abstraction of a 1 s segment (25 frames).
    let seg = Segment {
        fovs: (0..25)
            .map(|i| {
                TimedFov::new(
                    f64::from(i) / 25.0,
                    Fov::new(LatLon::new(40.0, 116.32), f64::from(i)),
                )
            })
            .collect(),
    };
    let fov_extract = time_per_call(10_000, || {
        std::hint::black_box(abstract_segment(&seg, AveragingRule::Circular));
    });
    let f1 = Fov::new(LatLon::new(40.0, 116.32), 10.0);
    let f2 = Fov::new(LatLon::new(40.0005, 116.3205), 40.0);
    let fov_match = time_per_call(100_000, || {
        std::hint::black_box(similarity(&f1, &f2, &cam));
    });

    let hist_extract = time_per_call(20, || {
        std::hint::black_box(ColorHistogram::from_frame(&img_a, 8));
    });
    let ha = ColorHistogram::from_frame(&img_a, 8);
    let hb = ColorHistogram::from_frame(&img_b, 8);
    let hist_match = time_per_call(10_000, || {
        std::hint::black_box(ha.intersection_similarity(&hb));
    });

    let grid_extract = time_per_call(10, || {
        std::hint::black_box(GridDescriptor::extract(&img_a, 4));
    });
    let ga = GridDescriptor::extract(&img_a, 4);
    let gb = GridDescriptor::extract(&img_b, 4);
    let grid_match = time_per_call(10_000, || {
        std::hint::black_box(ga.matches(&gb, 0.8));
    });

    let mut t = ResultTable::new(
        "tab-desc",
        &[
            "descriptor",
            "size_bytes",
            "extract",
            "match",
            "extract_vs_fov",
            "match_vs_fov",
        ],
    );
    t.row(vec![
        "FoV (ours)".into(),
        DescriptorCodec::RECORD_SIZE.to_string(),
        fmt_duration(fov_extract),
        fmt_duration(fov_match),
        "1x".into(),
        "1x".into(),
    ]);
    t.row(vec![
        "color-histogram (global)".into(),
        ha.byte_size().to_string(),
        fmt_duration(hist_extract),
        fmt_duration(hist_match),
        format!(
            "{:.0}x",
            hist_extract.as_nanos() as f64 / fov_extract.as_nanos().max(1) as f64
        ),
        format!(
            "{:.0}x",
            hist_match.as_nanos() as f64 / fov_match.as_nanos().max(1) as f64
        ),
    ]);
    t.row(vec![
        "SIFT-like grid (local)".into(),
        ga.byte_size().to_string(),
        fmt_duration(grid_extract),
        fmt_duration(grid_match),
        format!(
            "{:.0}x",
            grid_extract.as_nanos() as f64 / fov_extract.as_nanos().max(1) as f64
        ),
        format!(
            "{:.0}x",
            grid_match.as_nanos() as f64 / fov_match.as_nanos().max(1) as f64
        ),
    ]);
    finish(t);
}

// ---------------------------------------------------------------------
// tab-acc — retrieval accuracy vs content-based ground truth
// ---------------------------------------------------------------------
fn tab_acc() {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let world = World::random_city(3, 600.0, 2000);
    let server = CloudServer::new(cam);
    let reps = citywide_rep_fovs(
        600,
        &CitywideConfig {
            extent_m: 500.0,
            time_window_s: 600.0,
            min_segment_s: 5.0,
            max_segment_s: 30.0,
        },
        21,
    );
    for (i, rep) in reps.iter().enumerate() {
        server.ingest_one(
            *rep,
            SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            },
        );
    }

    let mut rng = StdRng::seed_from_u64(99);
    let mut t = ResultTable::new(
        "tab-acc",
        &["query", "hits", "relevant", "precision", "recall", "f1"],
    );
    let (mut sp, mut sr, mut nq) = (0.0, 0.0, 0u32);
    for qi in 0..20 {
        let target_local = Vec2::new(
            rng.random_range(-350.0..350.0),
            rng.random_range(-350.0..350.0),
        );
        let query = Query::new(0.0, 600.0, frame.from_local(target_local), 100.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            require_coverage: true,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&query, &opts);
        let got: Vec<u64> = hits.iter().map(|h| h.source.provider_id).collect();

        let near: Vec<usize> = world
            .landmarks()
            .iter()
            .enumerate()
            .filter(|(_, lm)| (lm.position - target_local).norm() <= query.radius_m)
            .map(|(i, _)| i)
            .collect();
        // Content-relevant AND spatially retrievable under the paper's
        // query semantics (position within the query radius).
        let relevant: Vec<u64> = reps
            .iter()
            .enumerate()
            .filter(|(_, rep)| {
                (frame.to_local(rep.fov.p) - target_local).norm() <= query.radius_m
                    && world
                        .visible_landmarks(
                            frame.to_local(rep.fov.p),
                            rep.fov.theta,
                            cam.half_angle_deg,
                            cam.view_radius_m,
                        )
                        .iter()
                        .any(|i| near.contains(i))
            })
            .map(|(i, _)| i as u64)
            .collect();
        if relevant.is_empty() && got.is_empty() {
            continue;
        }
        let tp = got.iter().filter(|id| relevant.contains(id)).count() as f64;
        let precision = if got.is_empty() {
            1.0
        } else {
            tp / got.len() as f64
        };
        let recall = if relevant.is_empty() {
            1.0
        } else {
            tp / relevant.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        sp += precision;
        sr += recall;
        nq += 1;
        t.row(vec![
            qi.to_string(),
            got.len().to_string(),
            relevant.len().to_string(),
            f(precision),
            f(recall),
            f(f1),
        ]);
    }
    t.row(vec![
        "MEAN".into(),
        "-".into(),
        "-".into(),
        f(sp / f64::from(nq)),
        f(sr / f64::from(nq)),
        "-".into(),
    ]);
    finish(t);
}

// ---------------------------------------------------------------------
// tab-traffic — descriptor vs raw-video traffic
// ---------------------------------------------------------------------
fn tab_traffic() {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise::smartphone();
    let plan = DataPlan::metered();

    let mut descriptor_bytes = 0usize;
    let mut segments = 0usize;
    let mut recording_s = 0.0;
    for provider in 0..30u64 {
        let mobility = Mobility::random_waypoint(provider, 400.0, 6, 1.4);
        let duration = mobility
            .natural_duration_s()
            .expect("bounded path")
            .min(300.0);
        let cfg = TraceConfig::new(25.0, duration);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &cfg,
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let result = ClientPipeline::process_trace(cam, 0.5, &trace);
        segments += result.segment_count();
        let mut uploader = Uploader::new(provider);
        let (wire, _) = uploader.upload(result.reps).unwrap();
        descriptor_bytes += wire.len();
        recording_s += duration;
    }

    let mut t = ResultTable::new(
        "tab-traffic",
        &["what", "bytes", "vs_fov", "time_3g", "time_4g", "cost"],
    );
    t.row(vec![
        "FoV descriptors (30 providers)".into(),
        descriptor_bytes.to_string(),
        "1x".into(),
        format!(
            "{:.2} s",
            NetworkLink::cellular_3g().transfer_time_s(descriptor_bytes)
        ),
        format!(
            "{:.2} s",
            NetworkLink::cellular_4g().transfer_time_s(descriptor_bytes)
        ),
        format!("{:.5}", plan.cost(descriptor_bytes)),
    ]);
    for profile in [VideoProfile::P360, VideoProfile::P720, VideoProfile::P1080] {
        let video = profile.encoded_bytes(recording_s) as usize;
        t.row(vec![
            format!("raw video upload ({})", profile.label),
            video.to_string(),
            format!("{:.0}x", video as f64 / descriptor_bytes as f64),
            format!("{:.0} s", NetworkLink::cellular_3g().transfer_time_s(video)),
            format!("{:.0} s", NetworkLink::cellular_4g().transfer_time_s(video)),
            format!("{:.2}", plan.cost(video)),
        ]);
    }
    finish(t);
    println!(
        "{segments} segments over {:.0} min of footage; {} bytes/segment on the wire",
        recording_s / 60.0,
        descriptor_bytes / segments.max(1)
    );
}

// ---------------------------------------------------------------------
// tab-util — incentive mechanism: greedy vs random under budget
// ---------------------------------------------------------------------
fn tab_util() {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let mut rng = StdRng::seed_from_u64(2015);
    let offers: Vec<Priced> = (0..50)
        .map(|_| {
            let theta = rng.random_range(0.0..360.0);
            let t0 = rng.random_range(0.0..100.0);
            let dur = rng.random_range(5.0..30.0);
            let pos = origin.offset(rng.random_range(0.0..360.0), rng.random_range(10.0..80.0));
            Priced {
                rep: RepFov::new(t0, t0 + dur, Fov::new(pos, theta)),
                price: rng.random_range(0.5..4.0),
            }
        })
        .collect();
    let (t0, t1) = (0.0, 120.0);
    let total = global_utility(t0, t1);

    let mut t = ResultTable::new(
        "tab-util",
        &[
            "budget",
            "greedy_utility",
            "random_utility",
            "greedy_pct",
            "random_pct",
            "gain",
        ],
    );
    for budget in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0] {
        let greedy = greedy_select(&offers, &cam, t0, t1, budget);
        let mut acc = 0.0;
        for s in 0..20u64 {
            let mut order: Vec<usize> = (0..offers.len()).collect();
            let mut r2 = StdRng::seed_from_u64(s);
            for i in (1..order.len()).rev() {
                order.swap(i, r2.random_range(0..=i));
            }
            acc += random_select(&offers, &order, &cam, t0, t1, budget).utility;
        }
        let rnd = acc / 20.0;
        t.row(vec![
            format!("{budget:.0}"),
            format!("{:.0}", greedy.utility),
            format!("{rnd:.0}"),
            format!("{:.1}%", 100.0 * greedy.utility / total),
            format!("{:.1}%", 100.0 * rnd / total),
            format!("{:.2}x", greedy.utility / rnd.max(1e-9)),
        ]);
    }
    finish(t);
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------
fn ablation_thresh() {
    let cam = CameraProfile::smartphone();
    let trace = scenarios::city_walk(12, 10, &SensorNoise::smartphone());
    let duration = trace.last().expect("non-empty").t - trace[0].t;
    let mut t = ResultTable::new(
        "ablation-thresh",
        &["thresh", "segments", "mean_seg_s", "upload_bytes"],
    );
    for thresh in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let segs = segment_video(&trace, &cam, thresh);
        let bytes = DescriptorCodec::batch_size(segs.len());
        t.row(vec![
            format!("{thresh:.1}"),
            segs.len().to_string(),
            format!("{:.2}", duration / segs.len() as f64),
            bytes.to_string(),
        ]);
    }
    finish(t);
    println!("paper §VII check: larger threshold ⇒ denser segmentation");
}

fn ablation_radius() {
    let mut t = ResultTable::new(
        "ablation-radius",
        &[
            "R_m",
            "d_half_parallel",
            "d_half_perp",
            "perp_cutoff",
            "segments_on_walk",
        ],
    );
    let trace = scenarios::walk_parallel(120.0, &SensorNoise::NONE, 3);
    for r in [20.0, 50.0, 100.0, 200.0] {
        let cam = CameraProfile::new(25.0, r);
        // Distance at which similarity first drops below 0.5.
        let half = |f: &dyn Fn(f64) -> f64| {
            let mut d = 0.0;
            while f(d) > 0.5 && d < 10_000.0 {
                d += 0.5;
            }
            d
        };
        let dp = half(&|d| sim_parallel(d, &cam));
        let dv = half(&|d| sim_perp(d, &cam));
        let segs = segment_video(&trace, &cam, 0.5).len();
        t.row(vec![
            format!("{r:.0}"),
            format!("{dp:.1}"),
            format!("{dv:.1}"),
            format!("{:.1}", cam.perp_cutoff_m()),
            segs.to_string(),
        ]);
    }
    finish(t);
    println!("paper §VII check: similarity decays slower for larger R (fewer segments)");
}

fn ablation_mean() {
    // A camera panning across north (350° → 10°): the arithmetic mean of
    // eq. 11 points the representative FoV south; the circular mean stays
    // north.
    let trace: Vec<TimedFov> = (0..41)
        .map(|i| {
            TimedFov::new(
                f64::from(i) / 25.0,
                Fov::new(
                    LatLon::new(40.0, 116.32),
                    swag_geo::normalize_deg(350.0 + 0.5 * f64::from(i)),
                ),
            )
        })
        .collect();
    let seg = Segment { fovs: trace };
    let true_mean = 0.0; // midpoint of 350°..10°
    let mut t = ResultTable::new("ablation-mean", &["rule", "rep_theta", "error_deg"]);
    for (name, rule) in [
        ("arithmetic (paper eq. 11)", AveragingRule::Arithmetic),
        ("circular (ours)", AveragingRule::Circular),
    ] {
        let rep = abstract_segment(&seg, rule);
        t.row(vec![
            name.into(),
            format!("{:.2}", rep.fov.theta),
            format!("{:.2}", angle_diff_deg(rep.fov.theta, true_mean)),
        ]);
    }
    finish(t);
}

// ---------------------------------------------------------------------
// tab-online — online (zero arrival-departure) incentive vs offline greedy
// ---------------------------------------------------------------------
fn tab_online() {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let mut rng = StdRng::seed_from_u64(77);
    let offers: Vec<Priced> = (0..60)
        .map(|_| {
            let theta = rng.random_range(0.0..360.0);
            let t0 = rng.random_range(0.0..100.0);
            let dur = rng.random_range(5.0..30.0);
            let pos = origin.offset(rng.random_range(0.0..360.0), rng.random_range(10.0..80.0));
            Priced {
                rep: RepFov::new(t0, t0 + dur, Fov::new(pos, theta)),
                price: rng.random_range(0.5..4.0),
            }
        })
        .collect();
    let (t0, t1) = (0.0, 120.0);
    let budget = 15.0;
    let offline = greedy_select(&offers, &cam, t0, t1, budget);

    let mut t = ResultTable::new(
        "tab-online",
        &[
            "density_threshold",
            "accepted",
            "spent",
            "utility",
            "pct_of_offline_greedy",
        ],
    );
    for threshold in [0.0, 50.0, 100.0, 200.0, 400.0, 800.0] {
        let mut sel = OnlineSelector::new(cam, t0, t1, budget, threshold);
        for o in &offers {
            sel.offer(o);
        }
        t.row(vec![
            format!("{threshold:.0}"),
            sel.chosen().len().to_string(),
            format!("{:.1}", sel.spent()),
            format!("{:.0}", sel.utility()),
            format!("{:.0}%", 100.0 * sel.utility() / offline.utility),
        ]);
    }
    t.row(vec![
        "offline greedy".into(),
        offline.chosen.len().to_string(),
        format!("{:.1}", offline.spent),
        format!("{:.0}", offline.utility),
        "100%".into(),
    ]);
    finish(t);
}

// ---------------------------------------------------------------------
// tab-motion — sensor readout vs CV rotation estimation
// ---------------------------------------------------------------------
fn tab_motion() {
    let cam = CameraProfile::smartphone();
    let world = World::random_city(7, 250.0, 200);
    let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);
    let base = renderer.render(Vec2::ZERO, 0.0, Resolution::P240);

    let mut t = ResultTable::new(
        "tab-motion",
        &[
            "true_rot_deg",
            "cv_estimate_deg",
            "cv_error_deg",
            "cv_cost",
            "sensor_cost",
        ],
    );
    // Sensor "cost": reading the compass field from the frame record.
    let f1 = Fov::new(LatLon::new(40.0, 116.32), 0.0);
    let sensor_cost = time_per_call(100_000, || {
        std::hint::black_box(f1.theta);
    });
    for true_rot in [1.0, 3.0, 5.0, 10.0, 15.0, -5.0] {
        let turned = renderer.render(Vec2::ZERO, true_rot, Resolution::P240);
        let mut est = 0.0;
        let cv_cost = time_per_call(5, || {
            est = estimate_rotation_deg(&base, &turned, cam.half_angle_deg);
        });
        t.row(vec![
            format!("{true_rot:.1}"),
            format!("{est:.2}"),
            format!("{:.2}", (est - true_rot).abs()),
            fmt_duration(cv_cost),
            fmt_duration(sensor_cost),
        ]);
    }
    finish(t);
    println!("the compass delivers rotation for free; CV must cross-correlate pixels for it");
}

// ---------------------------------------------------------------------
// ablation-smoothing — sensor smoothing vs segment inflation under noise
// ---------------------------------------------------------------------
fn ablation_smoothing() {
    use swag_sensors::Look;
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());
    let mobility = Mobility::StraightLine {
        start: Vec2::ZERO,
        heading_deg: 0.0,
        speed_mps: 1.4,
        look: Look::Heading,
    };
    let mut t = ResultTable::new(
        "ablation-smoothing",
        &[
            "gps_sigma_m",
            "compass_sigma_deg",
            "segments_raw",
            "segments_smoothed",
            "segments_clean",
        ],
    );
    for (gps, compass) in [(0.0, 0.0), (1.0, 2.0), (3.0, 5.0), (5.0, 8.0), (10.0, 15.0)] {
        let noise = SensorNoise {
            gps_sigma_m: gps,
            compass_sigma_deg: compass,
            dropout_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, 120.0),
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let raw = ClientPipeline::process_trace(cam, 0.6, &trace).segment_count();
        let smoothed =
            ClientPipeline::process_trace_smoothed(cam, 0.6, 0.15, &trace).segment_count();
        let mut rng = StdRng::seed_from_u64(8);
        let clean_trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, 120.0),
            &SensorNoise::NONE,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let clean = ClientPipeline::process_trace(cam, 0.6, &clean_trace).segment_count();
        t.row(vec![
            format!("{gps:.0}"),
            format!("{compass:.0}"),
            raw.to_string(),
            smoothed.to_string(),
            clean.to_string(),
        ]);
    }
    finish(t);
    println!("EMA smoothing recovers most of the noise-induced segment inflation");
}

// ---------------------------------------------------------------------
// ablation-survey — adaptive radius of view from site surveys (§VII)
// ---------------------------------------------------------------------
fn ablation_survey() {
    let mut t = ResultTable::new(
        "ablation-survey",
        &[
            "environment",
            "median_sight_m",
            "p90_sight_m",
            "open_frac",
            "suggested_R_m",
        ],
    );
    let cases: Vec<(&str, World)> = vec![
        ("open field", World::new(vec![])),
        ("suburb (sparse)", World::random_city(1, 400.0, 60)),
        ("downtown (dense)", World::random_city(2, 200.0, 600)),
        ("alley (very dense)", World::random_city(3, 80.0, 600)),
    ];
    for (name, world) in cases {
        let r = site_survey(&world, Vec2::ZERO, 144, 300.0);
        t.row(vec![
            name.into(),
            format!("{:.0}", r.median_visible_m),
            format!("{:.0}", r.p90_visible_m),
            format!("{:.2}", r.open_fraction),
            format!("{:.0}", suggest_view_radius(&world, Vec2::ZERO)),
        ]);
    }
    finish(t);
    println!("denser environments yield shorter sight lines and smaller suggested R (paper SVII)");
}

// ---------------------------------------------------------------------
// ablation-split — R-tree split strategies on the FoV workload
// ---------------------------------------------------------------------
fn ablation_split() {
    use swag_rtree::{RTree, RTreeConfig, SplitStrategy};
    let cfg = CitywideConfig::default();
    let reps = citywide_rep_fovs(20_000, &cfg, 42);
    let items: Vec<(swag_rtree::Aabb<3>, u32)> = reps
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                swag_rtree::Aabb::new(
                    [r.fov.p.lng, r.fov.p.lat, r.t_start],
                    [r.fov.p.lng, r.fov.p.lat, r.t_end],
                ),
                i as u32,
            )
        })
        .collect();
    let frame = LocalFrame::new(scenarios::default_origin());
    let mut rng = StdRng::seed_from_u64(5);
    let queries: Vec<swag_rtree::Aabb<3>> = (0..500)
        .map(|_| {
            let c = frame.from_local(Vec2::new(
                rng.random_range(-cfg.extent_m..cfg.extent_m),
                rng.random_range(-cfg.extent_m..cfg.extent_m),
            ));
            let t0 = rng.random_range(0.0..cfg.time_window_s - 3600.0);
            let dl = 200.0 / swag_geo::METERS_PER_DEG;
            swag_rtree::Aabb::new(
                [c.lng - dl, c.lat - dl, t0],
                [c.lng + dl, c.lat + dl, t0 + 3600.0],
            )
        })
        .collect();

    let mut t = ResultTable::new(
        "ablation-split",
        &["strategy", "build", "nodes", "height", "query_500_total"],
    );
    for (name, strategy, reinsert) in [
        ("quadratic", SplitStrategy::Quadratic, 0.0),
        ("linear", SplitStrategy::Linear, 0.0),
        ("rstar", SplitStrategy::RStar, 0.0),
        ("rstar+reinsert", SplitStrategy::RStar, 0.3),
    ] {
        let start = Instant::now();
        let mut tree: RTree<u32, 3> = RTree::with_config(RTreeConfig {
            split: strategy,
            reinsert_fraction: reinsert,
            ..RTreeConfig::default()
        });
        for (mbr, v) in items.iter() {
            tree.insert(*mbr, *v);
        }
        let build = start.elapsed();
        let stats = tree.stats();
        let start = Instant::now();
        let mut hits = 0usize;
        for q in &queries {
            hits += tree.search(q).len();
        }
        let qt = start.elapsed();
        t.row(vec![
            name.into(),
            fmt_duration(build),
            stats.nodes.to_string(),
            stats.height.to_string(),
            format!("{} ({} hits)", fmt_duration(qt), hits),
        ]);
    }
    // STR bulk as reference.
    let start = Instant::now();
    let tree = RTree::bulk_load(items);
    let build = start.elapsed();
    let stats = tree.stats();
    let start = Instant::now();
    let mut hits = 0usize;
    for q in &queries {
        hits += tree.search(q).len();
    }
    let qt = start.elapsed();
    t.row(vec![
        "bulk STR".into(),
        fmt_duration(build),
        stats.nodes.to_string(),
        stats.height.to_string(),
        format!("{} ({} hits)", fmt_duration(qt), hits),
    ]);
    finish(t);
}

// ---------------------------------------------------------------------
// tab-arch — data-centric vs query-centric vs content-free (paper §I)
// ---------------------------------------------------------------------
fn tab_arch() {
    // Measure the two cost parameters on this machine.
    let world = World::random_city(3, 300.0, 300);
    let renderer = Renderer::new(&world, 25.0, 100.0);
    let a = renderer.render(Vec2::ZERO, 0.0, Resolution::P240);
    let b = renderer.render(Vec2::new(3.0, 3.0), 5.0, Resolution::P240);
    let cv_cost = time_per_call(50, || {
        std::hint::black_box(frame_diff_similarity(&a, &b));
    })
    .as_secs_f64();

    let cfg = CitywideConfig::default();
    let reps = citywide_rep_fovs(100 * 80, &cfg, 42); // the scenario's segment count
    let mut index = FovIndex::new(IndexKind::RTree);
    for (i, rep) in reps.iter().enumerate() {
        index.insert(rep, SegmentId(i as u32));
    }
    let frame = LocalFrame::new(scenarios::default_origin());
    let q = Query::new(
        0.0,
        3600.0,
        frame.from_local(Vec2::new(100.0, 100.0)),
        200.0,
    );
    let fov_cost = time_per_call(200, || {
        std::hint::black_box(index.candidates(&q));
    })
    .as_secs_f64();

    let scenario = CrowdScenario {
        providers: 100,
        video_seconds_per_provider: 600.0,
        video_profile: VideoProfile::P720,
        fps: 25.0,
        segments_per_provider: 80,
        hit_segments_per_query: 10,
        mean_segment_s: 8.0,
        cv_match_cost_per_frame_s: cv_cost,
        fov_query_cost_s: fov_cost,
        query_bytes: 64,
    };
    println!(
        "scenario: 100 providers x 10 min of 720p; measured cv={:.0} us/frame, fov query={:.1} us",
        cv_cost * 1e6,
        fov_cost * 1e6
    );

    let mut t = ResultTable::new(
        "tab-arch",
        &[
            "architecture",
            "upfront_upload",
            "per_query_bytes",
            "client_cpu/query",
            "server_cpu/query",
        ],
    );
    for cost in compare_architectures(&scenario) {
        t.row(vec![
            cost.name.into(),
            fmt_bytes(cost.upfront_upload_bytes),
            fmt_bytes(cost.per_query_bytes),
            fmt_duration(std::time::Duration::from_secs_f64(
                cost.per_query_client_cpu_s,
            )),
            fmt_duration(std::time::Duration::from_secs_f64(
                cost.per_query_server_cpu_s,
            )),
        ]);
    }
    finish(t);
    println!("paper SI: neither classic architecture is practical; content-free avoids both costs");
}

// ---------------------------------------------------------------------
// ablation-granularity — frame-level vs segment-level indexing
// ---------------------------------------------------------------------
fn ablation_granularity() {
    // One hour of crowd footage at 25 fps, segmented at thresh 0.5.
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());
    let noise = SensorNoise::smartphone();
    let mut frame_level: Vec<RepFov> = Vec::new();
    let mut segment_level: Vec<RepFov> = Vec::new();
    for provider in 0..20u64 {
        let mobility = Mobility::random_waypoint(provider, 600.0, 5, 1.4);
        let duration = mobility.natural_duration_s().expect("bounded").min(180.0);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, duration).starting_at(provider as f64 * 10.0),
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        // Frame-level: every FoV frame is its own zero-duration record
        // (what pre-SWAG geo-video systems index; paper SI criticism).
        frame_level.extend(trace.iter().map(|tf| RepFov::new(tf.t, tf.t, tf.fov)));
        // Segment-level: SWAG representative FoVs.
        segment_level.extend(ClientPipeline::process_trace(cam, 0.5, &trace).reps);
    }

    let mut t = ResultTable::new(
        "ablation-granularity",
        &[
            "granularity",
            "records",
            "upload_bytes",
            "build",
            "query_200_mean_us",
            "mean_hits",
        ],
    );
    let mut rng = StdRng::seed_from_u64(3);
    let queries: Vec<Query> = (0..200)
        .map(|_| {
            let pos = frame.from_local(Vec2::new(
                rng.random_range(-600.0..600.0),
                rng.random_range(-600.0..600.0),
            ));
            Query::new(0.0, 400.0, pos, 100.0)
        })
        .collect();
    for (name, reps) in [
        ("per-frame", &frame_level),
        ("per-segment (SWAG)", &segment_level),
    ] {
        let start = Instant::now();
        let mut index = FovIndex::new(IndexKind::RTree);
        for (i, rep) in reps.iter().enumerate() {
            index.insert(rep, SegmentId(i as u32));
        }
        let build = start.elapsed();
        let mut hits = 0usize;
        let per_query = time_per_call(1, || {
            for q in &queries {
                hits += index.candidates(q).len();
            }
        }) / queries.len() as u32;
        t.row(vec![
            name.into(),
            reps.len().to_string(),
            DescriptorCodec::batch_size(reps.len()).to_string(),
            fmt_duration(build),
            format!("{:.2}", per_query.as_nanos() as f64 / 1e3),
            format!("{:.1}", hits as f64 / queries.len() as f64),
        ]);
    }
    finish(t);
    println!("segment abstraction shrinks the index ~2 orders of magnitude and returns");
    println!("continuous segments instead of the 'discrete video frames' of prior work (SI)");
}

// ---------------------------------------------------------------------
// ablation-mbr — representative-point FoVs vs MBR aggregation (prior
// work's GeoTree-style rule, paper §I / [9])
// ---------------------------------------------------------------------
fn ablation_mbr() {
    use swag_rtree::{Aabb, RTree};
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());
    let noise = SensorNoise::smartphone();

    // Segment 20 wandering providers; keep the raw frames per segment so
    // we can build both index variants and a frame-level ground truth.
    let mut segments: Vec<Vec<TimedFov>> = Vec::new();
    for provider in 0..20u64 {
        let mobility = Mobility::random_waypoint(provider, 600.0, 5, 1.4);
        let duration = mobility.natural_duration_s().expect("bounded").min(180.0);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, duration).starting_at(provider as f64 * 10.0),
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        segments.extend(segment_video(&trace, &cam, 0.5).into_iter().map(|s| s.fovs));
    }

    // Representative-point boxes (SWAG) and full-MBR boxes (prior work).
    let point_boxes: Vec<Aabb<3>> = segments
        .iter()
        .map(|fovs| {
            let seg = Segment { fovs: fovs.clone() };
            let rep = abstract_segment(&seg, AveragingRule::Circular);
            Aabb::new(
                [rep.fov.p.lng, rep.fov.p.lat, rep.t_start],
                [rep.fov.p.lng, rep.fov.p.lat, rep.t_end],
            )
        })
        .collect();
    let mbr_boxes: Vec<Aabb<3>> = segments
        .iter()
        .map(|fovs| {
            let (mut lng0, mut lng1) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut lat0, mut lat1) = (f64::INFINITY, f64::NEG_INFINITY);
            for f in fovs {
                lng0 = lng0.min(f.fov.p.lng);
                lng1 = lng1.max(f.fov.p.lng);
                lat0 = lat0.min(f.fov.p.lat);
                lat1 = lat1.max(f.fov.p.lat);
            }
            Aabb::new(
                [lng0, lat0, fovs[0].t],
                [lng1, lat1, fovs[fovs.len() - 1].t],
            )
        })
        .collect();

    // Ground truth for a query box: does the segment contain a frame
    // whose position falls inside it?
    let mut rng = StdRng::seed_from_u64(17);
    let queries: Vec<Aabb<3>> = (0..300)
        .map(|_| {
            let c = frame.from_local(Vec2::new(
                rng.random_range(-600.0..600.0),
                rng.random_range(-600.0..600.0),
            ));
            let dl = 100.0 / swag_geo::METERS_PER_DEG;
            let t0 = rng.random_range(0.0..300.0);
            Aabb::new(
                [c.lng - dl, c.lat - dl, t0],
                [c.lng + dl, c.lat + dl, t0 + 120.0],
            )
        })
        .collect();

    let mut t = ResultTable::new(
        "ablation-mbr",
        &[
            "aggregation",
            "hits_total",
            "true_pos",
            "false_pos",
            "false_neg",
            "precision",
            "recall",
        ],
    );
    for (name, boxes) in [
        ("point (SWAG eq. 11)", &point_boxes),
        ("MBR (GeoTree-style)", &mbr_boxes),
    ] {
        let tree: RTree<u32, 3> = RTree::bulk_load(
            boxes
                .iter()
                .enumerate()
                .map(|(i, b)| (*b, i as u32))
                .collect(),
        );
        let (mut tp, mut fp, mut fneg, mut hits_total) = (0usize, 0usize, 0usize, 0usize);
        for q in &queries {
            let hits: std::collections::HashSet<u32> =
                tree.search(q).into_iter().copied().collect();
            hits_total += hits.len();
            for (i, fovs) in segments.iter().enumerate() {
                let truth = fovs
                    .iter()
                    .any(|f| q.contains_point(&[f.fov.p.lng, f.fov.p.lat, f.t]));
                let got = hits.contains(&(i as u32));
                match (truth, got) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fneg += 1,
                    _ => {}
                }
            }
        }
        t.row(vec![
            name.into(),
            hits_total.to_string(),
            tp.to_string(),
            fp.to_string(),
            fneg.to_string(),
            format!("{:.3}", tp as f64 / (tp + fp).max(1) as f64),
            format!("{:.3}", tp as f64 / (tp + fneg).max(1) as f64),
        ]);
    }
    finish(t);
    println!("MBR aggregation never misses (recall 1.0) at slightly lower precision and");
    println!("larger index boxes; the point abstraction is exact on position but misses");
    println!("segments whose spatial extent leaves the query box. The paper recovers that");
    println!("recall by padding the query radius (SV-B step 1) while keeping 22-byte records.");
}

// ---------------------------------------------------------------------
// tab-e2e — full-deployment discrete-event simulation
// ---------------------------------------------------------------------
fn tab_e2e() {
    use swag_sim::{run_simulation, SimConfig};
    let mut t = ResultTable::new(
        "tab-e2e",
        &[
            "uplink",
            "sessions",
            "segments",
            "upload",
            "queries",
            "hit_rate",
            "retrv_p50_s",
            "retrv_p99_s",
            "qlat_p50_us",
            "qlat_p99_us",
        ],
    );
    for (name, uplink) in [
        ("3G", NetworkLink::cellular_3g()),
        ("LTE", NetworkLink::cellular_4g()),
        ("WiFi", NetworkLink::wifi()),
    ] {
        let report = run_simulation(&SimConfig {
            providers: 30,
            sim_duration_s: 3600.0,
            uplink,
            query_rate_hz: 0.5,
            ..SimConfig::default()
        });
        t.row(vec![
            name.into(),
            report.sessions.to_string(),
            report.segments.to_string(),
            fmt_bytes(report.upload_bytes),
            report.queries.to_string(),
            format!("{:.2}", report.hit_rate),
            format!("{:.1}", report.time_to_retrievable_s.p50),
            format!("{:.1}", report.time_to_retrievable_s.p99),
            format!("{:.1}", report.query_latency_us.p50),
            format!("{:.1}", report.query_latency_us.p99),
        ]);
    }
    finish(t);
    println!("time-to-retrievability is bounded by the session tail, not the uplink:");
    println!("descriptor uploads are so small that even 3G adds under a second.");
}

// ---------------------------------------------------------------------
// ablation-simmodel — the paper's transformation model vs the prior
// vector model ([23]) against content ground truth
// ---------------------------------------------------------------------
fn ablation_simmodel() {
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());

    // Pose-pair grid across rotations and translations in all directions,
    // scored against landmark-overlap ground truth averaged over worlds.
    let mut deltas: Vec<(Vec2, f64)> = Vec::new();
    for dth in [0.0, 10.0, 20.0, 35.0, 60.0] {
        for (dx, dy) in [
            (0.0, 0.0),
            (0.0, 20.0),
            (0.0, 50.0),
            (20.0, 0.0),
            (50.0, 0.0),
            (30.0, 30.0),
            (0.0, 90.0),
            (90.0, 0.0),
        ] {
            deltas.push((Vec2::new(dx, dy), dth));
        }
    }
    let f0 = Fov::new(frame.from_local(Vec2::ZERO), 0.0);
    let swag_sims: Vec<f64> = deltas
        .iter()
        .map(|&(dp, dth)| similarity(&f0, &Fov::new(frame.from_local(dp), dth), &cam))
        .collect();
    let vector_sims: Vec<f64> = deltas
        .iter()
        .map(|&(dp, dth)| vector_model_similarity(&f0, &Fov::new(frame.from_local(dp), dth), &cam))
        .collect();

    let seeds = [7u64, 19, 31, 43];
    let mut content: Vec<f64> = vec![0.0; deltas.len()];
    for &seed in &seeds {
        let world = World::random_city(seed, 400.0, 800);
        for (k, &(dp, dth)) in deltas.iter().enumerate() {
            content[k] += world.content_similarity(
                (Vec2::ZERO, 0.0),
                (dp, dth),
                cam.half_angle_deg,
                cam.view_radius_m,
            ) / seeds.len() as f64;
        }
    }

    let mut t = ResultTable::new(
        "ablation-simmodel",
        &["model", "pearson_vs_content", "pairs"],
    );
    t.row(vec![
        "transformation (paper, eq. 10)".into(),
        f(pearson(&swag_sims, &content)),
        deltas.len().to_string(),
    ]);
    t.row(vec![
        "vector model ([23])".into(),
        f(pearson(&vector_sims, &content)),
        deltas.len().to_string(),
    ]);
    finish(t);
    println!("the transformation model tracks what the camera actually sees more closely");
    println!("because it distinguishes parallel from perpendicular translation.");
}

// ---------------------------------------------------------------------
// tab-policy — upload scheduling: freshness vs cost under WiFi windows
// ---------------------------------------------------------------------
fn tab_policy() {
    // A commuter's day: WiFi at home (0-2 h), at work (9-17 h), home again
    // (19-24 h); recording sessions finish throughout the day.
    let h = 3600.0;
    let connectivity = Connectivity::new(vec![
        (0.0, 2.0 * h),
        (9.0 * h, 17.0 * h),
        (19.0 * h, 24.0 * h),
    ]);
    let mut rng = StdRng::seed_from_u64(12);
    let uploads: Vec<(f64, usize)> = (0..200)
        .map(|_| {
            (
                rng.random_range(0.0..24.0 * h),
                rng.random_range(200..4000), // descriptor batches
            )
        })
        .collect();
    let cellular = NetworkLink::cellular_4g();
    let wifi = NetworkLink::wifi();
    let plan = DataPlan::metered();

    let mut t = ResultTable::new(
        "tab-policy",
        &["policy", "mean_delay", "wifi_bytes_pct", "cellular_cost"],
    );
    let policies: Vec<(String, UploadPolicy)> = vec![
        ("immediate".into(), UploadPolicy::Immediate),
        (
            "wifi-preferred (15 min)".into(),
            UploadPolicy::WifiPreferred { max_delay_s: 900.0 },
        ),
        (
            "wifi-preferred (4 h)".into(),
            UploadPolicy::WifiPreferred {
                max_delay_s: 4.0 * h,
            },
        ),
        (
            "batched (30 min)".into(),
            UploadPolicy::Batched { interval_s: 1800.0 },
        ),
    ];
    for (name, policy) in policies {
        let report = plan_uploads(policy, &connectivity, &uploads, &cellular, &wifi, &plan);
        t.row(vec![
            name,
            fmt_duration(std::time::Duration::from_secs_f64(report.mean_delay_s)),
            format!("{:.0}%", 100.0 * report.wifi_byte_fraction),
            format!("{:.6}", report.total_cost),
        ]);
    }
    finish(t);
    println!("with 22-byte records, even 'immediate on cellular' costs next to nothing —");
    println!("the policy knob matters for raw-video designs, not for content-free SWAG.");
}
