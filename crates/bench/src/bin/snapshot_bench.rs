//! Contended ingest + query throughput: snapshot epochs vs. a RwLock.
//!
//! Replays the same mixed workload — writer threads streaming upload
//! batches while reader threads answer queries — against two servers
//! built from the same public components:
//!
//! * **rwlock baseline** — the pre-snapshot design: one
//!   `RwLock<(FovIndex, SegmentStore)>`, writers insert under the write
//!   lock, every query scans and ranks while holding the read lock;
//! * **snapshot** — `CloudServer`: queries clone the published epoch
//!   `Arc` and run lock-free; writers append into the delta and fold it
//!   into a fresh sharded snapshot at the publish threshold.
//!
//! Writes `BENCH_snapshot.json` at the workspace root and exits non-zero
//! if the snapshot path fails to beat the baseline.
//!
//! Usage: `cargo run --release -p swag-bench --bin snapshot_bench`

use std::hint::black_box;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use parking_lot::RwLock;
use swag_bench::fmt_duration;
use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_server::ranking::rank_candidates;
use swag_server::{
    CloudServer, FovIndex, IndexKind, Query, QueryOptions, SegmentRef, SegmentStore, ServerConfig,
};

const PRELOAD: usize = 20_000;
const WRITER_THREADS: usize = 4;
const READER_THREADS: usize = 4;
const BATCHES_PER_WRITER: usize = 250;
const BATCH_SIZE: usize = 40;
const QUERIES_PER_READER: usize = 2000;
const PUBLISH_THRESHOLD: usize = 1024;
const ROUNDS: usize = 5;

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

fn rep_at(i: usize, t0: f64) -> RepFov {
    let bearing = (i as f64 * 0.618_033_988_75 * 360.0) % 360.0;
    let dist = 600.0 * (((i % 997) as f64 + 1.0) / 997.0).sqrt();
    RepFov::new(
        t0,
        t0 + 8.0,
        Fov::new(center().offset(bearing, dist), (i % 360) as f64),
    )
}

fn preload() -> Vec<(RepFov, SegmentRef)> {
    (0..PRELOAD)
        .map(|i| {
            (
                rep_at(i, (i % 3600) as f64),
                SegmentRef {
                    provider_id: (i / 100) as u64,
                    video_id: 0,
                    segment_idx: i as u32,
                },
            )
        })
        .collect()
}

/// The batch writer `w` ingests in its `round`-th iteration.
fn writer_batch(w: usize, round: usize) -> UploadBatch {
    let t0 = 3600.0 + (round * BATCH_SIZE) as f64;
    UploadBatch {
        provider_id: 1000 + w as u64,
        video_id: round as u64,
        reps: (0..BATCH_SIZE)
            .map(|i| rep_at(w * 131 + round * BATCH_SIZE + i, t0 + i as f64))
            .collect(),
    }
}

fn reader_query(r: usize, i: usize) -> Query {
    let bearing = ((r * 977 + i) as f64 * 137.507_764) % 360.0;
    let dist = 300.0 * ((i % 13) as f64 / 13.0);
    let t0 = ((i * 97) % 3500) as f64;
    Query::new(t0, t0 + 120.0, center().offset(bearing, dist), 150.0)
}

/// The pre-snapshot server design, rebuilt from the same public parts.
struct RwLockServer {
    state: RwLock<(FovIndex, SegmentStore)>,
    cam: CameraProfile,
}

impl RwLockServer {
    fn new(cam: CameraProfile, items: &[(RepFov, SegmentRef)]) -> Self {
        let mut index = FovIndex::new(IndexKind::RTree);
        let mut store = SegmentStore::new();
        for &(rep, source) in items {
            let id = store.push(rep, source);
            index.insert(&rep, id);
        }
        RwLockServer {
            state: RwLock::new((index, store)),
            cam,
        }
    }

    fn ingest_batch(&self, batch: &UploadBatch) {
        let mut state = self.state.write();
        for (i, rep) in batch.reps.iter().enumerate() {
            let source = SegmentRef {
                provider_id: batch.provider_id,
                video_id: batch.video_id,
                segment_idx: i as u32,
            };
            let id = state.1.push(*rep, source);
            state.0.insert(rep, id);
        }
    }

    fn query(&self, query: &Query, opts: &QueryOptions) -> usize {
        let state = self.state.read();
        let candidates = state.0.candidates(query);
        rank_candidates(&candidates, &state.1, &self.cam, query, opts).len()
    }
}

/// Runs the mixed workload once; returns elapsed nanoseconds.
fn contended_round(
    ingest: impl Fn(&UploadBatch) + Sync,
    query: impl Fn(&Query) -> usize + Sync,
) -> u64 {
    let barrier = Barrier::new(WRITER_THREADS + READER_THREADS + 1);
    let sink = AtomicU64::new(0);
    let start = std::thread::scope(|s| {
        for w in 0..WRITER_THREADS {
            let (barrier, ingest) = (&barrier, &ingest);
            s.spawn(move || {
                barrier.wait();
                for round in 0..BATCHES_PER_WRITER {
                    ingest(&writer_batch(w, round));
                }
            });
        }
        for r in 0..READER_THREADS {
            let (barrier, query, sink) = (&barrier, &query, &sink);
            s.spawn(move || {
                barrier.wait();
                let mut hits = 0u64;
                for i in 0..QUERIES_PER_READER {
                    hits += query(&reader_query(r, i)) as u64;
                }
                sink.fetch_add(hits, Ordering::Relaxed);
            });
        }
        barrier.wait();
        Instant::now()
    });
    black_box(sink.load(Ordering::Relaxed));
    start.elapsed().as_nanos() as u64
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let cam = CameraProfile::smartphone();
    let items = preload();
    let opts = QueryOptions::default();
    let total_ops = WRITER_THREADS * BATCHES_PER_WRITER + READER_THREADS * QUERIES_PER_READER;

    // Interleave subjects per round so machine drift hits both equally;
    // fresh servers per round so ingested volume stays identical.
    let mut t_rwlock = Vec::with_capacity(ROUNDS);
    let mut t_snapshot = Vec::with_capacity(ROUNDS);
    for round in 0..=ROUNDS {
        let baseline = RwLockServer::new(cam, &items);
        let ns = contended_round(|b| baseline.ingest_batch(b), |q| baseline.query(q, &opts));
        let snapshot = CloudServer::from_records_with_config(
            cam,
            ServerConfig {
                publish_threshold: PUBLISH_THRESHOLD,
                ..ServerConfig::default()
            },
            items.clone(),
        );
        let ns2 = contended_round(
            |b| {
                snapshot.ingest_batch(b);
            },
            |q| snapshot.query(q, &opts).len(),
        );
        if round > 0 {
            // Round 0 is warm-up.
            t_rwlock.push(ns);
            t_snapshot.push(ns2);
        }
    }

    let med_rwlock = median(&mut t_rwlock);
    let med_snapshot = median(&mut t_snapshot);
    let ops_per_s = |ns: u64| total_ops as f64 / (ns as f64 / 1e9);
    let speedup = med_rwlock as f64 / med_snapshot as f64;
    let pass = med_snapshot < med_rwlock;

    println!(
        "contended ingest+query: {PRELOAD} preloaded, {WRITER_THREADS} writers x \
         {BATCHES_PER_WRITER} batches of {BATCH_SIZE}, {READER_THREADS} readers x \
         {QUERIES_PER_READER} queries, {ROUNDS} rounds"
    );
    println!(
        "  rwlock    median {:>10} / round  ({:>9.0} ops/s)",
        fmt_duration(std::time::Duration::from_nanos(med_rwlock)),
        ops_per_s(med_rwlock)
    );
    println!(
        "  snapshot  median {:>10} / round  ({:>9.0} ops/s, {speedup:.2}x)",
        fmt_duration(std::time::Duration::from_nanos(med_snapshot)),
        ops_per_s(med_snapshot)
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"preloaded_segments\": {},\n",
            "  \"writer_threads\": {},\n",
            "  \"batches_per_writer\": {},\n",
            "  \"batch_size\": {},\n",
            "  \"reader_threads\": {},\n",
            "  \"queries_per_reader\": {},\n",
            "  \"rounds\": {},\n",
            "  \"median_round_ns\": {{\"rwlock\": {}, \"snapshot\": {}}},\n",
            "  \"ops_per_s\": {{\"rwlock\": {:.0}, \"snapshot\": {:.0}}},\n",
            "  \"speedup\": {:.3},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        PRELOAD,
        WRITER_THREADS,
        BATCHES_PER_WRITER,
        BATCH_SIZE,
        READER_THREADS,
        QUERIES_PER_READER,
        ROUNDS,
        med_rwlock,
        med_snapshot,
        ops_per_s(med_rwlock),
        ops_per_s(med_snapshot),
        speedup,
        pass
    );
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_snapshot.json");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("cannot write BENCH_snapshot.json");
    println!("wrote {}", path.display());

    if !pass {
        eprintln!("FAIL: snapshot path did not beat the RwLock baseline under contention");
        std::process::exit(1);
    }
}
