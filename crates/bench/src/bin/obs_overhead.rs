//! Observability overhead guard.
//!
//! Measures the server query path three ways over the same workload:
//!
//! * **baseline** — an exact replica of the uninstrumented query loop
//!   (momentary lock + snapshot clone, fan-out pricing, sharded index
//!   scan, ranking, `Instant`-based latency atomics), built from the
//!   same public components but with no recorder or registry machinery;
//! * **disabled** — `CloudServer` with no observability attached. This
//!   path now also carries the dormant causal-tracing machinery (a
//!   disabled `FlightRecorder` whose span guards cost one relaxed load
//!   plus a branch, and `TraceCtx` capture in the executor) *and* the
//!   absent wide-event log (an `Option` that is `None` by default, one
//!   load plus a branch on the query path), so the gate below covers
//!   recorder/ctx propagation and the events-disabled path too;
//! * **enabled** — `CloudServer` with a full registry attached;
//! * **traced** — `CloudServer` with its flight recorder *enabled* (no
//!   registry): the cost of live span recording, reported but ungated;
//! * **evented** — `CloudServer` with the wide-event query log enabled
//!   (one structured event per query into the per-thread ring, tail
//!   sampler consulted): reported but ungated.
//!
//! Overhead is the median of per-round subject/baseline time ratios
//! (each subject round paired with the baseline round it ran next to),
//! which cancels machine drift slower than one round. Writes
//! `BENCH_obs.json` at the workspace root and exits non-zero if the
//! disabled path regresses by `LIMIT_PCT` or more against baseline.
//!
//! Usage: `cargo run --release -p swag-bench --bin obs_overhead`

use std::hint::black_box;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use swag_bench::fmt_duration;
use swag_core::{CameraProfile, Fov, RepFov};
use swag_exec::Executor;
use swag_geo::LatLon;
use swag_obs::Registry;
use swag_server::ranking::rank_candidates;
use swag_server::{
    CloudServer, EventLogConfig, FanoutDecision, FanoutMode, IndexKind, Query, QueryOptions,
    SegmentRef, SegmentStore, ServerConfig, ShardedFovIndex,
};

const SEGMENTS: usize = 20_000;
const QUERIES: usize = 512;
const ROUNDS: usize = 101;
const LIMIT_PCT: f64 = 2.0;

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Deterministic workload: segments sunflower-scattered within 600 m of
/// the centre, uniformly spread over an hour of recording time.
fn segments() -> Vec<(RepFov, SegmentRef)> {
    (0..SEGMENTS)
        .map(|i| {
            let bearing = (i as f64 * 0.618_033_988_75 * 360.0) % 360.0;
            let dist = 600.0 * (((i % 997) as f64 + 1.0) / 997.0).sqrt();
            let t0 = (i % 3600) as f64;
            let rep = RepFov::new(
                t0,
                t0 + 8.0,
                Fov::new(center().offset(bearing, dist), (i % 360) as f64),
            );
            let source = SegmentRef {
                provider_id: (i / 100) as u64,
                video_id: 0,
                segment_idx: i as u32,
            };
            (rep, source)
        })
        .collect()
}

fn queries() -> Vec<Query> {
    (0..QUERIES)
        .map(|i| {
            let bearing = (i as f64 * 137.507_764) % 360.0;
            let dist = 300.0 * ((i % 13) as f64 / 13.0);
            let t0 = ((i * 97) % 3500) as f64;
            Query::new(t0, t0 + 60.0, center().offset(bearing, dist), 120.0)
        })
        .collect()
}

/// The uninstrumented query loop, replicated over the same public
/// index/store/ranking components the server is built from: momentary
/// lock + `Arc` snapshot clone, fan-out pricing, sharded probe, ranking,
/// `Instant`-based latency atomics. What it deliberately does *not*
/// carry is the observability machinery — recorder span guards, trace
/// sampling, per-operator telemetry — so the gap to the subjects is the
/// cost of instrumentation, not of unrelated engine features.
///
/// Parity matters more than pedigree here: the subjects answer from a
/// time-sharded, STR-bulk-loaded snapshot with an empty delta, so the
/// baseline must scan the same structure and do the same per-query
/// bookkeeping. An earlier version used a flat incrementally-built
/// R-tree, which is *slower* to traverse — the baseline then did extra
/// work and the "overhead" of every instrumented subject came out
/// negative, making the `LIMIT_PCT` gate vacuous.
struct BaselineServer {
    state: RwLock<Arc<(ShardedFovIndex, SegmentStore)>>,
    exec: Executor,
    cam: CameraProfile,
    /// Stand-in for the engine's `Option<ResultCache>` field: the
    /// subjects' query path starts with a cache-enabled check (`None`
    /// by default), which is engine feature cost, not instrumentation —
    /// so the baseline carries the same load-and-branch. Constructed
    /// through `black_box` so the optimizer cannot prove it `None` and
    /// fold the branch away.
    result_cache: Option<u64>,
    /// Stand-in for the engine's `Option<Arc<QueryEventLog>>` field: the
    /// query path gates wide-event emission on `is_some_and(enabled)`,
    /// so the baseline pays the same load-and-branch. Also `black_box`ed
    /// so the branch survives optimization.
    event_log: Option<u64>,
    /// Stand-in for the engine's `Option<Arc<Durability>>` field: the
    /// query path gates the cold-tier scan on `is_some_and(has cold
    /// runs)` (`None` on memory-only servers), so the baseline pays the
    /// same load-and-branch. `black_box`ed like the others.
    durability: Option<u64>,
    queries: AtomicU64,
    query_micros: AtomicU64,
}

impl BaselineServer {
    fn new(cam: CameraProfile, items: &[(RepFov, SegmentRef)]) -> Self {
        let config = ServerConfig::default();
        let mut index = ShardedFovIndex::new(config.shard_width_s, IndexKind::RTree);
        let mut store = SegmentStore::new();
        let ids: Vec<_> = items
            .iter()
            .map(|&(rep, source)| (rep, store.push(rep, source)))
            .collect();
        index.bulk_insert(&ids);
        BaselineServer {
            state: RwLock::new(Arc::new((index, store))),
            exec: Executor::global().clone(),
            cam,
            result_cache: black_box(None),
            event_log: black_box(None),
            durability: black_box(None),
            queries: AtomicU64::new(0),
            query_micros: AtomicU64::new(0),
        }
    }

    fn query(&self, query: &Query, opts: &QueryOptions) -> usize {
        let start = Instant::now();
        if self.result_cache.is_some() {
            // Cache-enabled arm: never taken here, exists so the
            // baseline pays the engine's default-path branch.
            return usize::MAX;
        }
        if self.event_log.as_ref().is_some_and(|&e| e > 0) {
            // Events-enabled arm: same as above, mirrors the engine's
            // `is_some_and(is_enabled)` wide-event gate.
            return usize::MAX;
        }
        if self.durability.as_ref().is_some_and(|&d| d > 0) {
            // Cold-tier arm: mirrors the engine's `has_cold()` gate in
            // front of the cold scan (always false on memory-only).
            return usize::MAX;
        }
        let state = self.state.read().clone();
        let decision = FanoutDecision::decide(
            &state.0,
            query.t_start,
            query.t_end,
            &self.exec,
            FanoutMode::Adaptive,
        );
        let candidates = if decision.parallel {
            state.0.candidates_exec(&self.exec, query)
        } else {
            state.0.candidates(query)
        };
        let hits = rank_candidates(&candidates, &state.1, &self.cam, query, opts);
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.query_micros
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        hits.len()
    }
}

/// One timed pass over every query; returns elapsed nanoseconds.
fn round_ns(mut run: impl FnMut(&Query) -> usize, qs: &[Query]) -> u64 {
    let start = Instant::now();
    let mut sink = 0usize;
    for q in qs {
        sink += run(q);
    }
    black_box(sink);
    start.elapsed().as_nanos() as u64
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let cam = CameraProfile::smartphone();
    let items = segments();
    let qs = queries();
    let opts = QueryOptions::default();

    // Every subject is bulk-loaded so all four answer from the same
    // snapshot shape with an empty delta. Incremental ingest would leave
    // `SEGMENTS % publish_threshold` records pending in the delta, and
    // the per-query delta scan the subjects then pay (and the baseline
    // does not) would be billed to "observability".
    let baseline = BaselineServer::new(cam, &items);
    let disabled = CloudServer::from_records(cam, items.clone());
    let registry = Registry::new();
    let mut enabled = CloudServer::from_records(cam, items.clone());
    enabled.attach_observability(&registry);
    let traced = CloudServer::from_records(cam, items.clone());
    traced.flight_recorder().enable();
    let evented = CloudServer::from_records_with_config(
        cam,
        ServerConfig {
            events: EventLogConfig::enabled(0, 42),
            ..ServerConfig::default()
        },
        items.clone(),
    );

    // Warm up every subject, then time them interleaved per round so
    // drift (frequency scaling, page cache) hits all five equally.
    for subject in 0..5 {
        let _ = match subject {
            0 => round_ns(|q| baseline.query(q, &opts), &qs),
            1 => round_ns(|q| disabled.query(q, &opts).len(), &qs),
            2 => round_ns(|q| enabled.query(q, &opts).len(), &qs),
            3 => round_ns(|q| traced.query(q, &opts).len(), &qs),
            _ => round_ns(|q| evented.query(q, &opts).len(), &qs),
        };
    }
    let mut t_base = Vec::with_capacity(ROUNDS);
    let mut t_disabled = Vec::with_capacity(ROUNDS);
    let mut t_enabled = Vec::with_capacity(ROUNDS);
    let mut t_traced = Vec::with_capacity(ROUNDS);
    let mut t_evented = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        t_base.push(round_ns(|q| baseline.query(q, &opts), &qs));
        t_disabled.push(round_ns(|q| disabled.query(q, &opts).len(), &qs));
        t_enabled.push(round_ns(|q| enabled.query(q, &opts).len(), &qs));
        t_traced.push(round_ns(|q| traced.query(q, &opts).len(), &qs));
        t_evented.push(round_ns(|q| evented.query(q, &opts).len(), &qs));
    }

    let med_base = median(&mut t_base.clone());
    let med_disabled = median(&mut t_disabled.clone());
    let med_enabled = median(&mut t_enabled.clone());
    let med_traced = median(&mut t_traced.clone());
    let med_evented = median(&mut t_evented.clone());
    // Overhead is judged on *paired* rounds: each subject round is
    // divided by the baseline round it ran next to, and the median of
    // those per-round ratios is the reported overhead. Comparing
    // medians of independently-sorted round times lets slow drift
    // (frequency scaling, a background task spanning a few rounds)
    // land on one subject's median and not another's — observed as
    // ±3% swings on an unchanged binary, right at the gate. The
    // paired ratio cancels anything slower than one round.
    let pct = |subject: &[u64]| {
        let mut ratios: Vec<u64> = subject
            .iter()
            .zip(&t_base)
            .map(|(&s, &b)| (s as f64 / b as f64 * 1e6) as u64)
            .collect();
        median(&mut ratios) as f64 / 1e6 * 100.0 - 100.0
    };
    let (disabled_pct, enabled_pct, traced_pct, evented_pct) = (
        pct(&t_disabled),
        pct(&t_enabled),
        pct(&t_traced),
        pct(&t_evented),
    );
    let pass = disabled_pct < LIMIT_PCT;

    println!("obs overhead over {SEGMENTS} segments, {QUERIES} queries x {ROUNDS} rounds");
    println!(
        "  baseline  median {:>10} / round",
        fmt_duration(std::time::Duration::from_nanos(med_base))
    );
    println!(
        "  disabled  median {:>10} / round  ({disabled_pct:+.2}%)",
        fmt_duration(std::time::Duration::from_nanos(med_disabled))
    );
    println!(
        "  enabled   median {:>10} / round  ({enabled_pct:+.2}%)",
        fmt_duration(std::time::Duration::from_nanos(med_enabled))
    );
    println!(
        "  traced    median {:>10} / round  ({traced_pct:+.2}%)",
        fmt_duration(std::time::Duration::from_nanos(med_traced))
    );
    println!(
        "  evented   median {:>10} / round  ({evented_pct:+.2}%)",
        fmt_duration(std::time::Duration::from_nanos(med_evented))
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"segments\": {},\n",
            "  \"queries_per_round\": {},\n",
            "  \"rounds\": {},\n",
            "  \"median_round_ns\": {{\"baseline\": {}, \"disabled\": {}, \"enabled\": {}, \"traced\": {}, \"evented\": {}}},\n",
            "  \"overhead_pct\": {{\"disabled\": {:.3}, \"enabled\": {:.3}, \"traced\": {:.3}, \"evented\": {:.3}}},\n",
            "  \"limit_pct\": {},\n",
            "  \"metrics_recorded\": {},\n",
            "  \"span_events_recorded\": {},\n",
            "  \"query_events_recorded\": {},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        SEGMENTS,
        QUERIES,
        ROUNDS,
        med_base,
        med_disabled,
        med_enabled,
        med_traced,
        med_evented,
        disabled_pct,
        enabled_pct,
        traced_pct,
        evented_pct,
        LIMIT_PCT,
        registry.len(),
        traced.flight_recorder().dump().len(),
        evented
            .event_log()
            .map(|log| log.stats().pushed)
            .unwrap_or(0),
        pass
    );
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_obs.json");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("cannot write BENCH_obs.json");
    println!("wrote {}", path.display());

    if !pass {
        eprintln!("FAIL: disabled-instrumentation overhead {disabled_pct:.2}% >= {LIMIT_PCT}%");
        std::process::exit(1);
    }
}
