//! Parallel executor vs. serial: STR publish fan-out and batched queries.
//!
//! Races two `CloudServer`s built from the same records and answering the
//! same query batch — one on `Executor::serial()`, one on a work-stealing
//! pool — and checks both that the parallel path **wins** on multi-core
//! hardware and that its ranked results are **byte-identical** to the
//! serial ones (the executor's determinism contract).
//!
//! The pool is clamped to `min(--threads, hardware threads)` — a pool
//! wider than the host can only add coordination overhead (the
//! oversubscribed 4-on-1 shape that once produced a 0.677x "pass").
//!
//! Writes `BENCH_parallel.json` at the workspace root. Exit status:
//!
//! * result mismatch between serial and parallel → always exits 1;
//! * query speedup below **parity** (1.0x) → recorded as
//!   `"regression": true` and exits 1 even where the `MIN_SPEEDUP` gate
//!   does not bind — the clamped pool must never *lose* to serial;
//! * speedup below the gate at `--threads` (default 4) → exits 1 **only
//!   when the host actually has that many hardware threads** — on smaller
//!   machines (CI containers, laptops on battery) the run is recorded as
//!   `"gated": false` and informational;
//! * `--smoke` → small workload, 2 threads, correctness check only (no
//!   performance gates) — the CI smoke step.
//!
//! Usage: `cargo run --release -p swag-bench --bin parallel_bench [-- --smoke]`

use std::io::Write as _;
use std::time::Instant;

use swag_bench::fmt_duration;
use swag_core::{CameraProfile, Fov, RepFov};
use swag_exec::{ExecConfig, Executor};
use swag_geo::LatLon;
use swag_server::{CloudServer, Query, QueryOptions, SegmentRef, ServerConfig};

/// Speedup the batched-query path must reach at `--threads` on capable
/// hardware (acceptance gate).
const MIN_SPEEDUP: f64 = 1.5;

struct Workload {
    threads: usize,
    preload: usize,
    queries: usize,
    rounds: usize,
    smoke: bool,
}

impl Workload {
    fn from_args() -> Self {
        let mut w = Workload {
            threads: 4,
            preload: 40_000,
            queries: 2_000,
            rounds: 5,
            smoke: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => {
                    w.smoke = true;
                    w.threads = 2;
                    w.preload = 6_000;
                    w.queries = 200;
                    w.rounds = 1;
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    w.threads = v.parse().expect("--threads must be an integer");
                }
                other => panic!("unknown argument {other:?} (expected --smoke | --threads N)"),
            }
        }
        w
    }
}

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Deterministic synthetic corpus: segments spiral around the centre and
/// spread over ~6 h of capture time so the sharded index holds dozens of
/// time shards (the query fan-out the parallel path accelerates).
fn records(n: usize) -> Vec<(RepFov, SegmentRef)> {
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 0.618_033_988_75 * 360.0) % 360.0;
            let dist = 900.0 * (((i % 997) as f64 + 1.0) / 997.0).sqrt();
            let t0 = ((i * 37) % 21_600) as f64;
            (
                RepFov::new(
                    t0,
                    t0 + 8.0,
                    Fov::new(center().offset(bearing, dist), (i % 360) as f64),
                ),
                SegmentRef {
                    provider_id: (i / 100) as u64,
                    video_id: 0,
                    segment_idx: i as u32,
                },
            )
        })
        .collect()
}

/// Deterministic query mix: most span several shards, some are narrow.
fn queries(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 137.507_764) % 360.0;
            let dist = 400.0 * ((i % 17) as f64 / 17.0);
            let t0 = ((i * 131) % 20_000) as f64;
            let span = if i % 4 == 0 { 120.0 } else { 2_400.0 };
            Query::new(t0, t0 + span, center().offset(bearing, dist), 200.0)
        })
        .collect()
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let w = Workload::from_args();
    let cam = CameraProfile::smartphone();
    let opts = QueryOptions::default();
    let recs = records(w.preload);
    let qs = queries(w.queries);
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Never hand the pool more workers than the host has hardware
    // threads: the extra workers cannot run, only contend.
    let pool_threads = w.threads.min(hw_threads);
    let parallel_exec = Executor::new(ExecConfig::with_threads(pool_threads));
    println!(
        "parallel vs serial: {} segments, {} queries/round, {} rounds, \
         {} pool threads on {hw_threads} hardware threads{}{}",
        w.preload,
        w.queries,
        w.rounds,
        parallel_exec.threads(),
        if pool_threads < w.threads {
            " (clamped from --threads)"
        } else {
            ""
        },
        if w.smoke { " [smoke]" } else { "" }
    );

    // --- Build (publish-time STR bulk load) ---------------------------
    // Round 0 is warm-up for both subjects; servers from the last round
    // are kept for the query phase.
    let mut t_build_serial = Vec::with_capacity(w.rounds);
    let mut t_build_parallel = Vec::with_capacity(w.rounds);
    let mut servers = None;
    for round in 0..=w.rounds {
        let t = Instant::now();
        let serial = CloudServer::from_records_with_config_exec(
            cam,
            ServerConfig::default(),
            Executor::serial(),
            recs.clone(),
        );
        let ns_serial = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let parallel = CloudServer::from_records_with_config_exec(
            cam,
            ServerConfig::default(),
            parallel_exec.clone(),
            recs.clone(),
        );
        let ns_parallel = t.elapsed().as_nanos() as u64;

        if round > 0 {
            t_build_serial.push(ns_serial);
            t_build_parallel.push(ns_parallel);
        }
        servers = Some((serial, parallel));
    }
    let (serial_server, parallel_server) = servers.expect("at least one round ran");

    // --- Correctness: parallel results byte-identical to serial -------
    let expect = serial_server.query_batch(&qs, &opts, 1);
    let got = parallel_server.query_batch(&qs, &opts, pool_threads);
    let identical = expect == got;
    if !identical {
        let first = expect
            .iter()
            .zip(&got)
            .position(|(a, b)| a != b)
            .unwrap_or(expect.len());
        eprintln!("FAIL: parallel results diverge from serial at query #{first}");
    }

    // --- Batched query throughput -------------------------------------
    let mut t_query_serial = Vec::with_capacity(w.rounds);
    let mut t_query_parallel = Vec::with_capacity(w.rounds);
    for round in 0..=w.rounds {
        let t = Instant::now();
        let r = serial_server.query_batch(&qs, &opts, 1);
        let ns_serial = t.elapsed().as_nanos() as u64;
        assert_eq!(r.len(), qs.len());

        let t = Instant::now();
        let r = parallel_server.query_batch(&qs, &opts, pool_threads);
        let ns_parallel = t.elapsed().as_nanos() as u64;
        assert_eq!(r.len(), qs.len());

        if round > 0 {
            t_query_serial.push(ns_serial);
            t_query_parallel.push(ns_parallel);
        }
    }

    let build_serial = median(&mut t_build_serial);
    let build_parallel = median(&mut t_build_parallel);
    let query_serial = median(&mut t_query_serial);
    let query_parallel = median(&mut t_query_parallel);
    let build_speedup = build_serial as f64 / build_parallel as f64;
    let query_speedup = query_serial as f64 / query_parallel as f64;
    let stats = parallel_server.executor().stats();

    let dur = |ns: u64| fmt_duration(std::time::Duration::from_nanos(ns));
    println!(
        "  build  serial {:>10}   parallel {:>10}   ({build_speedup:.2}x)",
        dur(build_serial),
        dur(build_parallel)
    );
    println!(
        "  query  serial {:>10}   parallel {:>10}   ({query_speedup:.2}x)",
        dur(query_serial),
        dur(query_parallel)
    );
    println!(
        "  results identical: {identical}; executor: {} tasks, {} steals",
        stats.tasks, stats.steals
    );

    // The MIN_SPEEDUP gate only binds where the hardware can express the
    // parallelism; elsewhere those numbers are informational. Parity,
    // however, is checked everywhere: a clamped pool must never *lose*
    // to serial. When the pool collapsed to one worker both subjects
    // execute identical code and the ratio is pure timer noise, so
    // parity gets a small tolerance there.
    let gated = !w.smoke && hw_threads >= w.threads;
    let parity_floor = if parallel_exec.is_serial() { 0.9 } else { 1.0 };
    let regression = !w.smoke && query_speedup < parity_floor;
    let pass = identical && !regression && (!gated || query_speedup >= MIN_SPEEDUP);

    let json = format!(
        concat!(
            "{{\n",
            "  \"preloaded_segments\": {},\n",
            "  \"queries\": {},\n",
            "  \"rounds\": {},\n",
            "  \"requested_threads\": {},\n",
            "  \"pool_threads\": {},\n",
            "  \"hw_threads\": {},\n",
            "  \"smoke\": {},\n",
            "  \"median_ns\": {{\"build_serial\": {}, \"build_parallel\": {}, ",
            "\"query_serial\": {}, \"query_parallel\": {}}},\n",
            "  \"build_speedup\": {:.3},\n",
            "  \"query_speedup\": {:.3},\n",
            "  \"executor\": {{\"tasks\": {}, \"steals\": {}}},\n",
            "  \"identical_results\": {},\n",
            "  \"min_speedup\": {},\n",
            "  \"gated\": {},\n",
            "  \"regression\": {},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        w.preload,
        w.queries,
        w.rounds,
        w.threads,
        parallel_exec.threads(),
        hw_threads,
        w.smoke,
        build_serial,
        build_parallel,
        query_serial,
        query_parallel,
        build_speedup,
        query_speedup,
        stats.tasks,
        stats.steals,
        identical,
        MIN_SPEEDUP,
        gated,
        regression,
        pass
    );
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_parallel.json");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("cannot write BENCH_parallel.json");
    println!("wrote {}", path.display());

    if !pass {
        if regression {
            eprintln!(
                "FAIL: regression — query speedup {query_speedup:.2}x below parity \
                 at {} pool threads (parallel must never lose to serial)",
                parallel_exec.threads()
            );
        } else if identical {
            eprintln!(
                "FAIL: query speedup {query_speedup:.2}x < {MIN_SPEEDUP}x at {} threads",
                parallel_exec.threads()
            );
        }
        std::process::exit(1);
    }
    if !gated && !w.smoke {
        println!(
            "note: host has {hw_threads} hardware threads < {} — \
             speedup gate not applied",
            w.threads
        );
    }
}
