//! Plan-keyed result cache vs. cold execution under a zipfian query mix,
//! plus admission-control load-shedding under deliberate overload.
//!
//! Three phases, one `BENCH_cache.json` at the workspace root:
//!
//! 1. **Correctness** — a cache-on and a cache-off server ingest the same
//!    corpus in interleaved chunks; after every chunk the zipfian replay
//!    must be byte-identical on both (a publish that under-invalidates
//!    would serve stale hits here). Mismatch always exits 1.
//! 2. **Timing** — both servers preloaded with the full corpus answer the
//!    same zipfian (s = 1.1) sequence drawn from a pool of distinct
//!    queries; `throughput_gain = t_off / t_on` (medians over rounds)
//!    must reach [`MIN_GAIN`] (parity in `--smoke`, where the workload is
//!    too small to gate performance meaningfully).
//! 3. **Overload** — hammering clients exceed a tight admission budget;
//!    the run must shed (`shed > 0`) while the requests it *does* admit
//!    keep a bounded p99 ([`MAX_ADMITTED_P99_MICROS`]) — the
//!    shed-instead-of-queue contract.
//!
//! Usage: `cargo run --release -p swag-bench --bin cache_bench [-- --smoke]`

use std::io::Write as _;
use std::time::Instant;

use swag_bench::fmt_duration;
use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_obs::Registry;
use swag_server::{
    AdmissionConfig, CacheConfig, CloudServer, Query, QueryOptions, SegmentRef, ServerConfig,
    ShedReason,
};

/// Hot-query throughput gain the cached server must reach over the cold
/// one on the full workload (acceptance gate; parity in smoke).
const MIN_GAIN: f64 = 2.0;

/// Zipf exponent of the query popularity distribution.
const ZIPF_S: f64 = 1.1;

/// Admitted requests under overload must stay below this p99 — shedding
/// converts excess offered load into refusals, not latency.
const MAX_ADMITTED_P99_MICROS: u64 = 100_000;

struct Workload {
    preload: usize,
    pool: usize,
    sequence: usize,
    rounds: usize,
    smoke: bool,
}

impl Workload {
    fn from_args() -> Self {
        let mut w = Workload {
            preload: 40_000,
            pool: 1_024,
            sequence: 30_000,
            rounds: 5,
            smoke: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--smoke" => {
                    w.smoke = true;
                    w.preload = 4_000;
                    w.pool = 128;
                    w.sequence = 2_000;
                    w.rounds = 2;
                }
                "--pool" => {
                    let v = args.next().expect("--pool needs a value");
                    w.pool = v.parse().expect("--pool must be an integer");
                }
                other => panic!("unknown argument {other:?} (expected --smoke | --pool N)"),
            }
        }
        w
    }
}

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Deterministic synthetic corpus, same spiral shape as `parallel_bench`.
fn records(n: usize) -> Vec<(RepFov, SegmentRef)> {
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 0.618_033_988_75 * 360.0) % 360.0;
            let dist = 900.0 * (((i % 997) as f64 + 1.0) / 997.0).sqrt();
            let t0 = ((i * 37) % 21_600) as f64;
            (
                RepFov::new(
                    t0,
                    t0 + 8.0,
                    Fov::new(center().offset(bearing, dist), (i % 360) as f64),
                ),
                SegmentRef {
                    provider_id: (i / 100) as u64,
                    video_id: 0,
                    segment_idx: i as u32,
                },
            )
        })
        .collect()
}

/// Pool of distinct, cache-eligible queries the zipfian mix draws from.
fn query_pool(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 137.507_764) % 360.0;
            let dist = 500.0 * ((i % 23) as f64 / 23.0);
            let t0 = ((i * 131) % 20_000) as f64;
            let span = if i % 4 == 0 { 120.0 } else { 2_400.0 };
            Query::new(t0, t0 + span, center().offset(bearing, dist), 200.0)
        })
        .collect()
}

/// SplitMix64, the repo's deterministic generator idiom.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Zipf(s) sampler over ranks `0..n` by inverse CDF: popularity of rank
/// r is proportional to `1 / (r + 1)^s`, sampled with a binary search
/// over the precomputed cumulative weights.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The replayed sequence: pool indices drawn zipfian, fixed seed.
fn zipf_sequence(pool: usize, len: usize) -> Vec<usize> {
    let zipf = Zipf::new(pool, ZIPF_S);
    let mut rng = Rng(0x5747_2015);
    (0..len).map(|_| zipf.sample(&mut rng)).collect()
}

fn config(cache: CacheConfig) -> ServerConfig {
    ServerConfig {
        cache,
        ..ServerConfig::default()
    }
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn p99(mut micros: Vec<u64>) -> u64 {
    if micros.is_empty() {
        return 0;
    }
    micros.sort_unstable();
    micros[(micros.len() - 1) * 99 / 100]
}

/// Phase 1: interleaved ingests on both servers, byte-identical replay
/// after every chunk. Returns false on the first divergence.
fn correctness_phase(w: &Workload, pool: &[Query], seq: &[usize]) -> bool {
    let cam = CameraProfile::smartphone();
    let off = CloudServer::with_config(cam, config(CacheConfig::default()));
    let on = CloudServer::with_config(cam, config(CacheConfig::enabled(w.pool * 2)));
    let recs = records(w.preload / 4);
    let opts = QueryOptions::default();
    let chunk = recs.len().div_ceil(4).max(1);
    let replay = &seq[..seq.len().min(w.sequence / 4)];
    for (chunk_no, batch) in recs.chunks(chunk).enumerate() {
        let reps: Vec<RepFov> = batch.iter().map(|(rep, _)| *rep).collect();
        for server in [&off, &on] {
            server.ingest_batch(&UploadBatch {
                provider_id: chunk_no as u64,
                video_id: 0,
                reps: reps.clone(),
            });
        }
        for (i, &qi) in replay.iter().enumerate() {
            let expect = off.query(&pool[qi], &opts);
            let got = on.query(&pool[qi], &opts);
            if got != expect {
                eprintln!(
                    "FAIL: cached result diverges at chunk {chunk_no}, replay #{i} \
                     (pool query {qi}): {} hits vs {} expected",
                    got.len(),
                    expect.len()
                );
                return false;
            }
        }
    }
    true
}

/// Phase 3: hammering clients against a tight admission budget.
fn overload_phase(w: &Workload, pool: &[Query]) -> (u64, u64, u64, u64, u64) {
    let cam = CameraProfile::smartphone();
    let server = CloudServer::from_records_with_config(
        cam,
        ServerConfig {
            cache: CacheConfig::enabled(w.pool * 2),
            admission: AdmissionConfig {
                enabled: true,
                rate_per_s: 2_000.0,
                burst: 100.0,
                max_inflight: 4,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
        records(w.preload / 4),
    );
    let opts = QueryOptions::default();
    let clients = 8u64;
    let attempts = if w.smoke { 2_000 } else { 10_000 };

    let mut results: Vec<(u64, u64, u64, Vec<u64>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let server = &server;
                scope.spawn(move || {
                    let mut rng = Rng(client);
                    let zipf = Zipf::new(pool.len(), ZIPF_S);
                    let (mut admitted, mut rate_limited, mut overloaded) = (0u64, 0u64, 0u64);
                    let mut lat = Vec::with_capacity(attempts);
                    for _ in 0..attempts {
                        let q = &pool[zipf.sample(&mut rng)];
                        let t = Instant::now();
                        match server.query_admitted(client, q, &opts) {
                            Ok(_) => {
                                admitted += 1;
                                lat.push(t.elapsed().as_micros() as u64);
                            }
                            Err(ShedReason::RateLimited) => rate_limited += 1,
                            Err(ShedReason::Overloaded) => overloaded += 1,
                        }
                    }
                    (admitted, rate_limited, overloaded, lat)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("overload worker panicked"));
        }
    });
    let admitted: u64 = results.iter().map(|r| r.0).sum();
    let rate_limited: u64 = results.iter().map(|r| r.1).sum();
    let overloaded: u64 = results.iter().map(|r| r.2).sum();
    let latencies: Vec<u64> = results.into_iter().flat_map(|r| r.3).collect();
    (
        clients * attempts as u64,
        admitted,
        rate_limited,
        overloaded,
        p99(latencies),
    )
}

fn main() {
    let w = Workload::from_args();
    let cam = CameraProfile::smartphone();
    let opts = QueryOptions::default();
    let pool = query_pool(w.pool);
    let seq = zipf_sequence(w.pool, w.sequence);
    println!(
        "result cache vs cold: {} segments, pool {} distinct queries, \
         zipf(s={ZIPF_S}) x {}, {} rounds{}",
        w.preload,
        w.pool,
        w.sequence,
        w.rounds,
        if w.smoke { " [smoke]" } else { "" }
    );

    // --- Phase 1: correctness across interleaved ingests --------------
    let identical = correctness_phase(&w, &pool, &seq);
    println!("  correctness: cached == uncached across interleaved ingests: {identical}");

    // --- Phase 2: zipfian replay throughput ---------------------------
    let recs = records(w.preload);
    let off =
        CloudServer::from_records_with_config(cam, config(CacheConfig::default()), recs.clone());
    let mut on =
        CloudServer::from_records_with_config(cam, config(CacheConfig::enabled(w.pool * 2)), recs);
    let reg = Registry::new();
    on.attach_observability(&reg);

    let mut t_off = Vec::with_capacity(w.rounds);
    let mut t_on = Vec::with_capacity(w.rounds);
    for round in 0..=w.rounds {
        let t = Instant::now();
        let mut n_off = 0usize;
        for &qi in &seq {
            n_off += off.query(&pool[qi], &opts).len();
        }
        let ns_off = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let mut n_on = 0usize;
        for &qi in &seq {
            n_on += on.query(&pool[qi], &opts).len();
        }
        let ns_on = t.elapsed().as_nanos() as u64;

        assert_eq!(n_on, n_off, "replay hit totals diverge");
        // Round 0 warms both subjects (page cache, result cache).
        if round > 0 {
            t_off.push(ns_off);
            t_on.push(ns_on);
        }
    }
    let query_off = median(&mut t_off);
    let query_on = median(&mut t_on);
    let gain = query_off as f64 / query_on as f64;
    let hits = reg.counter("swag_server_cache_hits_total").get();
    let misses = reg.counter("swag_server_cache_misses_total").get();
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let dur = |ns: u64| fmt_duration(std::time::Duration::from_nanos(ns));
    println!(
        "  replay  cache-off {:>10}   cache-on {:>10}   ({gain:.2}x, {:.1}% hit rate)",
        dur(query_off),
        dur(query_on),
        hit_rate * 100.0
    );

    // --- Phase 3: overload sheds instead of queueing ------------------
    let (offered, admitted, rate_limited, overloaded, adm_p99) = overload_phase(&w, &pool);
    let shed = rate_limited + overloaded;
    println!(
        "  overload: {offered} offered -> {admitted} admitted, {shed} shed \
         ({rate_limited} rate-limited, {overloaded} overloaded), admitted p99 {adm_p99} us"
    );

    let min_gain = if w.smoke { 1.0 } else { MIN_GAIN };
    let gain_ok = gain >= min_gain;
    let shed_ok = shed > 0 && adm_p99 <= MAX_ADMITTED_P99_MICROS;
    let pass = identical && gain_ok && shed_ok;

    let json = format!(
        concat!(
            "{{\n",
            "  \"preloaded_segments\": {},\n",
            "  \"pool\": {},\n",
            "  \"sequence\": {},\n",
            "  \"rounds\": {},\n",
            "  \"zipf_s\": {},\n",
            "  \"smoke\": {},\n",
            "  \"median_ns\": {{\"query_off\": {}, \"query_on\": {}}},\n",
            "  \"throughput_gain\": {:.3},\n",
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},\n",
            "  \"overload\": {{\"offered\": {}, \"admitted\": {}, \"rate_limited\": {}, ",
            "\"overloaded\": {}, \"admitted_p99_micros\": {}}},\n",
            "  \"identical_results\": {},\n",
            "  \"min_gain\": {},\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        w.preload,
        w.pool,
        w.sequence,
        w.rounds,
        ZIPF_S,
        w.smoke,
        query_off,
        query_on,
        gain,
        hits,
        misses,
        hit_rate,
        offered,
        admitted,
        rate_limited,
        overloaded,
        adm_p99,
        identical,
        min_gain,
        pass
    );
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_cache.json");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("cannot write BENCH_cache.json");
    println!("wrote {}", path.display());

    if !pass {
        if !identical {
            eprintln!("FAIL: cached results diverged from uncached");
        } else if !gain_ok {
            eprintln!("FAIL: throughput gain {gain:.2}x < {min_gain}x under the zipfian mix");
        } else {
            eprintln!(
                "FAIL: overload phase — shed {shed}, admitted p99 {adm_p99} us \
                 (need shed > 0 and p99 <= {MAX_ADMITTED_P99_MICROS} us)"
            );
        }
        std::process::exit(1);
    }
}
