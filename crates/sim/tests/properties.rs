//! Property tests for the simulation infrastructure.

use proptest::prelude::*;
use swag_sim::Percentiles;

proptest! {
    #[test]
    fn percentiles_are_ordered_and_bounded(samples in prop::collection::vec(-1e6f64..1e6, 1..500)) {
        let p = Percentiles::of(&samples);
        prop_assert_eq!(p.count, samples.len());
        prop_assert!(p.min <= p.p50 && p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
        prop_assert!(p.mean >= p.min - 1e-9 && p.mean <= p.max + 1e-9);
        // Every percentile is an actual sample value.
        for v in [p.min, p.p50, p.p90, p.p99, p.max] {
            prop_assert!(samples.iter().any(|&s| (s - v).abs() < 1e-12));
        }
    }

    #[test]
    fn percentiles_are_permutation_invariant(samples in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let a = Percentiles::of(&samples);
        let mut rev = samples.clone();
        rev.reverse();
        prop_assert_eq!(a, Percentiles::of(&rev));
    }
}
