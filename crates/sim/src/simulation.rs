//! The deployment simulation loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swag_client::ClientPipeline;
use swag_core::{CameraProfile, DescriptorCodec, UploadBatch};
use swag_geo::{LocalFrame, Vec2};
use swag_net::{Connectivity, NetworkLink, TrafficMeter, UploadPolicy};
use swag_sensors::{generate_trace, scenarios, DeviceClock, Mobility, SensorNoise, TraceConfig};
use swag_server::{CloudServer, Query, QueryOptions};

use crate::events::{EventKind, EventQueue};
use crate::metrics::Percentiles;

/// Deployment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of contributing devices.
    pub providers: usize,
    /// Simulated wall-clock horizon, seconds.
    pub sim_duration_s: f64,
    /// Mean pause between a provider's sessions (exponential), seconds.
    pub mean_session_gap_s: f64,
    /// Session length range (uniform), seconds.
    pub session_duration_s: (f64, f64),
    /// Half-extent of the operating area, metres.
    pub area_extent_m: f64,
    /// Uplink used for descriptor uploads.
    pub uplink: NetworkLink,
    /// When queued uploads are released (see [`UploadPolicy`]).
    pub upload_policy: UploadPolicy,
    /// Querier arrival rate (Poisson), queries per second.
    pub query_rate_hz: f64,
    /// Query radius, metres.
    pub query_radius_m: f64,
    /// Query look-back window, seconds.
    pub query_window_s: f64,
    /// Segmentation threshold.
    pub thresh: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            providers: 20,
            sim_duration_s: 1800.0,
            mean_session_gap_s: 120.0,
            session_duration_s: (30.0, 180.0),
            area_extent_m: 500.0,
            uplink: NetworkLink::cellular_4g(),
            upload_policy: UploadPolicy::Immediate,
            query_rate_hz: 0.2,
            query_radius_m: 100.0,
            query_window_s: 600.0,
            thresh: 0.5,
            seed: 2015,
        }
    }
}

/// What the simulation measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Completed recording sessions.
    pub sessions: usize,
    /// Segments ingested by the server.
    pub segments: usize,
    /// Descriptor bytes uploaded in total.
    pub upload_bytes: u64,
    /// Queries answered.
    pub queries: usize,
    /// Mean hits per query.
    pub mean_hits: f64,
    /// Fraction of queries that found at least one segment.
    pub hit_rate: f64,
    /// Seconds from a segment's end to its retrievability on the server.
    pub time_to_retrievable_s: Percentiles,
    /// Live server query latency, microseconds.
    pub query_latency_us: Percentiles,
}

/// Runs the deployment simulation to completion.
pub fn run_simulation(cfg: &SimConfig) -> SimReport {
    assert!(cfg.providers > 0, "need at least one provider");
    assert!(cfg.sim_duration_s > 0.0);
    assert!(cfg.session_duration_s.0 > 0.0 && cfg.session_duration_s.1 >= cfg.session_duration_s.0);
    assert!(cfg.query_rate_hz >= 0.0);

    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());
    let noise = SensorNoise::smartphone();
    let server = CloudServer::new(cam);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut queue = EventQueue::new();
    let mut meter = TrafficMeter::new();

    // Prime the calendar.
    for provider in 0..cfg.providers as u64 {
        let first = exp(&mut rng, cfg.mean_session_gap_s);
        queue.push(first, EventKind::SessionStart { provider });
    }
    if cfg.query_rate_hz > 0.0 {
        queue.push(
            exp(&mut rng, 1.0 / cfg.query_rate_hz),
            EventKind::QueryArrives,
        );
    }

    let mut sessions = 0usize;
    let mut queries = 0usize;
    let mut hits_total = 0usize;
    let mut queries_with_hits = 0usize;
    let mut retrievability: Vec<f64> = Vec::new();
    let mut latencies_us: Vec<f64> = Vec::new();

    while let Some(event) = queue.pop() {
        if event.time > cfg.sim_duration_s {
            break;
        }
        match event.kind {
            EventKind::SessionStart { provider } => {
                let duration =
                    rng.random_range(cfg.session_duration_s.0..=cfg.session_duration_s.1);
                // Record a random-waypoint wander starting now.
                let mobility = Mobility::random_waypoint(
                    cfg.seed ^ (provider << 32) ^ sessions as u64,
                    cfg.area_extent_m,
                    6,
                    1.4,
                );
                let trace_cfg = TraceConfig::new(25.0, duration).starting_at(event.time);
                let trace = generate_trace(
                    &mobility,
                    &frame,
                    &trace_cfg,
                    &noise,
                    &DeviceClock::PERFECT,
                    &mut rng,
                );
                let result = ClientPipeline::process_trace(cam, cfg.thresh, &trace);
                sessions += 1;

                let session_end = event.time + duration;
                if !result.reps.is_empty() {
                    let segment_ends: Vec<f64> = result.reps.iter().map(|r| r.t_end).collect();
                    let batch = UploadBatch {
                        provider_id: provider,
                        video_id: sessions as u64,
                        reps: result.reps,
                    };
                    let bytes = DescriptorCodec::encode_batch(&batch)
                        .expect("simulated reps are always encodable");
                    meter.record_up(bytes.len());
                    // Release per the upload policy (cellular-only world:
                    // WifiPreferred degenerates to its fallback delay).
                    let send_at = match cfg.upload_policy {
                        UploadPolicy::Immediate => session_end,
                        UploadPolicy::WifiPreferred { max_delay_s } => {
                            match Connectivity::cellular_only().next_wifi_at(session_end) {
                                Some(t) if t <= session_end + max_delay_s => t,
                                _ => session_end + max_delay_s,
                            }
                        }
                        UploadPolicy::Batched { interval_s } => {
                            (session_end / interval_s).ceil() * interval_s
                        }
                    };
                    let arrival = send_at + cfg.uplink.transfer_time_s(bytes.len());
                    queue.push(
                        arrival,
                        EventKind::UploadArrives {
                            batch,
                            segment_ends,
                        },
                    );
                }
                // Next session after an exponential pause.
                queue.push(
                    session_end + exp(&mut rng, cfg.mean_session_gap_s),
                    EventKind::SessionStart { provider },
                );
            }
            EventKind::UploadArrives {
                batch,
                segment_ends,
            } => {
                server.ingest_batch(&batch);
                for t_end in segment_ends {
                    retrievability.push((event.time - t_end).max(0.0));
                }
            }
            EventKind::QueryArrives => {
                let center = frame.from_local(Vec2::new(
                    rng.random_range(-cfg.area_extent_m..=cfg.area_extent_m),
                    rng.random_range(-cfg.area_extent_m..=cfg.area_extent_m),
                ));
                let t1 = event.time;
                let t0 = (t1 - cfg.query_window_s).max(0.0);
                let q = Query::new(t0, t1, center, cfg.query_radius_m);
                let start = std::time::Instant::now();
                let hits = server.query(&q, &QueryOptions::default());
                latencies_us.push(start.elapsed().as_nanos() as f64 / 1e3);
                queries += 1;
                hits_total += hits.len();
                if !hits.is_empty() {
                    queries_with_hits += 1;
                }
                queue.push(
                    event.time + exp(&mut rng, 1.0 / cfg.query_rate_hz),
                    EventKind::QueryArrives,
                );
            }
        }
    }

    SimReport {
        sessions,
        segments: server.stats().segments,
        upload_bytes: meter.bytes_up,
        queries,
        mean_hits: hits_total as f64 / queries.max(1) as f64,
        hit_rate: queries_with_hits as f64 / queries.max(1) as f64,
        time_to_retrievable_s: Percentiles::of(&retrievability),
        query_latency_us: Percentiles::of(&latencies_us),
    }
}

/// Exponential sample with the given mean.
fn exp(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SimConfig {
        SimConfig {
            providers: 5,
            sim_duration_s: 600.0,
            mean_session_gap_s: 60.0,
            session_duration_s: (20.0, 60.0),
            query_rate_hz: 0.1,
            ..SimConfig::default()
        }
    }

    #[test]
    fn simulation_runs_and_produces_activity() {
        let report = run_simulation(&small_config());
        assert!(report.sessions > 5, "sessions {}", report.sessions);
        assert!(report.segments > 0);
        assert!(report.queries > 10, "queries {}", report.queries);
        assert!(report.upload_bytes > 0);
        assert_eq!(report.time_to_retrievable_s.count, report.segments);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = run_simulation(&small_config());
        let b = run_simulation(&small_config());
        // Wall-clock latency differs run to run; everything else is exact.
        assert_eq!(a.sessions, b.sessions);
        assert_eq!(a.segments, b.segments);
        assert_eq!(a.upload_bytes, b.upload_bytes);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.time_to_retrievable_s, b.time_to_retrievable_s);

        let different = run_simulation(&SimConfig {
            seed: 7,
            ..small_config()
        });
        assert_ne!(a.segments, different.segments);
    }

    #[test]
    fn retrievability_is_dominated_by_session_tail_not_transfer() {
        // Descriptor uploads are tiny: the time from segment end to
        // retrievability is bounded by the remaining session duration plus
        // a sub-second transfer, never by video-scale transfer times.
        let report = run_simulation(&small_config());
        let max_session = 60.0;
        assert!(
            report.time_to_retrievable_s.max <= max_session + 1.0,
            "worst retrievability {}",
            report.time_to_retrievable_s.max
        );
        // Segments that end at the session end become retrievable in
        // sub-second time (pure transfer latency).
        assert!(report.time_to_retrievable_s.min < 1.0);
    }

    #[test]
    fn faster_uplink_never_hurts() {
        let slow = run_simulation(&SimConfig {
            uplink: NetworkLink::cellular_3g(),
            ..small_config()
        });
        let fast = run_simulation(&SimConfig {
            uplink: NetworkLink::wifi(),
            ..small_config()
        });
        assert!(fast.time_to_retrievable_s.min <= slow.time_to_retrievable_s.min + 1e-6);
    }

    #[test]
    fn batched_policy_delays_retrievability() {
        let immediate = run_simulation(&small_config());
        let batched = run_simulation(&SimConfig {
            upload_policy: UploadPolicy::Batched { interval_s: 120.0 },
            ..small_config()
        });
        assert!(
            batched.time_to_retrievable_s.p50 >= immediate.time_to_retrievable_s.p50,
            "batched {} < immediate {}",
            batched.time_to_retrievable_s.p50,
            immediate.time_to_retrievable_s.p50
        );
        // Same footage either way.
        assert_eq!(batched.sessions, immediate.sessions);
    }

    #[test]
    fn zero_query_rate_is_valid() {
        let report = run_simulation(&SimConfig {
            query_rate_hz: 0.0,
            ..small_config()
        });
        assert_eq!(report.queries, 0);
        assert_eq!(report.mean_hits, 0.0);
        assert!(report.segments > 0);
    }
}
