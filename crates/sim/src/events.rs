//! The event queue: a min-heap of timestamped events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use swag_core::UploadBatch;

/// A simulation event.
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A provider starts a recording session.
    SessionStart {
        /// Which provider.
        provider: u64,
    },
    /// A descriptor batch finishes its uplink transfer and reaches the
    /// server.
    UploadArrives {
        /// The decoded batch.
        batch: UploadBatch,
        /// `t_end` of each segment in the batch (for the
        /// time-to-retrievability metric).
        segment_ends: Vec<f64>,
    },
    /// A querier issues a query.
    QueryArrives,
}

/// A timestamped event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Simulation time, seconds.
    pub time: f64,
    /// Tie-break sequence number (FIFO among equal times).
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic FIFO-stable event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        debug_assert!(time.is_finite());
        self.heap.push(Event {
            time,
            seq: self.next_seq,
            kind,
        });
        self.next_seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5.0, EventKind::QueryArrives);
        q.push(1.0, EventKind::QueryArrives);
        q.push(3.0, EventKind::QueryArrives);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::SessionStart { provider: 1 });
        q.push(1.0, EventKind::SessionStart { provider: 2 });
        q.push(1.0, EventKind::SessionStart { provider: 3 });
        let order: Vec<u64> = std::iter::from_fn(|| {
            q.pop().map(|e| match e.kind {
                EventKind::SessionStart { provider } => provider,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1.0, EventKind::QueryArrives);
        q.push(2.0, EventKind::QueryArrives);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
