//! Simulation metrics: percentile summaries of sample distributions.

/// Percentile summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Summarises a sample set. Returns the all-zero summary for empty
    /// input.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Percentiles {
                count: 0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        Percentiles {
            count: sorted.len(),
            min: sorted[0],
            p50: pick(0.5),
            p90: pick(0.9),
            p99: pick(0.99),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let p = Percentiles::of(&[]);
        assert_eq!(p.count, 0);
        assert_eq!(p.max, 0.0);
    }

    #[test]
    fn single_sample() {
        let p = Percentiles::of(&[7.0]);
        assert_eq!((p.min, p.p50, p.p99, p.max, p.mean), (7.0, 7.0, 7.0, 7.0, 7.0));
    }

    #[test]
    fn uniform_ramp() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&samples);
        assert_eq!(p.count, 100);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
        assert!((p.p50 - 51.0).abs() <= 1.0);
        assert!((p.p90 - 90.0).abs() <= 1.5);
        assert!((p.mean - 50.5).abs() < 1e-9);
        // Order invariance.
        let mut shuffled = samples.clone();
        shuffled.reverse();
        assert_eq!(Percentiles::of(&shuffled), p);
    }

    #[test]
    fn percentiles_are_monotone() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let p = Percentiles::of(&samples);
        assert!(p.min <= p.p50 && p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
    }
}
