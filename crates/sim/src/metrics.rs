//! Simulation metrics: percentile summaries of sample distributions.
//!
//! The `Percentiles` type now lives in `swag-obs` (the workspace-wide
//! observability crate) with a true nearest-rank quantile definition; it
//! is re-exported here so simulation call sites keep compiling. The old
//! in-crate implementation used a `round()`-based index pick that could
//! sit half a rank off the textbook definition.

pub use swag_obs::Percentiles;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let p = Percentiles::of(&[]);
        assert_eq!(p.count, 0);
        assert_eq!(p.max, 0.0);
    }

    #[test]
    fn single_sample() {
        let p = Percentiles::of(&[7.0]);
        assert_eq!(
            (p.min, p.p50, p.p99, p.max, p.mean),
            (7.0, 7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn uniform_ramp() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&samples);
        assert_eq!(p.count, 100);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
        // Nearest rank: ceil(0.5*100) = rank 50 → sample 50.
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert!((p.mean - 50.5).abs() < 1e-9);
        // Order invariance.
        let mut shuffled = samples.clone();
        shuffled.reverse();
        assert_eq!(Percentiles::of(&shuffled), p);
    }

    #[test]
    fn percentiles_are_monotone() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let p = Percentiles::of(&samples);
        assert!(p.min <= p.p50 && p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
    }
}
