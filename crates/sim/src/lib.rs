//! Discrete-event simulation of a complete SWAG deployment.
//!
//! The paper evaluates components in isolation; this crate wires them into
//! a running system and measures the end-to-end behaviour a deployment
//! would see:
//!
//! * **providers** start recording sessions at random times, walk around
//!   ([`swag_sensors::Mobility`]), and — when a session ends — segment the
//!   footage ([`swag_client::ClientPipeline`]) and upload the descriptor
//!   batch over a lossy cellular uplink ([`swag_net::NetworkLink`]);
//! * the **server** ingests batches the moment they arrive;
//! * **queriers** arrive as a Poisson process and issue spatio-temporal
//!   queries over the recent past.
//!
//! The headline metric is **time-to-retrievability**: how long after a
//! video segment ends until a query can find it (segmentation is
//! real-time, so this is dominated by the upload path — exactly the cost
//! the content-free design minimises). Query latency and hit statistics
//! come from the live server.
//!
//! Everything is deterministic for a given [`SimConfig::seed`].

pub mod events;
pub mod metrics;
pub mod simulation;

pub use metrics::Percentiles;
pub use simulation::{run_simulation, SimConfig, SimReport};
