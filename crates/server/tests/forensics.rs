//! Query forensics: EXPLAIN ANALYZE equivalence, wide-event capture and
//! tail sampling, JSON round-trips, and replay digest stability.
//!
//! The load-bearing guarantee is **byte-identity**: the instrumented
//! analyzed executor and the events-enabled query path must return
//! exactly what the plain path returns, hit for hit, field for field —
//! otherwise a forensic record describes an execution that never
//! happened.

use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_server::{
    result_digest, AdmissionConfig, CacheConfig, CacheOutcome, CloudServer, EventLogConfig, Query,
    QueryEvent, QueryOptions, QueryOutcome, RankMode, SearchHit, ServerConfig, QUERY_EVENT_WORDS,
};

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Tiny deterministic generator (SplitMix64), same idiom as the engine
/// equivalence suite.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

fn workload(seed: u64, n: usize) -> Vec<RepFov> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| {
            let dx = rng.f64(-400.0, 400.0);
            let dy = rng.f64(-400.0, 400.0);
            let theta = rng.f64(0.0, 360.0);
            let t0 = rng.f64(0.0, 1_000.0);
            let dur = rng.f64(1.0, 40.0);
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
        .collect()
}

fn server_with(config: ServerConfig, seed: u64, n: usize) -> CloudServer {
    let server = CloudServer::with_config(CameraProfile::smartphone(), config);
    server.ingest_batch(&UploadBatch {
        provider_id: 1,
        video_id: 0,
        reps: workload(seed, n),
    });
    server
}

fn probes(seed: u64, n: usize) -> Vec<(Query, QueryOptions)> {
    let mut rng = Rng(seed ^ 0xdead_beef);
    (0..n)
        .map(|i| {
            let t0 = rng.f64(0.0, 900.0);
            let q = Query::new(
                t0,
                t0 + rng.f64(5.0, 120.0),
                base().offset_by(swag_geo::Vec2::new(
                    rng.f64(-300.0, 300.0),
                    rng.f64(-300.0, 300.0),
                )),
                rng.f64(100.0, 500.0),
            );
            let opts = QueryOptions {
                top_n: 1 + (i % 7),
                direction_filter: i % 3 != 0,
                require_coverage: i % 5 == 0,
                rank: if i % 2 == 0 {
                    RankMode::Distance
                } else {
                    RankMode::Quality
                },
                ..QueryOptions::default()
            };
            (q, opts)
        })
        .collect()
}

fn assert_same_hits(a: &[SearchHit], b: &[SearchHit], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: hit counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x, y, "{what}: hits differ");
    }
    assert_eq!(
        result_digest(a),
        result_digest(b),
        "{what}: digests differ despite equal hits"
    );
}

/// EXPLAIN ANALYZE must return byte-identical results to the plain
/// query path, across filter/rank variations — with the cache off.
#[test]
fn analyzed_execution_matches_normal_execution() {
    let server = server_with(ServerConfig::default(), 11, 300);
    for (q, opts) in probes(11, 24) {
        let plain = server.query(&q, &opts);
        let analyzed = server.query_analyzed(7, &q, &opts);
        assert_same_hits(&plain, &analyzed.hits, "analyze-vs-plain");
        let ev = analyzed.report.event;
        assert_eq!(ev.outcome, QueryOutcome::Served);
        assert_eq!(ev.cache, CacheOutcome::Off);
        assert_eq!(ev.hit_count, plain.len() as u64);
        assert_eq!(ev.digest, result_digest(&plain));
        // Every operator annotated: rows flow through the pipeline.
        assert_eq!(ev.rank_rows_in, ev.index_rows_out + ev.delta_rows_out);
        assert_eq!(ev.rank_rows_out, ev.hit_count);
        // index/delta hit split counts filter survivors *before* top-N
        // truncation: at least everything ranked out, at most rows in.
        let split = ev.hits_index + ev.hits_delta;
        assert!(split >= ev.rank_rows_out && split <= ev.rank_rows_in);
        let text = analyzed.report.render();
        for needle in ["index_scan", "delta_scan", "ranking", "digest", "fanout"] {
            assert!(text.contains(needle), "analyze render missing {needle}");
        }
    }
}

/// With the result cache enabled, a repeated analyzed query is served
/// from the cache (annotated as a hit) and still byte-identical.
#[test]
fn analyzed_execution_reports_cache_decisions() {
    let server = server_with(
        ServerConfig {
            cache: CacheConfig::enabled(64),
            ..ServerConfig::default()
        },
        13,
        300,
    );
    let (q, opts) = probes(13, 1).remove(0);
    let first = server.query_analyzed(7, &q, &opts);
    assert_eq!(first.report.event.cache, CacheOutcome::Miss);
    let second = server.query_analyzed(7, &q, &opts);
    assert_eq!(second.report.event.cache, CacheOutcome::Hit);
    assert_same_hits(&first.hits, &second.hits, "cache-hit analyze");
    assert_eq!(first.report.event.digest, second.report.event.digest);
    assert!(second
        .report
        .render()
        .contains("served from the result cache"));
}

/// The events-enabled query path (instrumented executor) must return
/// byte-identical results to an events-disabled twin.
#[test]
fn evented_queries_match_uneventful_twin() {
    let plain = server_with(ServerConfig::default(), 17, 300);
    let evented = server_with(
        ServerConfig {
            events: EventLogConfig::enabled(0, 17),
            ..ServerConfig::default()
        },
        17,
        300,
    );
    for (q, opts) in probes(17, 24) {
        assert_same_hits(
            &plain.query(&q, &opts),
            &evented.query(&q, &opts),
            "evented-vs-plain",
        );
    }
    let log = evented.event_log().expect("events enabled in config");
    let stats = log.stats();
    assert_eq!(stats.pushed, 24, "one wide event per query");
}

/// Kept events carry the full request bit-exactly: re-running the
/// reconstructed query yields the recorded digest (replay semantics).
#[test]
fn kept_events_replay_to_the_same_digest() {
    let server = server_with(
        ServerConfig {
            events: EventLogConfig {
                enabled: true,
                keep_per_mille: 1_000,
                ..EventLogConfig::default()
            },
            ..ServerConfig::default()
        },
        19,
        300,
    );
    for (q, opts) in probes(19, 16) {
        server.query(&q, &opts);
    }
    let kept = server.event_log().expect("events enabled in config").kept();
    assert_eq!(kept.len(), 16, "keep_per_mille 1000 keeps everything");
    for ev in kept {
        let replayed = server.query_analyzed(7, &ev.query(), &ev.options());
        assert_eq!(
            result_digest(&replayed.hits),
            ev.digest,
            "replaying a captured event against unchanged state must reproduce its digest"
        );
        // Round-trip through the JSONL wire format, bit-exact.
        let parsed = QueryEvent::from_json(&ev.to_json()).expect("own JSON must parse");
        assert_eq!(parsed.encode(), ev.encode(), "JSON round-trip drifted");
    }
}

/// Shed queries always produce kept events (class Always overrides a
/// zero sampling rate), annotated with the reason and token balance.
#[test]
fn shed_queries_are_always_kept() {
    let server = server_with(
        ServerConfig {
            admission: AdmissionConfig {
                enabled: true,
                rate_per_s: 1.0,
                burst: 2.0,
                ..AdmissionConfig::default()
            },
            // keep_per_mille 0: ordinary events are never sampled in, so
            // every kept event below must be a shed.
            events: EventLogConfig {
                enabled: true,
                keep_per_mille: 0,
                ..EventLogConfig::default()
            },
            ..ServerConfig::default()
        },
        23,
        100,
    );
    let (q, opts) = probes(23, 1).remove(0);
    let mut sheds = 0;
    for _ in 0..10 {
        if server.query_admitted(42, &q, &opts).is_err() {
            sheds += 1;
        }
    }
    assert_eq!(sheds, 8, "burst of 2 admits twice, then rate-limits");
    let kept = server.event_log().expect("events enabled in config").kept();
    assert_eq!(kept.len(), sheds, "every shed kept, nothing else");
    for ev in &kept {
        assert!(matches!(ev.outcome, QueryOutcome::Shed(_)));
        assert!(
            ev.tokens_remaining.expect("admission was consulted") < 1.0,
            "shed event must record the empty bucket"
        );
        assert_eq!(ev.digest, 0, "no result to digest");
    }
    // Admitted queries under keep_per_mille 0 still *record* (ring) but
    // are not retained.
    let stats = server
        .event_log()
        .expect("events enabled in config")
        .stats();
    assert_eq!(stats.pushed, 10);
    assert_eq!(stats.kept, sheds as u64);
}

/// A slow-over-threshold query is always kept even at sampling rate 0.
#[test]
fn slow_queries_are_always_kept() {
    let server = server_with(
        ServerConfig {
            events: EventLogConfig {
                enabled: true,
                keep_per_mille: 0,
                slow_micros: 1, // every real query takes >= 1 us
                ..EventLogConfig::default()
            },
            ..ServerConfig::default()
        },
        29,
        300,
    );
    let (q, opts) = probes(29, 1).remove(0);
    server.query(&q, &opts);
    let kept = server.event_log().expect("events enabled in config").kept();
    assert_eq!(kept.len(), 1, "over-SLO query kept at sampling rate 0");
    assert!(kept[0].total_micros >= 1);
}

/// The encoded word layout is stable and self-describing: encode/decode
/// round-trips every field bit-exactly, including negative-zero floats
/// and the discriminants.
#[test]
fn event_words_round_trip() {
    let server = server_with(
        ServerConfig {
            events: EventLogConfig::enabled(0, 31),
            admission: AdmissionConfig {
                enabled: true,
                ..AdmissionConfig::default()
            },
            cache: CacheConfig::enabled(16),
            ..ServerConfig::default()
        },
        31,
        200,
    );
    let (q, opts) = probes(31, 1).remove(0);
    let analyzed = server.query_analyzed(3, &q, &opts);
    let ev = analyzed.report.event;
    let words = ev.encode();
    assert_eq!(words.len(), QUERY_EVENT_WORDS);
    let back = QueryEvent::decode(&words).expect("own encoding must decode");
    assert_eq!(back.encode(), words, "decode(encode(ev)) drifted");
    assert_eq!(back.query(), q, "query reconstruction must be bit-exact");
    assert_eq!(back.options().top_n, opts.top_n);
    assert_eq!(back.options().rank, opts.rank);
    assert!(back.tokens_remaining.is_some(), "admission was consulted");
    // Wrong width is rejected, not mangled.
    assert!(QueryEvent::decode(&words[..31]).is_none());
}
