//! Facade-level behaviour of [`CloudServer`]: the unit tests that lived
//! in `server.rs` before the engine split, now exercising the same
//! surface through the public API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_obs::{MonotonicClock, Registry};
use swag_server::{
    persistence, CloudServer, IndexKind, Query, QueryOptions, RankMode, SearchHit, SegmentRef,
    ServerConfig,
};

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Advances by a fixed step on every read, so each timed interval in
/// the query path is exactly `step` microseconds.
struct SteppingClock {
    t: AtomicU64,
    step: u64,
}

impl SteppingClock {
    fn with_step(step: u64) -> Arc<Self> {
        Arc::new(SteppingClock {
            t: AtomicU64::new(0),
            step,
        })
    }
}

impl MonotonicClock for SteppingClock {
    fn now_micros(&self) -> u64 {
        self.t.fetch_add(self.step, Ordering::Relaxed)
    }
}

fn batch(provider: u64, n: usize) -> UploadBatch {
    UploadBatch {
        provider_id: provider,
        video_id: 1,
        reps: (0..n)
            .map(|i| {
                let p = center().offset(180.0, 10.0 + i as f64 * 5.0);
                RepFov::new(i as f64 * 10.0, i as f64 * 10.0 + 8.0, Fov::new(p, 0.0))
            })
            .collect(),
    }
}

#[test]
fn ingest_and_query_round_trip() {
    let server = CloudServer::new(CameraProfile::smartphone());
    let ids = server.ingest_batch(&batch(42, 5));
    assert_eq!(ids.len(), 5);
    let q = Query::new(0.0, 100.0, center(), 100.0);
    let hits = server.query(&q, &QueryOptions::default());
    assert_eq!(hits.len(), 5);
    assert_eq!(hits[0].source.provider_id, 42);
    // Nearest first.
    assert!((hits[0].distance_m - 10.0).abs() < 0.5);
    let stats = server.stats();
    assert_eq!(stats.segments, 5);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.queries, 1);
}

#[test]
fn temporal_window_restricts_results() {
    let server = CloudServer::new(CameraProfile::smartphone());
    server.ingest_batch(&batch(1, 5)); // segments at t = 0-8, 10-18, ...
    let q = Query::new(20.0, 28.0, center(), 200.0);
    let hits = server.query(&q, &QueryOptions::default());
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].rep.t_start, 20.0);
}

#[test]
fn linear_and_rtree_servers_agree() {
    let a = CloudServer::with_index(CameraProfile::smartphone(), IndexKind::RTree);
    let b = CloudServer::with_index(CameraProfile::smartphone(), IndexKind::Linear);
    for provider in 0..10 {
        let batch = batch(provider, 8);
        a.ingest_batch(&batch);
        b.ingest_batch(&batch);
    }
    let q = Query::new(0.0, 100.0, center(), 60.0);
    let opts = QueryOptions {
        top_n: 50,
        ..QueryOptions::default()
    };
    let mut ha: Vec<_> = a.query(&q, &opts).iter().map(|h| h.source).collect();
    let mut hb: Vec<_> = b.query(&q, &opts).iter().map(|h| h.source).collect();
    ha.sort_by_key(|s| (s.provider_id, s.segment_idx));
    hb.sort_by_key(|s| (s.provider_id, s.segment_idx));
    assert_eq!(ha, hb);
}

#[test]
fn standing_query_sees_only_future_matching_ingest() {
    let server = CloudServer::new(CameraProfile::smartphone());
    server.ingest_batch(&batch(1, 3)); // before subscribing: invisible
    let sub = server.subscribe(
        Query::new(0.0, 1000.0, center(), 100.0),
        QueryOptions::default(),
    );
    assert!(server.poll_subscription(sub).is_empty());

    server.ingest_batch(&batch(2, 3));
    let hits = server.poll_subscription(sub);
    assert_eq!(hits.len(), 3);
    assert!(hits.iter().all(|h| h.source.provider_id == 2));
    // Drained; cancel stops future delivery.
    assert!(server.poll_subscription(sub).is_empty());
    assert!(server.unsubscribe(sub));
    server.ingest_batch(&batch(3, 3));
    assert!(server.poll_subscription(sub).is_empty());
}

#[test]
fn retract_provider_hides_their_segments() {
    let server = CloudServer::new(CameraProfile::smartphone());
    server.ingest_batch(&batch(1, 5));
    server.ingest_batch(&batch(2, 5));
    assert_eq!(server.stats().segments, 10);

    let removed = server.retract_provider(1);
    assert_eq!(removed, 5);
    assert_eq!(server.stats().segments, 5);
    // Retracting again is a no-op.
    assert_eq!(server.retract_provider(1), 0);

    let q = Query::new(0.0, 100.0, center(), 200.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query(&q, &opts);
    assert!(hits.iter().all(|h| h.source.provider_id == 2));
    assert_eq!(hits.len(), 5);
}

#[test]
fn retraction_removes_published_and_pending_records() {
    // Threshold 10: the first batch publishes into the sharded
    // snapshot, the next two stay pending in the delta. Retraction
    // must reach both places.
    let server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            publish_threshold: 10,
            ..ServerConfig::default()
        },
    );
    server.ingest_batch(&batch(1, 10)); // published (threshold hit)
    server.ingest_batch(&batch(1, 3)); // pending
    server.ingest_batch(&batch(2, 3)); // pending
    assert_eq!(server.stats().pending_delta, 6);
    assert!(server.stats().shards > 0);

    assert_eq!(server.retract_provider(1), 13);
    let stats = server.stats();
    assert_eq!(stats.segments, 3);
    // Retraction folds the delta into the core before retiring, so
    // nothing stays pending afterwards.
    assert_eq!(stats.pending_delta, 0);
    let q = Query::new(0.0, 1000.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query(&q, &opts);
    assert_eq!(hits.len(), 3);
    assert!(hits.iter().all(|h| h.source.provider_id == 2));
}

#[test]
fn retraction_survives_snapshots() {
    let server = CloudServer::new(CameraProfile::smartphone());
    server.ingest_batch(&batch(1, 4));
    server.ingest_batch(&batch(2, 4));
    server.retract_provider(1);
    let restored = persistence::load_snapshot(
        persistence::save_snapshot(&server).unwrap(),
        CameraProfile::smartphone(),
    )
    .unwrap();
    assert_eq!(restored.stats().segments, 4);
    let q = Query::new(0.0, 100.0, center(), 200.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    assert!(restored
        .query(&q, &opts)
        .iter()
        .all(|h| h.source.provider_id == 2));
}

#[test]
fn publish_threshold_folds_delta_into_snapshot() {
    let server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            publish_threshold: 4,
            ..ServerConfig::default()
        },
    );
    server.ingest_batch(&batch(1, 3));
    let stats = server.stats();
    // Below the threshold everything is still pending, yet visible.
    assert_eq!((stats.pending_delta, stats.shards), (3, 0));
    let q = Query::new(0.0, 1000.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    assert_eq!(server.query(&q, &opts).len(), 3);

    server.ingest_batch(&batch(2, 2)); // 5 >= 4: snapshot published
    let stats = server.stats();
    assert_eq!(stats.pending_delta, 0);
    assert!(stats.shards > 0);
    assert_eq!(stats.segments, 5);
    assert_eq!(server.query(&q, &opts).len(), 5);
}

#[test]
fn retention_horizon_expires_old_segments_at_publish() {
    let server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            shard_width_s: 50.0,
            publish_threshold: 1, // publish on every ingest
            retention_horizon_s: Some(100.0),
            ..ServerConfig::default()
        },
    );
    let src = |p| SegmentRef {
        provider_id: p,
        video_id: 0,
        segment_idx: 0,
    };
    let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
    server.ingest_one(RepFov::new(0.0, 10.0, fov), src(1));
    assert_eq!(server.stats().segments, 1);
    // The second ingest moves the retention clock to t=510; the first
    // segment's shard now sits past the 100 s horizon and is dropped.
    server.ingest_one(RepFov::new(500.0, 510.0, fov), src(2));
    let stats = server.stats();
    assert_eq!(stats.segments, 1);
    let q = Query::new(0.0, 1000.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query(&q, &opts);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].source.provider_id, 2);
}

#[test]
fn explicit_expiry_prunes_and_compacts_the_store() {
    let server = CloudServer::new(CameraProfile::smartphone());
    let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
    // 40 old segments (bucket 0 at the default 600 s width), 10 recent.
    for i in 0..40u64 {
        server.ingest_one(
            RepFov::new(i as f64, i as f64 + 5.0, fov),
            SegmentRef {
                provider_id: 1,
                video_id: 0,
                segment_idx: i as u32,
            },
        );
    }
    for i in 0..10u64 {
        server.ingest_one(
            RepFov::new(1000.0 + i as f64, 1005.0 + i as f64, fov),
            SegmentRef {
                provider_id: 2,
                video_id: 0,
                segment_idx: i as u32,
            },
        );
    }
    assert_eq!(server.stats().segments, 50);

    let dropped = server.expire_before(600.0);
    assert_eq!(dropped, 40);
    let stats = server.stats();
    assert_eq!(stats.segments, 10);
    // 40 tombstones out of 50 slots crosses the compaction threshold:
    // the store is re-packed densely.
    assert_eq!(stats.store_slots, 10);
    let q = Query::new(0.0, 2000.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query(&q, &opts);
    assert_eq!(hits.len(), 10);
    assert!(hits.iter().all(|h| h.source.provider_id == 2));
    // Expiring again finds nothing new.
    assert_eq!(server.expire_before(600.0), 0);
}

#[test]
fn batch_query_matches_sequential() {
    let server = CloudServer::new(CameraProfile::smartphone());
    for provider in 0..6 {
        server.ingest_batch(&batch(provider, 8));
    }
    let queries: Vec<Query> = (0..23)
        .map(|i| {
            Query::new(
                f64::from(i) * 3.0,
                f64::from(i) * 3.0 + 40.0,
                center().offset(f64::from(i) * 16.0, 20.0),
                150.0,
            )
        })
        .collect();
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let sequential: Vec<Vec<SearchHit>> = queries.iter().map(|q| server.query(q, &opts)).collect();
    for threads in [1, 3, 8] {
        let parallel = server.query_batch(&queries, &opts, threads);
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            let pv: Vec<_> = p.iter().map(|h| h.source).collect();
            let sv: Vec<_> = s.iter().map(|h| h.source).collect();
            assert_eq!(pv, sv, "threads = {threads}");
        }
    }
}

#[test]
fn query_nearest_returns_k_closest() {
    let server = CloudServer::new(CameraProfile::smartphone());
    server.ingest_batch(&batch(5, 8)); // distances 10, 15, ..., 45 m south
    let opts = QueryOptions {
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query_nearest(0.0, 1000.0, center(), 3, &opts, 100_000.0);
    assert_eq!(hits.len(), 3);
    let d: Vec<f64> = hits.iter().map(|h| h.distance_m).collect();
    assert!((d[0] - 10.0).abs() < 0.5 && (d[1] - 15.0).abs() < 0.5 && (d[2] - 20.0).abs() < 0.5);
}

#[test]
fn query_nearest_expands_radius_to_find_far_segments() {
    let server = CloudServer::new(CameraProfile::smartphone());
    // One lonely segment 3 km away, pointing at the centre.
    let p = center().offset(180.0, 3000.0);
    server.ingest_one(
        RepFov::new(0.0, 10.0, Fov::new(p, 0.0)),
        SegmentRef {
            provider_id: 1,
            video_id: 0,
            segment_idx: 0,
        },
    );
    let opts = QueryOptions {
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query_nearest(0.0, 100.0, center(), 1, &opts, 10_000.0);
    assert_eq!(hits.len(), 1);
    assert!((hits[0].distance_m - 3000.0).abs() < 10.0);
    // With a tight radius budget the search gives up empty-handed.
    assert!(server
        .query_nearest(0.0, 100.0, center(), 1, &opts, 500.0)
        .is_empty());
}

#[test]
fn query_nearest_zero_k() {
    let server = CloudServer::new(CameraProfile::smartphone());
    server.ingest_batch(&batch(1, 3));
    assert!(server
        .query_nearest(0.0, 100.0, center(), 0, &QueryOptions::default(), 1e5)
        .is_empty());
}

#[test]
fn quality_nearest_keeps_expanding_past_early_hits() {
    // Regression: the k-hit early exit is only sound under Distance
    // ranking. Under Quality, a far-but-dead-on segment outranks a
    // near-but-askew one, so stopping at the first ring that yields k
    // hits returns the wrong segment.
    let server = CloudServer::new(CameraProfile::smartphone());
    // 20 m south but pointing 20 degrees off the scene: quality
    // 0.8 (proximity) x 0.2 (alignment) = 0.16.
    server.ingest_one(
        RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 20.0), 20.0)),
        SegmentRef {
            provider_id: 1,
            video_id: 0,
            segment_idx: 0,
        },
    );
    // 80 m south, dead-on: quality 0.2 x 1.0 = 0.2. Outside the
    // initial 50 m ring, so a premature exit never sees it.
    server.ingest_one(
        RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 80.0), 0.0)),
        SegmentRef {
            provider_id: 2,
            video_id: 0,
            segment_idx: 0,
        },
    );
    let opts = QueryOptions {
        rank: RankMode::Quality,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query_nearest(0.0, 10.0, center(), 1, &opts, 200.0);
    assert_eq!(hits.len(), 1);
    assert_eq!(
        hits[0].source.provider_id, 2,
        "quality ranking must surface the dead-on segment beyond the first ring"
    );
    // Distance mode still prefers the nearer segment.
    let opts = QueryOptions {
        rank: RankMode::Distance,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query_nearest(0.0, 10.0, center(), 1, &opts, 200.0);
    assert_eq!(hits[0].source.provider_id, 1);
}

#[test]
fn injected_clock_makes_latency_accounting_exact() {
    let server = CloudServer::with_clock(
        CameraProfile::smartphone(),
        IndexKind::RTree,
        SteppingClock::with_step(7),
    );
    server.ingest_batch(&batch(1, 5));
    let q = Query::new(0.0, 100.0, center(), 100.0);
    for _ in 0..10 {
        server.query(&q, &QueryOptions::default());
    }
    let stats = server.stats();
    assert_eq!(stats.queries, 10);
    // Uninstrumented queries read the clock exactly twice.
    assert_eq!(stats.query_micros_total, 10 * 7);
    // No observability attached: phase histograms stay empty.
    assert_eq!(stats.query_micros, swag_obs::HistogramSnapshot::empty());
}

#[test]
fn observability_splits_query_phases_exactly() {
    let reg = Registry::new();
    let mut server = CloudServer::with_clock(
        CameraProfile::smartphone(),
        IndexKind::RTree,
        SteppingClock::with_step(5),
    );
    server.attach_observability(&reg);
    server.ingest_batch(&batch(3, 6));
    let q = Query::new(0.0, 100.0, center(), 200.0);
    for _ in 0..4 {
        server.query(&q, &QueryOptions::default());
    }

    let stats = server.stats();
    assert_eq!(stats.queries, 4);
    // Instrumented queries read the clock five times (t0, locked,
    // index scanned, delta scanned, ranked): lock wait and ranking are
    // one step each, the legacy scan phase spans index + delta scan
    // (two steps), the total exactly four.
    for phase in [&stats.lock_wait_micros, &stats.ranking_micros] {
        assert_eq!(phase.count, 4);
        assert_eq!(phase.sum, 4 * 5);
    }
    assert_eq!(stats.index_scan_micros.count, 4);
    assert_eq!(stats.index_scan_micros.sum, 4 * 10);
    assert_eq!(stats.query_micros.sum, 4 * 20);
    assert_eq!(stats.query_micros_total, 4 * 20);

    // The per-operator split is exact too: one step per stage, keyed by
    // the same names the trace spans use.
    for op in ["index_scan", "delta_scan", "ranking"] {
        let h = reg
            .histogram(&swag_obs::labeled_name(
                "swag_server_op_micros",
                &[("op", op)],
            ))
            .snapshot();
        assert_eq!((h.count, h.sum), (4, 4 * 5), "op {op}");
    }
    // All 6 segments still sit in the staged delta (threshold 256), so
    // the hit split attributes every hit to the delta scan.
    assert_eq!(
        reg.counter(&swag_obs::labeled_name(
            "swag_server_hits_total",
            &[("src", "index")],
        ))
        .get(),
        0
    );
    assert_eq!(
        reg.counter(&swag_obs::labeled_name(
            "swag_server_hits_total",
            &[("src", "delta")],
        ))
        .get(),
        4 * 6
    );
    let probed = reg.histogram("swag_server_shards_probed").snapshot();
    assert_eq!(probed.count, 4);
    assert_eq!(probed.sum, 0, "nothing published yet: no shards to probe");
    let rows = reg
        .histogram(&swag_obs::labeled_name(
            "swag_server_op_rows_out",
            &[("op", "ranking")],
        ))
        .snapshot();
    assert_eq!((rows.count, rows.sum), (4, 4 * 6));

    // The same numbers are visible through the registry.
    assert_eq!(
        reg.histogram("swag_server_query_micros").snapshot().count,
        4
    );
    assert_eq!(reg.counter("swag_server_segments_ingested_total").get(), 6);
    assert_eq!(
        reg.histogram("swag_server_ingest_micros").snapshot().count,
        1
    );
    let cands = reg.histogram("swag_server_query_candidates").snapshot();
    assert_eq!(cands.count, 4);
    assert_eq!(cands.sum, 4 * 6);
    assert!(
        reg.histogram("swag_server_index_leaves_scanned")
            .snapshot()
            .sum
            >= 4
    );
}

#[test]
fn refresh_gauges_exports_engine_internals() {
    let reg = Registry::new();
    let mut server = CloudServer::with_config_and_clock(
        CameraProfile::smartphone(),
        ServerConfig {
            publish_threshold: 4,
            shard_width_s: 10.0,
            ..ServerConfig::default()
        },
        SteppingClock::with_step(5),
    );
    server.attach_observability(&reg);
    server.ingest_batch(&batch(1, 5)); // 5 >= 4: published
    server.ingest_batch(&batch(2, 2)); // staged
    server.subscribe(
        Query::new(0.0, 100.0, center(), 100.0),
        QueryOptions::default(),
    );
    let dead = server.subscribe(
        Query::new(0.0, 100.0, center(), 100.0),
        QueryOptions::default(),
    );
    server.unsubscribe(dead);
    server.refresh_gauges(&reg);
    assert_eq!(reg.gauge("swag_server_staged_delta").get(), 2);
    // Cancelled subscriptions keep their compiled plan resident.
    assert_eq!(reg.gauge("swag_server_compiled_plans").get(), 2);
    assert!(reg.gauge("swag_server_epoch_age_micros").get() > 0);
    // batch() places rep i at [10i, 10i+8]: five 10-second shards,
    // one published entry each.
    let shards: Vec<String> = reg
        .names()
        .into_iter()
        .filter(|n| n.starts_with("swag_server_shard_entries{"))
        .collect();
    assert_eq!(shards.len(), 5, "{shards:?}");
    for shard in &shards {
        assert_eq!(reg.gauge(shard).get(), 1, "{shard}");
    }
    // Expiry zeroes the shard gauges instead of leaving them stale.
    server.expire_before(1_000.0);
    server.refresh_gauges(&reg);
    for shard in &shards {
        assert_eq!(reg.gauge(shard).get(), 0, "{shard}");
    }
}

#[test]
fn publish_metrics_record_snapshot_lifecycle() {
    let reg = Registry::new();
    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            publish_threshold: 4,
            ..ServerConfig::default()
        },
    );
    server.attach_observability(&reg);
    server.ingest_batch(&batch(1, 3)); // pending only
    assert_eq!(reg.counter("swag_server_publishes_total").get(), 0);
    server.ingest_batch(&batch(2, 2)); // 5 >= 4: full publish
    assert_eq!(reg.counter("swag_server_publishes_total").get(), 1);
    let delta = reg.histogram("swag_server_snapshot_delta_size").snapshot();
    assert_eq!((delta.count, delta.sum), (1, 5));
    assert_eq!(
        reg.histogram("swag_server_snapshot_rebuild_micros")
            .snapshot()
            .count,
        1
    );
    assert_eq!(
        reg.histogram("swag_server_snapshot_age_micros")
            .snapshot()
            .count,
        1
    );
    // Shard fan-out metrics are wired through the published core.
    let q = Query::new(0.0, 1000.0, center(), 500.0);
    server.query(&q, &QueryOptions::default());
    assert_eq!(reg.histogram("swag_shard_fanout").snapshot().count, 1);
}

#[test]
fn query_trace_samples_when_enabled() {
    let reg = Registry::new();
    let mut server = CloudServer::new(CameraProfile::smartphone());
    assert!(server.query_trace().is_none());
    server.attach_observability(&reg);
    server.ingest_batch(&batch(1, 4));
    let q = Query::new(0.0, 100.0, center(), 100.0);

    // Off by default: queries leave no events.
    server.query(&q, &QueryOptions::default());
    assert!(server.query_trace().unwrap().events().is_empty());

    server.query_trace().unwrap().enable(2);
    for _ in 0..6 {
        server.query(&q, &QueryOptions::default());
    }
    let events = server.query_trace().unwrap().events();
    assert_eq!(events.len(), 3); // 1 of every 2 queries sampled
    assert!(events.iter().all(|e| e.label == "query" && e.detail == 4));
}

#[test]
fn concurrent_ingest_and_query() {
    let server = CloudServer::new(CameraProfile::smartphone());
    crossbeam::thread::scope(|s| {
        for provider in 0..8u64 {
            let server = &server;
            s.spawn(move |_| {
                for _ in 0..20 {
                    server.ingest_batch(&batch(provider, 3));
                }
            });
        }
        for _ in 0..4 {
            let server = &server;
            s.spawn(move |_| {
                let q = Query::new(0.0, 1000.0, center(), 500.0);
                for _ in 0..50 {
                    let _ = server.query(&q, &QueryOptions::default());
                }
            });
        }
    })
    .unwrap();
    let stats = server.stats();
    assert_eq!(stats.segments, 8 * 20 * 3);
    assert_eq!(stats.batches, 160);
    assert_eq!(stats.queries, 200);
    // Final query sees everything in the window.
    let q = Query::new(0.0, 1000.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    assert_eq!(server.query(&q, &opts).len(), 480);
}
