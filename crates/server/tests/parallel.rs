//! Parallel executor equivalence and stress: a server on a work-stealing
//! pool must answer **byte-identically** to a serial one — same records,
//! same queries, same ranked hits in the same order — and stay consistent
//! while queries race publishes and retractions.

use std::sync::OnceLock;

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_exec::{ExecConfig, Executor};
use swag_geo::LatLon;
use swag_server::{CloudServer, Query, QueryOptions, SegmentRef, ServerConfig};

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// One pool shared by every proptest case — pool startup is not what's
/// under test.
fn par_exec() -> Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(ExecConfig::with_threads(4)))
        .clone()
}

/// Narrow shards so even small corpora span several — multi-shard probes
/// are the path the parallel fan-out rewrites.
fn config() -> ServerConfig {
    ServerConfig {
        shard_width_s: 120.0,
        publish_threshold: 16,
        ..ServerConfig::default()
    }
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (
        -800.0f64..800.0,
        -800.0f64..800.0,
        0.0f64..360.0,
        0.0f64..3600.0,
        0.5f64..300.0,
    )
        .prop_map(|(dx, dy, theta, t0, dur)| {
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        -800.0f64..800.0,
        -800.0f64..800.0,
        10.0f64..500.0,
        0.0f64..3600.0,
        1.0f64..2000.0,
    )
        .prop_map(|(dx, dy, r, t0, win)| {
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
}

fn with_sources(reps: &[RepFov]) -> Vec<(RepFov, SegmentRef)> {
    reps.iter()
        .enumerate()
        .map(|(i, &rep)| {
            (
                rep,
                SegmentRef {
                    provider_id: (i % 7) as u64,
                    video_id: (i / 7) as u64,
                    segment_idx: i as u32,
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bulk-loaded servers: the parallel STR build must produce a snapshot
    /// that answers every query identically to the serial build, whether
    /// asked one at a time or through the parallel batch path.
    #[test]
    fn parallel_server_matches_serial(
        reps in prop::collection::vec(arb_rep(), 0..120),
        queries in prop::collection::vec(arb_query(), 1..12),
    ) {
        let records = with_sources(&reps);
        let serial = CloudServer::from_records_with_config_exec(
            CameraProfile::smartphone(), config(), Executor::serial(), records.clone());
        let parallel = CloudServer::from_records_with_config_exec(
            CameraProfile::smartphone(), config(), par_exec(), records);

        let opts = QueryOptions::default();
        for q in &queries {
            prop_assert_eq!(serial.query(q, &opts), parallel.query(q, &opts));
        }
        prop_assert_eq!(
            serial.query_batch(&queries, &opts, 1),
            parallel.query_batch(&queries, &opts, 4)
        );
    }

    /// Incremental path: the same upload batches pushed through both
    /// servers (delta appends + threshold-triggered snapshot publishes,
    /// which STR-rebuild on the executor) must stay indistinguishable.
    #[test]
    fn parallel_publish_matches_serial_publish(
        batches in prop::collection::vec(prop::collection::vec(arb_rep(), 1..20), 1..6),
        queries in prop::collection::vec(arb_query(), 1..8),
    ) {
        let mut serial = CloudServer::with_config(CameraProfile::smartphone(), config());
        serial.set_executor(Executor::serial());
        let mut parallel = CloudServer::with_config(CameraProfile::smartphone(), config());
        parallel.set_executor(par_exec());

        for (v, reps) in batches.iter().enumerate() {
            let batch = UploadBatch {
                provider_id: 42,
                video_id: v as u64,
                reps: reps.clone(),
            };
            serial.ingest_batch(&batch);
            parallel.ingest_batch(&batch);
        }

        let opts = QueryOptions::default();
        prop_assert_eq!(
            serial.query_batch(&queries, &opts, 1),
            parallel.query_batch(&queries, &opts, 4)
        );
    }
}

/// Regression: on a single-thread host (`SWAG_EXEC_THREADS=1`, the shape
/// that produced the 0.677x parallel_bench run) the planner must route
/// every probe through the serial path — a one-worker pool can only add
/// coordination overhead, never speedup.
#[test]
fn single_thread_host_plans_serial_fanout() {
    std::env::set_var("SWAG_EXEC_THREADS", "1");
    let exec = Executor::new(ExecConfig::from_env());
    assert!(
        exec.is_serial(),
        "SWAG_EXEC_THREADS=1 must yield a serial executor"
    );

    // Plenty of data across many shards: eligible for fan-out on every
    // axis except worker count.
    let reps: Vec<RepFov> = (0..4096)
        .map(|i| {
            let t0 = (i % 64) as f64 * 40.0;
            RepFov::new(
                t0,
                t0 + 30.0,
                Fov::new(center_offset(i as u64 % 17, i % 9), (i % 360) as f64),
            )
        })
        .collect();
    let server = CloudServer::from_records_with_config_exec(
        CameraProfile::smartphone(),
        config(),
        exec,
        with_sources(&reps),
    );

    let q = Query::new(0.0, 2600.0, base(), 5_000.0);
    let plan = server.explain(&q, &QueryOptions::default());
    assert!(
        plan.contains("fanout  : serial"),
        "single-thread host must plan a serial probe, got:\n{plan}"
    );
    // And the answers stay identical to a forced-parallel pool.
    let pooled = CloudServer::from_records_with_config_exec(
        CameraProfile::smartphone(),
        config(),
        par_exec(),
        with_sources(&reps),
    );
    let opts = QueryOptions::default();
    assert_eq!(server.query(&q, &opts), pooled.query(&q, &opts));
}

/// Batched parallel queries racing ingest and retraction on a pooled
/// server: every hit must respect the query window/radius and never come
/// from a provider whose retraction had already published.
#[test]
fn parallel_queries_race_publishes_and_retractions() {
    use std::collections::HashSet;
    use std::sync::Mutex;

    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            shard_width_s: 60.0,
            publish_threshold: 8,
            ..ServerConfig::default()
        },
    );
    server.set_executor(par_exec());
    let retracted = Mutex::new(HashSet::new());

    crossbeam::thread::scope(|s| {
        // Writers: steady ingest plus churn (ingest then retract).
        for provider in 1..=2u64 {
            let server = &server;
            s.spawn(move |_| {
                for round in 0..20u64 {
                    let t0 = round as f64 * 45.0;
                    server.ingest_batch(&UploadBatch {
                        provider_id: provider,
                        video_id: round,
                        reps: (0..5)
                            .map(|i| {
                                let p = center_offset(provider, i);
                                RepFov::new(t0 + i as f64, t0 + i as f64 + 2.0, Fov::new(p, 0.0))
                            })
                            .collect(),
                    });
                }
            });
        }
        {
            let (server, retracted) = (&server, &retracted);
            s.spawn(move |_| {
                for i in 0..10u64 {
                    let provider = 900 + i;
                    server.ingest_batch(&UploadBatch {
                        provider_id: provider,
                        video_id: 0,
                        reps: (0..4)
                            .map(|k| {
                                let t = i as f64 * 80.0 + k as f64;
                                RepFov::new(t, t + 1.0, Fov::new(center_offset(provider, k), 90.0))
                            })
                            .collect(),
                    });
                    server.retract_provider(provider);
                    retracted.lock().unwrap().insert(provider);
                }
            });
        }
        // Readers: whole batches of parallel queries mid-churn.
        for r in 0..2 {
            let (server, retracted) = (&server, &retracted);
            s.spawn(move |_| {
                let opts = QueryOptions {
                    top_n: usize::MAX,
                    direction_filter: false,
                    ..QueryOptions::default()
                };
                for round in 0..15 {
                    let gone: HashSet<u64> = retracted.lock().unwrap().clone();
                    let qs: Vec<Query> = (0..8)
                        .map(|i| {
                            let t0 = ((round * 8 + i + r) % 20) as f64 * 45.0;
                            Query::new(t0, t0 + 200.0, base(), 600.0)
                        })
                        .collect();
                    for (q, hits) in qs.iter().zip(server.query_batch(&qs, &opts, 4)) {
                        for hit in hits {
                            assert!(
                                !gone.contains(&hit.source.provider_id),
                                "hit from provider {} retracted before the batch",
                                hit.source.provider_id
                            );
                            assert!(hit.rep.t_end >= q.t_start && hit.rep.t_start <= q.t_end);
                            assert!(hit.distance_m <= q.radius_m + 1.0);
                        }
                    }
                }
            });
        }
    })
    .unwrap();

    // Quiescent: a batch over everything equals the per-query answers.
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let qs: Vec<Query> = (0..10)
        .map(|i| Query::new(i as f64 * 90.0, i as f64 * 90.0 + 300.0, base(), 800.0))
        .collect();
    let batched = server.query_batch(&qs, &opts, 4);
    let single: Vec<_> = qs.iter().map(|q| server.query(q, &opts)).collect();
    assert_eq!(batched, single);
}

fn center_offset(provider: u64, i: usize) -> LatLon {
    base().offset(
        f64::from(provider as u32 % 360),
        15.0 + (i as f64) * 5.0 + (provider % 13) as f64,
    )
}
