//! Causal-tracing acceptance tests: a multi-shard query fanned out on
//! the work-stealing executor must yield one connected span tree with
//! the same shape as the serial run, and slow-query capture must retain
//! a full tree after the rings recycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swag_core::{CameraProfile, Fov, RepFov};
use swag_exec::{ExecConfig, Executor};
use swag_geo::LatLon;
use swag_obs::{assemble, FlightRecorder, MonotonicClock, SpanTree};
use swag_server::{CloudServer, Query, QueryOptions, SegmentRef, ServerConfig};

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

fn src(provider: u64) -> SegmentRef {
    SegmentRef {
        provider_id: provider,
        video_id: 0,
        segment_idx: 0,
    }
}

/// Advances by the current (adjustable) step on every read: step 0
/// freezes time, a large step makes whatever runs next look slow.
struct AdjustableClock {
    t: AtomicU64,
    step: AtomicU64,
}

impl AdjustableClock {
    fn new() -> Arc<Self> {
        Arc::new(AdjustableClock {
            t: AtomicU64::new(0),
            step: AtomicU64::new(0),
        })
    }

    fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
    }
}

impl MonotonicClock for AdjustableClock {
    fn now_micros(&self) -> u64 {
        self.t
            .fetch_add(self.step.load(Ordering::Relaxed), Ordering::Relaxed)
    }
}

/// Builds a 4-shard server, runs one multi-shard query on `exec`, and
/// returns the query's reassembled span tree.
fn traced_query_tree(exec: Executor) -> SpanTree {
    let recorder = Arc::new(FlightRecorder::new(8192));
    recorder.enable();
    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            shard_width_s: 10.0,
            publish_threshold: 1, // publish (and shard) on every ingest
            ..ServerConfig::default()
        },
    );
    server.set_executor(exec);
    server.set_flight_recorder(recorder.clone());
    let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
    for i in 0..4u64 {
        let t0 = i as f64 * 10.0;
        server.ingest_one(RepFov::new(t0, t0 + 5.0, fov), src(i));
    }
    assert_eq!(server.stats().shards, 4);
    assert_eq!(server.stats().pending_delta, 0);

    let q = Query::new(0.0, 40.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    assert_eq!(server.query(&q, &opts).len(), 4);

    let trees = assemble(&recorder.dump());
    let mut query_trees: Vec<SpanTree> = trees
        .into_iter()
        .filter(|t| t.roots.iter().any(|r| r.label == "query"))
        .collect();
    assert_eq!(query_trees.len(), 1, "exactly one query trace");
    query_trees.pop().unwrap()
}

#[test]
fn parallel_fanout_yields_one_connected_tree_matching_serial_shape() {
    let serial = traced_query_tree(Executor::serial());
    let parallel = traced_query_tree(Executor::new(ExecConfig::with_threads(4)));

    for (mode, tree) in [("serial", &serial), ("parallel", &parallel)] {
        assert_eq!(tree.orphans, 0, "{mode}: no orphaned spans");
        assert_eq!(tree.roots.len(), 1, "{mode}: single root");
        assert_eq!(tree.roots[0].label, "query", "{mode}: rooted at query");
        // Every shard probe is parented (transitively) to the query span.
        let mut probes = Vec::new();
        tree.roots[0].find_all("shard_probe", &mut probes);
        assert_eq!(probes.len(), 4, "{mode}: one probe per live shard");
        // The query found 4 hits; the root's detail reports them.
        assert_eq!(tree.roots[0].detail, 4, "{mode}: root detail = hits");
    }
    assert_eq!(
        serial.shape(),
        parallel.shape(),
        "work stealing must not change the causal tree shape"
    );
    assert_eq!(
        serial.shape(),
        "query(index_scan(shard_probe(),shard_probe(),shard_probe(),shard_probe()),ranking())"
    );
}

#[test]
fn slow_query_capture_survives_ring_recycling() {
    let clock = AdjustableClock::new();
    // Tiny rings: a handful of fast queries recycles everything.
    let recorder = Arc::new(FlightRecorder::with_clock(48, clock.clone()));
    recorder.enable();
    let mut server = CloudServer::with_config_and_clock(
        CameraProfile::smartphone(),
        ServerConfig {
            shard_width_s: 10.0,
            publish_threshold: 1,
            slow_query_micros: Some(100), // fixed threshold from config
            ..ServerConfig::default()
        },
        clock.clone(),
    );
    server.set_executor(Executor::serial());
    server.set_flight_recorder(recorder.clone());
    assert_eq!(recorder.slow_threshold_micros(), 100);

    let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
    for i in 0..3u64 {
        let t0 = i as f64 * 10.0;
        server.ingest_one(RepFov::new(t0, t0 + 5.0, fov), src(i));
    }
    let q = Query::new(0.0, 30.0, center(), 500.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };

    // Frozen clock: queries take 0 us and are never pinned.
    server.query(&q, &opts);
    assert!(recorder.slow_queries().is_empty());

    // 50 us per clock read: the next query's wall time blows through the
    // 100 us threshold and its whole tree is pinned.
    clock.set_step(50);
    server.query(&q, &opts);
    clock.set_step(0);
    let slow = recorder.slow_queries();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].root_label, "query");
    assert!(slow[0].total_micros >= 100);
    let slow_trace = slow[0].trace_id;
    let trees = assemble(&slow[0].events);
    assert_eq!(trees.len(), 1);
    assert_eq!(trees[0].orphans, 0, "pinned tree is complete");
    assert_eq!(trees[0].roots.len(), 1);
    let mut probes = Vec::new();
    trees[0].roots[0].find_all("shard_probe", &mut probes);
    assert_eq!(probes.len(), 3);

    // Fast queries keep recycling ring space over the slow trace...
    for _ in 0..40 {
        server.query(&q, &opts);
    }
    assert!(
        recorder.trace_events(slow_trace).is_empty(),
        "rings recycled the slow trace"
    );
    // ...but the pinned copy is untouched.
    let slow = recorder.slow_queries();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].trace_id, slow_trace);
    assert_eq!(assemble(&slow[0].events)[0].orphans, 0);
}

#[test]
fn auto_threshold_derives_from_live_p99() {
    let recorder = Arc::new(FlightRecorder::new(4096));
    recorder.enable();
    let reg = swag_obs::Registry::new();
    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            slow_query_micros: None, // auto mode
            ..ServerConfig::default()
        },
    );
    server.set_executor(Executor::serial());
    server.set_flight_recorder(recorder.clone());
    server.attach_observability(&reg);
    let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
    server.ingest_one(RepFov::new(0.0, 5.0, fov), src(1));
    assert_eq!(recorder.slow_threshold_micros(), 0);

    let q = Query::new(0.0, 10.0, center(), 500.0);
    let opts = QueryOptions::default();
    for _ in 0..swag_server::AUTO_THRESHOLD_INTERVAL {
        server.query(&q, &opts);
    }
    assert!(
        recorder.slow_threshold_micros() > 0,
        "threshold refreshed from live p99 after an interval of queries"
    );
}

#[test]
fn batched_queries_each_form_their_own_trace() {
    let recorder = Arc::new(FlightRecorder::new(8192));
    recorder.enable();
    let mut server = CloudServer::new(CameraProfile::smartphone());
    server.set_executor(Executor::new(ExecConfig::with_threads(4)));
    server.set_flight_recorder(recorder.clone());
    let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
    for i in 0..4u64 {
        server.ingest_one(RepFov::new(0.0, 5.0, fov), src(i));
    }
    let queries: Vec<Query> = (0..9)
        .map(|_| Query::new(0.0, 10.0, center(), 500.0))
        .collect();
    let opts = QueryOptions {
        direction_filter: false,
        ..QueryOptions::default()
    };
    let results = server.query_batch(&queries, &opts, 4);
    assert_eq!(results.len(), 9);

    let trees = assemble(&recorder.dump());
    let query_trees: Vec<&SpanTree> = trees
        .iter()
        .filter(|t| t.roots.iter().any(|r| r.label == "query"))
        .collect();
    assert_eq!(query_trees.len(), 9, "one trace per batched query");
    for tree in query_trees {
        assert_eq!(tree.orphans, 0);
        assert_eq!(tree.roots.len(), 1);
    }
}
