//! Result-cache correctness: a cache-enabled server must answer
//! byte-identically to a cache-disabled twin across interleaved
//! ingest/publish/expiry/retraction churn (the PR 5 equivalence-harness
//! shape), and a publish must invalidate only cache entries whose plans
//! touch the folded time shards — cold-region entries survive.

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_obs::Registry;
use swag_server::{
    AdmissionConfig, CacheConfig, CloudServer, Query, QueryOptions, RankMode, SearchHit,
    ServerConfig, ShedReason,
};

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Tiny deterministic generator (SplitMix64), same idiom as the engine
/// equivalence suite, so workloads are identical on every platform.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

fn rep_at(rng: &mut Rng, t_lo: f64, t_hi: f64) -> RepFov {
    let dx = rng.f64(-700.0, 700.0);
    let dy = rng.f64(-700.0, 700.0);
    let theta = rng.f64(0.0, 360.0);
    let t0 = rng.f64(t_lo, t_hi);
    let dur = rng.f64(1.0, 60.0);
    RepFov::new(
        t0,
        t0 + dur,
        Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
    )
}

fn churn_config(cache: CacheConfig) -> ServerConfig {
    ServerConfig {
        shard_width_s: 120.0,
        publish_threshold: 8,
        cache,
        ..ServerConfig::default()
    }
}

fn option_matrix() -> Vec<QueryOptions> {
    vec![
        QueryOptions::default(),
        QueryOptions {
            top_n: 20,
            require_coverage: true,
            ..QueryOptions::default()
        },
        QueryOptions {
            top_n: 10,
            rank: RankMode::Quality,
            direction_tolerance_deg: 8.0,
            ..QueryOptions::default()
        },
    ]
}

/// Drives both servers through the same mutation and asserts every query
/// in the pool still answers identically — twice, so the second pass on
/// the cached server is served from warm entries wherever valid.
fn assert_pool_agrees(
    plain: &CloudServer,
    cached: &CloudServer,
    pool: &[Query],
    opts: &[QueryOptions],
    label: &str,
) {
    for _pass in 0..2 {
        for (qi, q) in pool.iter().enumerate() {
            for (oi, o) in opts.iter().enumerate() {
                let expected: Vec<SearchHit> = plain.query(q, o);
                let got = cached.query(q, o);
                assert_eq!(got, expected, "{label}: query {qi} opts {oi} diverged");
            }
        }
    }
}

/// Deterministic heavy-churn run: ingests in fold-forcing batches with a
/// retraction and an expiry mid-history, re-querying a fixed pool (plus
/// one cache-ineligible wide window) after every mutation.
#[test]
fn cached_and_uncached_agree_under_churn() {
    let mut rng = Rng(0x5747_2016);
    let plain = CloudServer::with_config(
        CameraProfile::smartphone(),
        churn_config(CacheConfig::default()),
    );
    let cached = CloudServer::with_config(
        CameraProfile::smartphone(),
        churn_config(CacheConfig::enabled(256)),
    );

    let mut pool: Vec<Query> = (0..12)
        .map(|_| {
            let dx = rng.f64(-700.0, 700.0);
            let dy = rng.f64(-700.0, 700.0);
            let r = rng.f64(50.0, 500.0);
            let t0 = rng.f64(0.0, 2800.0);
            let win = rng.f64(10.0, 600.0);
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
        .collect();
    // A window spanning far more than CACHE_MAX_BUCKET_SPAN shard buckets:
    // ineligible for caching, must still flow through the same read path.
    pool.push(Query::new(0.0, 120.0 * 200.0, base(), 400.0));
    let opts = option_matrix();

    for (round, n) in [11usize, 8, 5, 16, 3, 9].into_iter().enumerate() {
        let reps: Vec<RepFov> = (0..n).map(|_| rep_at(&mut rng, 0.0, 3000.0)).collect();
        for server in [&plain, &cached] {
            server.ingest_batch(&UploadBatch {
                provider_id: round as u64,
                video_id: 3,
                reps: reps.clone(),
            });
        }
        assert_pool_agrees(&plain, &cached, &pool, &opts, &format!("round {round}"));
    }

    for server in [&plain, &cached] {
        server.retract_provider(1);
    }
    assert_pool_agrees(&plain, &cached, &pool, &opts, "after retraction");

    for server in [&plain, &cached] {
        server.expire_before(900.0);
    }
    assert_pool_agrees(&plain, &cached, &pool, &opts, "after expiry");
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (
        -700.0f64..700.0,
        -700.0f64..700.0,
        0.0f64..360.0,
        0.0f64..3000.0,
        0.5f64..120.0,
    )
        .prop_map(|(dx, dy, theta, t0, dur)| {
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        -700.0f64..700.0,
        -700.0f64..700.0,
        20.0f64..500.0,
        0.0f64..3000.0,
        1.0f64..900.0,
    )
        .prop_map(|(dx, dy, r, t0, win)| {
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
}

fn arb_opts() -> impl Strategy<Value = QueryOptions> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
        0.0f64..30.0,
        prop_oneof![Just(usize::MAX), 1usize..30],
    )
        .prop_map(|(dir, cov, quality, tol, top_n)| QueryOptions {
            top_n,
            direction_filter: dir,
            direction_tolerance_deg: tol,
            require_coverage: cov,
            rank: if quality {
                RankMode::Quality
            } else {
                RankMode::Distance
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary ingest batches interleaved with a re-queried pool: the
    /// cached server must stay byte-identical to the plain one no matter
    /// how publishes slice the stream or which entries survive each fold.
    #[test]
    fn cache_preserves_results_across_interleaved_ingests(
        batches in prop::collection::vec(prop::collection::vec(arb_rep(), 1..24), 1..5),
        queries in prop::collection::vec(arb_query(), 1..6),
        opts in arb_opts(),
    ) {
        let plain = CloudServer::with_config(
            CameraProfile::smartphone(),
            churn_config(CacheConfig::default()),
        );
        let cached = CloudServer::with_config(
            CameraProfile::smartphone(),
            churn_config(CacheConfig::enabled(128)),
        );
        for (i, reps) in batches.iter().enumerate() {
            for server in [&plain, &cached] {
                server.ingest_batch(&UploadBatch {
                    provider_id: (i % 3) as u64,
                    video_id: i as u64,
                    reps: reps.clone(),
                });
            }
            // Two passes: pass one seeds the cache, pass two reads any
            // entry the publish protocol kept alive.
            for _pass in 0..2 {
                for q in &queries {
                    prop_assert_eq!(cached.query(q, &opts), plain.query(q, &opts));
                }
            }
        }
    }
}

/// A publish must invalidate only entries whose plans touch the folded
/// time shards: after folding records into the hot region, the cold
/// region's entry is still served from cache while the hot region's
/// entry misses and recomputes.
#[test]
fn publish_invalidates_only_touched_time_shards() {
    let reg = Registry::new();
    let mut rng = Rng(0xCAFE);
    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            shard_width_s: 100.0,
            publish_threshold: 8,
            cache: CacheConfig::enabled(64),
            ..ServerConfig::default()
        },
    );
    server.attach_observability(&reg);
    let hits = || reg.counter("swag_server_cache_hits_total").get();
    let misses = || reg.counter("swag_server_cache_misses_total").get();

    // Seed both regions and fold (batch size == threshold publishes).
    let mut reps: Vec<RepFov> = (0..4).map(|_| rep_at(&mut rng, 0.0, 80.0)).collect();
    reps.extend((0..4).map(|_| rep_at(&mut rng, 1000.0, 1080.0)));
    server.ingest_batch(&UploadBatch {
        provider_id: 1,
        video_id: 1,
        reps,
    });

    let cold = Query::new(0.0, 90.0, base(), 5_000.0); // bucket 0 only
    let hot = Query::new(1000.0, 1090.0, base(), 5_000.0); // bucket 10 only
    let opts = QueryOptions::default();

    let cold_before = server.query(&cold, &opts);
    let hot_before = server.query(&hot, &opts);
    assert_eq!((hits(), misses()), (0, 2), "first touch seeds both entries");
    assert_eq!(server.query(&cold, &opts), cold_before);
    assert_eq!(server.query(&hot, &opts), hot_before);
    assert_eq!((hits(), misses()), (2, 2), "second touch is a warm hit");

    // Fold a batch that only touches the hot region's shard bucket.
    let hot_reps: Vec<RepFov> = (0..8).map(|_| rep_at(&mut rng, 1000.0, 1080.0)).collect();
    server.ingest_batch(&UploadBatch {
        provider_id: 2,
        video_id: 2,
        reps: hot_reps,
    });

    // Cold entry survived the publish: its shard versions are untouched.
    assert_eq!(server.query(&cold, &opts), cold_before);
    assert_eq!(
        (hits(), misses()),
        (3, 2),
        "cold-region entry must survive a publish that folded other shards"
    );
    // Hot entry was invalidated: recompute (with the new records), then hit.
    let hot_after = server.query(&hot, &opts);
    assert!(
        hot_after.len() > hot_before.len(),
        "new hot records visible"
    );
    assert_eq!((hits(), misses()), (3, 3), "hot-region entry invalidated");
    assert_eq!(server.query(&hot, &opts), hot_after);
    assert_eq!((hits(), misses()), (4, 3), "recomputed hot entry re-cached");
}

/// Admission control end-to-end through the facade: disabled admits
/// everything; enabled enforces the per-client budget and the counters
/// attribute every outcome.
#[test]
fn admission_sheds_after_burst_and_counts_outcomes() {
    let reg = Registry::new();
    let mut rng = Rng(0xBEEF);
    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            admission: AdmissionConfig {
                enabled: true,
                rate_per_s: 1e-9, // no meaningful refill within the test
                burst: 2.0,
                ..AdmissionConfig::default()
            },
            ..ServerConfig::default()
        },
    );
    server.attach_observability(&reg);
    let reps: Vec<RepFov> = (0..6).map(|_| rep_at(&mut rng, 0.0, 100.0)).collect();
    server.ingest_batch(&UploadBatch {
        provider_id: 1,
        video_id: 1,
        reps,
    });

    let q = Query::new(0.0, 120.0, base(), 5_000.0);
    let opts = QueryOptions::default();
    let expected = server.query(&q, &opts);

    // Client 7 burns its burst of 2, then is shed; client 8 still has its own.
    assert_eq!(server.query_admitted(7, &q, &opts).unwrap(), expected);
    assert_eq!(server.query_admitted(7, &q, &opts).unwrap(), expected);
    assert_eq!(
        server.query_admitted(7, &q, &opts).unwrap_err(),
        ShedReason::RateLimited
    );
    assert_eq!(server.query_admitted(8, &q, &opts).unwrap(), expected);

    assert_eq!(reg.counter("swag_server_admitted_total").get(), 3);
    assert_eq!(
        reg.counter(&swag_obs::labeled_name(
            "swag_server_shed_total",
            &[("reason", "rate_limited")],
        ))
        .get(),
        1
    );

    // Disabled admission (the default) is a no-op pass-through.
    let open = CloudServer::with_config(CameraProfile::smartphone(), ServerConfig::default());
    for _ in 0..100 {
        assert!(open.query_admitted(7, &q, &opts).is_ok());
    }
}
