//! End-to-end durability tests: WAL replay, crash recovery at arbitrary
//! truncation points, durable retraction, cold-tier demotion, and the
//! query/analyze equivalence with a cold tier attached (ISSUE 10).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov};
use swag_geo::LatLon;
use swag_server::{
    result_digest, CloudServer, DurabilityConfig, Query, QueryOptions, SegmentId, SegmentRef,
    ServerConfig,
};

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "swag-server-dur-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Monotone-t workload: record `i` starts at `i * step` seconds, filmed
/// near the base point so a wide query sees everything. Reps are
/// canonicalised through the upload descriptor codec — the WAL and
/// snapshot store codec-encoded records, so only codec-exact inputs can
/// round-trip bit-identically (the codec is idempotent past one pass).
fn rec(i: u64, step: f64) -> (RepFov, SegmentRef) {
    let t = i as f64 * step;
    let p = base().offset(i as f64 * 13.0 % 360.0, 5.0 + (i % 40) as f64);
    let rep = RepFov::new(t, t + 4.0, Fov::new(p, (i as f64 * 37.0) % 360.0));
    let mut buf = bytes::BytesMut::new();
    swag_core::DescriptorCodec::encode_rep(&rep, &mut buf).unwrap();
    let rep = swag_core::DescriptorCodec::decode_rep(&mut buf.freeze()).unwrap();
    (
        rep,
        SegmentRef {
            provider_id: i % 5,
            video_id: i / 5,
            segment_idx: i as u32,
        },
    )
}

fn wide_opts() -> QueryOptions {
    QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    }
}

/// Digest of everything a server holds in a window, via the normal
/// query path (the same FNV digest the wide-event log records).
fn digest(server: &CloudServer, t_end: f64) -> u64 {
    let q = Query::new(0.0, t_end, base(), 5_000.0);
    result_digest(&server.query(&q, &wide_opts()))
}

fn durable_config(publish_threshold: usize) -> ServerConfig {
    ServerConfig {
        publish_threshold,
        durability: DurabilityConfig {
            // Every append fsyncs: the durable prefix is exactly the
            // whole frames on disk, which the crash property relies on.
            fsync_interval_micros: 0,
            // Snapshot on every publish; these workloads are far below
            // the production byte gate.
            snapshot_min_wal_bytes: 0,
            ..DurabilityConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// The last (highest-sequence) WAL segment file in a data dir.
fn last_wal_file(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    files.sort();
    files.pop().expect("a WAL segment exists")
}

#[test]
fn reopen_restores_exact_state() {
    let dir = tmp_dir();
    let n = 300u64;
    {
        let server = CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64))
            .expect("open fresh data dir");
        for i in 0..n {
            let (rep, source) = rec(i, 2.0);
            server.ingest_one(rep, source);
        }
        let stats = server.durability_stats().expect("durable server");
        assert!(stats.wal_records >= n, "every ingest hits the WAL");
        server.quiesce();
        let stats = server.durability_stats().unwrap();
        assert!(stats.snapshots_written >= 1, "publishes snapshot on fold");
        assert_eq!(stats.wal_lag_bytes, 0, "quiesce leaves no unsynced tail");
    }
    let recovered = CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64))
        .expect("recover data dir");
    assert_eq!(recovered.stats().segments, n as usize);

    // Byte-for-byte the server a memory-only run would be.
    let memory = CloudServer::new(CameraProfile::smartphone());
    for i in 0..n {
        let (rep, source) = rec(i, 2.0);
        memory.ingest_one(rep, source);
    }
    assert_eq!(digest(&recovered, 1e9), digest(&memory, 1e9));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_server_keeps_appending() {
    let dir = tmp_dir();
    {
        let server =
            CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64)).expect("open");
        for i in 0..50 {
            let (rep, source) = rec(i, 2.0);
            server.ingest_one(rep, source);
        }
    }
    {
        let server = CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64))
            .expect("reopen");
        for i in 50..100 {
            let (rep, source) = rec(i, 2.0);
            server.ingest_one(rep, source);
        }
        server.quiesce();
    }
    let recovered =
        CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64)).expect("reopen");
    assert_eq!(recovered.stats().segments, 100);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retraction_is_durable() {
    let dir = tmp_dir();
    {
        let server =
            CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64)).expect("open");
        for i in 0..40 {
            let (rep, source) = rec(i, 2.0);
            server.ingest_one(rep, source);
        }
        assert_eq!(server.retract_provider(3), 8);
    }
    let recovered =
        CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64)).expect("reopen");
    assert_eq!(recovered.stats().segments, 32);
    let hits = recovered.query(&Query::new(0.0, 1e9, base(), 5_000.0), &wide_opts());
    assert!(hits.iter().all(|h| h.source.provider_id != 3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn expired_shards_demote_to_cold_and_stay_queryable() {
    let dir = tmp_dir();
    let server =
        CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(4)).expect("open");
    // Two time-shard buckets (width 600 s): old records in bucket 0,
    // fresh ones in bucket 2.
    for i in 0..12 {
        let (rep, source) = rec(i, 2.0); // t in [0, 24] -> bucket 0
        server.ingest_one(rep, source);
    }
    for i in 0..12 {
        let (mut rep, source) = rec(i, 2.0);
        rep.t_start += 1300.0; // bucket 2
        rep.t_end += 1300.0;
        server.ingest_one(rep, source);
    }
    let before = server.query(&Query::new(0.0, 100.0, base(), 5_000.0), &wide_opts());
    assert_eq!(before.len(), 12);
    let dropped = server.expire_before(700.0);
    assert_eq!(dropped, 12, "bucket 0 expires wholesale");
    let stats = server.durability_stats().unwrap();
    assert!(stats.cold_runs >= 1, "expiry demoted instead of dropping");
    assert!(stats.cold_segments >= 12);

    // The old window is still answerable — from the cold tier, flagged
    // with the sentinel id (cold records have no live store slot).
    let cold_hits = server.query(&Query::new(0.0, 100.0, base(), 5_000.0), &wide_opts());
    assert_eq!(cold_hits.len(), 12);
    assert!(cold_hits.iter().all(|h| h.id == SegmentId(u32::MAX)));
    let mut a: Vec<_> = before.iter().map(|h| h.source).collect();
    let mut b: Vec<_> = cold_hits.iter().map(|h| h.source).collect();
    a.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
    b.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
    assert_eq!(a, b, "demotion loses nothing");

    // EXPLAIN shows the cold stage; ANALYZE agrees byte-for-byte with
    // the normal path and reports the cold scan's work.
    let q = Query::new(0.0, 100.0, base(), 5_000.0);
    let explain = server.explain(&q, &wide_opts());
    assert!(explain.contains("cold_scan"), "explain: {explain}");
    let analyzed = server.query_analyzed(1, &q, &wide_opts());
    assert_eq!(
        result_digest(&analyzed.hits),
        result_digest(&cold_hits),
        "instrumented twin matches the normal path with cold attached"
    );
    let cold = analyzed.report.cold.expect("cold tier was scanned");
    assert_eq!(cold.hits, 12);
    assert!(cold.rows_in >= 12);
    assert!(analyzed.report.render().contains("cold_scan"));

    // Cold runs survive a restart.
    server.quiesce();
    drop(server);
    let recovered =
        CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(4)).expect("reopen");
    let after = recovered.query(&Query::new(0.0, 100.0, base(), 5_000.0), &wide_opts());
    assert_eq!(result_digest(&after), result_digest(&cold_hits));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_pipeline_unchanged_without_cold_runs() {
    // Memory-only servers and durable servers with nothing demoted must
    // render the exact pipeline line CI greps for.
    let dir = tmp_dir();
    let server =
        CloudServer::open(&dir, CameraProfile::smartphone(), durable_config(64)).expect("open");
    let (rep, source) = rec(0, 2.0);
    server.ingest_one(rep, source);
    let explain = server.explain(&Query::new(0.0, 100.0, base(), 500.0), &wide_opts());
    assert!(
        explain.contains("index_scan(shard_probe*) -> delta_scan -> ranking"),
        "explain: {explain}"
    );
    assert!(!explain.contains("cold_scan"));
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Kill-at-random-offset crash recovery: truncate the WAL at an
    /// arbitrary byte offset (simulating a crash torn mid-frame) and
    /// recovery must come back as exactly the longest durable prefix of
    /// the op stream — never a hole, never a corrupt record.
    #[test]
    fn crash_at_any_offset_recovers_a_prefix(
        n in 5u64..60,
        cut in 0usize..4096,
    ) {
        let dir = tmp_dir();
        {
            // publish_threshold high: the WAL is the only durable state,
            // so the truncation point fully determines recovery.
            let server = CloudServer::open(
                &dir,
                CameraProfile::smartphone(),
                durable_config(100_000),
            ).unwrap();
            for i in 0..n {
                let (rep, source) = rec(i, 2.0);
                server.ingest_one(rep, source);
            }
        }
        let wal = last_wal_file(&dir);
        let len = std::fs::metadata(&wal).unwrap().len();
        let keep = len.saturating_sub(cut as u64);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(keep)
            .unwrap();

        let recovered = CloudServer::open(
            &dir,
            CameraProfile::smartphone(),
            durable_config(100_000),
        ).unwrap();
        let k = recovered.stats().segments as u64;
        prop_assert!(k <= n);
        // Monotone workload: the recovered set must be records 0..k, and
        // everything derived from them (digest over a full-window query)
        // must match a memory-only server fed that exact prefix.
        let memory = CloudServer::new(CameraProfile::smartphone());
        for i in 0..k {
            let (rep, source) = rec(i, 2.0);
            memory.ingest_one(rep, source);
        }
        prop_assert_eq!(digest(&recovered, 1e9), digest(&memory, 1e9));
        // A cut inside the tail frame loses at most that one frame's op;
        // cutting zero bytes loses nothing.
        if cut == 0 {
            prop_assert_eq!(k, n);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
