//! Concurrent lifecycle stress: ingest, retraction, expiry, and queries
//! all racing against the snapshot-publishing server.
//!
//! The invariants checked from the query threads hold because every
//! mutation publishes a fresh epoch *before* returning: once a
//! retraction or expiry has completed, no later query may observe the
//! removed segments.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_server::{CloudServer, IndexKind, Query, QueryOptions, ServerConfig};

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

const SHARD_WIDTH_S: f64 = 5.0;

fn batch(provider: u64, video: u64, t0: f64, n: usize) -> UploadBatch {
    UploadBatch {
        provider_id: provider,
        video_id: video,
        reps: (0..n)
            .map(|i| {
                let p = center().offset(f64::from(provider as u32 % 360), 10.0 + i as f64 * 3.0);
                let s = t0 + i as f64 * 2.0;
                RepFov::new(s, s + 1.5, Fov::new(p, 0.0))
            })
            .collect(),
    }
}

#[test]
fn concurrent_ingest_retract_expire_query_stays_consistent() {
    let server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            index: IndexKind::RTree,
            shard_width_s: SHARD_WIDTH_S,
            publish_threshold: 8,
            ..ServerConfig::default()
        },
    );
    // Providers whose retraction has *completed* (published) so far.
    let retracted = Mutex::new(HashSet::new());
    // Highest horizon an expire_before call has fully applied.
    let horizon_done = AtomicU64::new(0);

    crossbeam::thread::scope(|s| {
        // Steady ingest from long-lived providers.
        for provider in 1..=4u64 {
            let server = &server;
            s.spawn(move |_| {
                for round in 0..30 {
                    server.ingest_batch(&batch(provider, round, f64::from(round as u32) * 30.0, 3));
                }
            });
        }
        // Churning providers: ingest, then retract everything they own.
        {
            let server = &server;
            let retracted = &retracted;
            s.spawn(move |_| {
                for i in 0..15u64 {
                    let provider = 500 + i;
                    server.ingest_batch(&batch(provider, 0, f64::from(i as u32) * 40.0, 4));
                    // Rolling expiry may beat us to some of the four.
                    assert!(server.retract_provider(provider) <= 4);
                    retracted.lock().unwrap().insert(provider);
                }
            });
        }
        // Rolling expiry with a monotonically advancing horizon.
        {
            let server = &server;
            let horizon_done = &horizon_done;
            s.spawn(move |_| {
                for k in 1..=20u64 {
                    let h = k as f64 * 10.0;
                    server.expire_before(h);
                    horizon_done.fetch_max(h as u64, Ordering::SeqCst);
                }
            });
        }
        // Queries validating every hit against what must already hold.
        for _ in 0..3 {
            let server = &server;
            let retracted = &retracted;
            s.spawn(move |_| {
                let opts = QueryOptions {
                    top_n: usize::MAX,
                    direction_filter: false,
                    ..QueryOptions::default()
                };
                for round in 0..40 {
                    // Snapshot taken BEFORE the query: any retraction
                    // recorded here was fully published when the query
                    // started, so its segments must not appear. (No such
                    // claim is made for the expiry horizon mid-flight:
                    // an ingest of old-timestamped data may legitimately
                    // land after the latest expiry; it is re-checked
                    // after quiescence below.)
                    let gone: HashSet<u64> = retracted.lock().unwrap().clone();
                    let q = Query::new(
                        f64::from(round) * 20.0,
                        f64::from(round) * 20.0 + 400.0,
                        center(),
                        500.0,
                    );
                    for hit in server.query(&q, &opts) {
                        assert!(
                            !gone.contains(&hit.source.provider_id),
                            "hit from provider {} retracted before the query",
                            hit.source.provider_id
                        );
                        // Inside the query window...
                        assert!(hit.rep.t_end >= q.t_start && hit.rep.t_start <= q.t_end);
                        // ...and inside the query circle (small slack for
                        // the degree-box conversion).
                        assert!(hit.distance_m <= q.radius_m + 1.0);
                    }
                }
            });
        }
    })
    .unwrap();

    // Quiescent cross-check: re-apply the final horizon (late ingests of
    // old-timestamped data may have outrun the rolling expiry), then
    // stats, the exported records, and a full query must all agree.
    let h = horizon_done.load(Ordering::SeqCst) as f64;
    assert!((h - 200.0).abs() < f64::EPSILON);
    server.expire_before(h);
    let stats = server.stats();
    let records = server.export_records();
    assert_eq!(stats.segments, records.len());
    let gone = retracted.lock().unwrap();
    assert_eq!(gone.len(), 15);
    assert!(records
        .iter()
        .all(|r| !gone.contains(&r.source.provider_id)));
    assert!(records
        .iter()
        .all(|r| (r.rep.t_end / SHARD_WIDTH_S).floor() >= (h / SHARD_WIDTH_S).floor()));
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let all = server.query(&Query::new(-1e9, 1e9, center(), 1e9), &opts);
    assert_eq!(all.len(), records.len());
}
