//! Engine equivalence: the layered planner/operator pipeline must answer
//! byte-identically to the pre-refactor monolithic read path.
//!
//! Two lines of defence:
//!
//! 1. **Oracle fixture** — `fixtures/engine_oracle.txt` holds the exact
//!    results (distances and qualities as f64 bit patterns) the
//!    pre-refactor `server.rs` produced for a deterministic workload
//!    covering all four entry points (`query`, `query_nearest`,
//!    `query_batch`, subscriptions) across ranking modes, filters, and
//!    publish/retention churn. Regenerate with
//!    `cargo test -p swag-server --test engine_equivalence -- --ignored regenerate`.
//! 2. **Randomized agreement proptests** — serial vs parallel executors,
//!    batch vs per-query, and k-nearest vs a brute-force oracle must
//!    agree on arbitrary workloads (run in CI under both default threads
//!    and `SWAG_EXEC_THREADS=1`).

use std::fmt::Write as _;
use std::sync::OnceLock;

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_exec::{ExecConfig, Executor};
use swag_geo::LatLon;
use swag_server::{
    CloudServer, FanoutMode, Query, QueryOptions, RankMode, SearchHit, SegmentRef, ServerConfig,
};

const FIXTURE: &str = include_str!("fixtures/engine_oracle.txt");

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Tiny deterministic generator (SplitMix64) so the workload is identical
/// on every platform and toolchain.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)` from 53 random mantissa bits.
    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

fn workload_reps(rng: &mut Rng, n: usize) -> Vec<RepFov> {
    (0..n)
        .map(|_| {
            let dx = rng.f64(-900.0, 900.0);
            let dy = rng.f64(-900.0, 900.0);
            let theta = rng.f64(0.0, 360.0);
            let t0 = rng.f64(0.0, 3000.0);
            let dur = rng.f64(1.0, 240.0);
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
        .collect()
}

fn workload_queries(rng: &mut Rng, n: usize) -> Vec<Query> {
    (0..n)
        .map(|_| {
            let dx = rng.f64(-900.0, 900.0);
            let dy = rng.f64(-900.0, 900.0);
            let r = rng.f64(20.0, 600.0);
            let t0 = rng.f64(0.0, 3000.0);
            let win = rng.f64(5.0, 1500.0);
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
        .collect()
}

/// Option sets covering every filter/rank combination the planner lowers.
fn option_matrix() -> Vec<(&'static str, QueryOptions)> {
    vec![
        ("default", QueryOptions::default()),
        (
            "wide",
            QueryOptions {
                top_n: usize::MAX,
                direction_filter: false,
                ..QueryOptions::default()
            },
        ),
        (
            "coverage",
            QueryOptions {
                top_n: 25,
                require_coverage: true,
                ..QueryOptions::default()
            },
        ),
        (
            "quality",
            QueryOptions {
                top_n: 15,
                rank: RankMode::Quality,
                direction_tolerance_deg: 5.0,
                ..QueryOptions::default()
            },
        ),
    ]
}

fn render_hit(out: &mut String, h: &SearchHit) {
    writeln!(
        out,
        "  id={} provider={} video={} seg={} t=[{:016x},{:016x}] d={:016x} q={:016x}",
        h.id.0,
        h.source.provider_id,
        h.source.video_id,
        h.source.segment_idx,
        h.rep.t_start.to_bits(),
        h.rep.t_end.to_bits(),
        h.distance_m.to_bits(),
        h.quality.to_bits(),
    )
    .unwrap();
}

/// Runs the deterministic workload through all four read entry points and
/// renders every result with exact bit patterns.
fn oracle_transcript() -> String {
    let mut rng = Rng(0x5747_2015);
    let mut server = CloudServer::with_config(
        CameraProfile::smartphone(),
        ServerConfig {
            shard_width_s: 150.0,
            publish_threshold: 24,
            ..ServerConfig::default()
        },
    );
    server.set_executor(Executor::serial());

    // Subscriptions registered before ingest see the whole stream.
    let subs: Vec<_> = option_matrix()
        .into_iter()
        .map(|(name, opts)| {
            let q = Query::new(200.0, 2600.0, base(), 450.0);
            (name, server.subscribe(q, opts))
        })
        .collect();

    // Ingest in uneven batches: some publish full snapshots, some stay
    // pending in the delta, so both scan operators are exercised.
    let mut out = String::new();
    for (batch_no, n) in [17usize, 40, 9, 31, 6].into_iter().enumerate() {
        let reps = workload_reps(&mut rng, n);
        server.ingest_batch(&UploadBatch {
            provider_id: batch_no as u64,
            video_id: 7,
            reps,
        });
    }
    // Churn: a retraction and an explicit expiry mid-history.
    server.retract_provider(1);
    server.expire_before(120.0);

    let queries = workload_queries(&mut rng, 12);
    for (name, opts) in option_matrix() {
        writeln!(out, "[query {name}]").unwrap();
        for (i, q) in queries.iter().enumerate() {
            writeln!(out, " q{i}").unwrap();
            for h in server.query(q, &opts) {
                render_hit(&mut out, &h);
            }
        }
        writeln!(out, "[batch {name}]").unwrap();
        for (i, hits) in server.query_batch(&queries, &opts, 1).iter().enumerate() {
            writeln!(out, " q{i}").unwrap();
            for h in hits {
                render_hit(&mut out, h);
            }
        }
        writeln!(out, "[nearest {name}]").unwrap();
        for (i, q) in queries.iter().take(6).enumerate() {
            writeln!(out, " q{i}").unwrap();
            for h in server.query_nearest(q.t_start, q.t_end, q.center, 5, &opts, 5_000.0) {
                render_hit(&mut out, &h);
            }
        }
    }
    for (name, id) in subs {
        writeln!(out, "[subscription {name}]").unwrap();
        for h in server.poll_subscription(id) {
            render_hit(&mut out, &h);
        }
    }
    out
}

#[test]
fn results_match_prerefactor_fixture() {
    let got = oracle_transcript();
    if got != FIXTURE {
        // Locate the first diverging line for a readable failure.
        for (i, (g, f)) in got.lines().zip(FIXTURE.lines()).enumerate() {
            assert_eq!(g, f, "first divergence at fixture line {}", i + 1);
        }
        assert_eq!(
            got.lines().count(),
            FIXTURE.lines().count(),
            "transcripts diverge in length"
        );
        unreachable!("transcripts differ but no diverging line found");
    }
}

/// Regenerates the oracle fixture. Only run this on a tree whose read
/// path is known-good (it *defines* the oracle).
#[test]
#[ignore]
fn regenerate() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_oracle.txt"
    );
    std::fs::write(path, oracle_transcript()).unwrap();
}

fn par_exec() -> Executor {
    static EXEC: OnceLock<Executor> = OnceLock::new();
    EXEC.get_or_init(|| Executor::new(ExecConfig::with_threads(4)))
        .clone()
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (
        -800.0f64..800.0,
        -800.0f64..800.0,
        0.0f64..360.0,
        0.0f64..3600.0,
        0.5f64..300.0,
    )
        .prop_map(|(dx, dy, theta, t0, dur)| {
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        -800.0f64..800.0,
        -800.0f64..800.0,
        10.0f64..500.0,
        0.0f64..3600.0,
        1.0f64..2000.0,
    )
        .prop_map(|(dx, dy, r, t0, win)| {
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
}

fn arb_opts() -> impl Strategy<Value = QueryOptions> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
        0.0f64..30.0,
        prop_oneof![Just(usize::MAX), 1usize..40],
    )
        .prop_map(|(dir, cov, quality, tol, top_n)| QueryOptions {
            top_n,
            direction_filter: dir,
            direction_tolerance_deg: tol,
            require_coverage: cov,
            rank: if quality {
                RankMode::Quality
            } else {
                RankMode::Distance
            },
        })
}

fn servers_from(reps: &[RepFov]) -> (CloudServer, CloudServer) {
    let records: Vec<(RepFov, SegmentRef)> = reps
        .iter()
        .enumerate()
        .map(|(i, &rep)| {
            (
                rep,
                SegmentRef {
                    provider_id: (i % 5) as u64,
                    video_id: (i / 5) as u64,
                    segment_idx: i as u32,
                },
            )
        })
        .collect();
    let config = ServerConfig {
        shard_width_s: 120.0,
        publish_threshold: 16,
        ..ServerConfig::default()
    };
    let serial = CloudServer::from_records_with_config_exec(
        CameraProfile::smartphone(),
        config,
        Executor::serial(),
        records.clone(),
    );
    let parallel = CloudServer::from_records_with_config_exec(
        CameraProfile::smartphone(),
        config,
        par_exec(),
        records,
    );
    (serial, parallel)
}

/// One server per [`FanoutMode`], all on the shared parallel pool, loaded
/// with identical records — only the probe fan-out decision may differ.
fn servers_per_fanout_mode(reps: &[RepFov]) -> Vec<(FanoutMode, CloudServer)> {
    let records: Vec<(RepFov, SegmentRef)> = reps
        .iter()
        .enumerate()
        .map(|(i, &rep)| {
            (
                rep,
                SegmentRef {
                    provider_id: (i % 5) as u64,
                    video_id: (i / 5) as u64,
                    segment_idx: i as u32,
                },
            )
        })
        .collect();
    [
        FanoutMode::Adaptive,
        FanoutMode::Serial,
        FanoutMode::Parallel,
    ]
    .into_iter()
    .map(|mode| {
        let config = ServerConfig {
            shard_width_s: 120.0,
            publish_threshold: 16,
            fanout: mode,
            ..ServerConfig::default()
        };
        (
            mode,
            CloudServer::from_records_with_config_exec(
                CameraProfile::smartphone(),
                config,
                par_exec(),
                records.clone(),
            ),
        )
    })
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All plan-driven entry points agree with each other and across
    /// executors: serial query == parallel query == batched query, for
    /// arbitrary option combinations.
    #[test]
    fn serial_parallel_batch_agree(
        reps in prop::collection::vec(arb_rep(), 0..100),
        queries in prop::collection::vec(arb_query(), 1..10),
        opts in arb_opts(),
    ) {
        let (serial, parallel) = servers_from(&reps);
        let per_query: Vec<Vec<SearchHit>> =
            queries.iter().map(|q| serial.query(q, &opts)).collect();
        for (q, expected) in queries.iter().zip(&per_query) {
            prop_assert_eq!(&parallel.query(q, &opts), expected);
        }
        prop_assert_eq!(&serial.query_batch(&queries, &opts, 1), &per_query);
        prop_assert_eq!(&parallel.query_batch(&queries, &opts, 4), &per_query);
    }

    /// The adaptive fan-out cost model may only change *where* a probe
    /// runs, never *what* it returns: forcing serial, forcing parallel,
    /// and letting the planner decide must all be byte-identical.
    #[test]
    fn fanout_decision_never_changes_results(
        reps in prop::collection::vec(arb_rep(), 0..120),
        queries in prop::collection::vec(arb_query(), 1..8),
        opts in arb_opts(),
    ) {
        let servers = servers_per_fanout_mode(&reps);
        let (_, oracle) = &servers[0];
        let expected: Vec<Vec<SearchHit>> =
            queries.iter().map(|q| oracle.query(q, &opts)).collect();
        let expected_batch = oracle.query_batch(&queries, &opts, 4);
        for (mode, server) in &servers[1..] {
            for (q, hits) in queries.iter().zip(&expected) {
                prop_assert_eq!(
                    &server.query(q, &opts), hits,
                    "query results diverged under {:?}", mode
                );
            }
            prop_assert_eq!(
                &server.query_batch(&queries, &opts, 4), &expected_batch,
                "batch results diverged under {:?}", mode
            );
        }
    }

    /// k-nearest: the radius-expansion plan loop must agree across
    /// executors, and under [`RankMode::Distance`] must return exactly the
    /// top-k of an exhaustive max-radius query (the brute-force oracle).
    /// Under Quality, ties (score 0) keep candidate-enumeration order,
    /// which legitimately differs between expansion rings and one giant
    /// query — so the oracle comparison is pinned to Distance, where the
    /// ranking key is total almost everywhere.
    #[test]
    fn nearest_matches_bruteforce_oracle(
        reps in prop::collection::vec(arb_rep(), 0..80),
        q in arb_query(),
        k in 1usize..8,
        opts in arb_opts(),
    ) {
        let (serial, parallel) = servers_from(&reps);
        let max_radius = 50_000.0;
        let near_serial = serial.query_nearest(q.t_start, q.t_end, q.center, k, &opts, max_radius);
        let near_parallel =
            parallel.query_nearest(q.t_start, q.t_end, q.center, k, &opts, max_radius);
        prop_assert_eq!(&near_serial, &near_parallel);

        if opts.rank == RankMode::Distance {
            let mut oracle = serial.query(
                &Query::new(q.t_start, q.t_end, q.center, max_radius),
                &QueryOptions { top_n: usize::MAX, ..opts },
            );
            oracle.truncate(k);
            prop_assert_eq!(near_serial, oracle);
        }
    }
}
