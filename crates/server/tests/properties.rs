//! Property tests for the server: index candidates against brute force,
//! ranking invariants, sharded vs flat agreement, snapshot round trips.

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov};
use swag_geo::{LatLon, METERS_PER_DEG};
use swag_server::{
    load_snapshot, save_snapshot, CloudServer, FovIndex, IndexKind, Query, QueryOptions, RankMode,
    SegmentId, SegmentRef, ShardedFovIndex,
};

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
        0.0f64..360.0,
        0.0f64..3600.0,
        0.5f64..120.0,
    )
        .prop_map(|(dx, dy, theta, t0, dur)| {
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
        10.0f64..500.0,
        0.0f64..3600.0,
        1.0f64..1800.0,
    )
        .prop_map(|(dx, dy, r, t0, win)| {
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
}

/// The paper's candidate semantics, naively: spatial box + temporal
/// overlap.
fn naive_candidates(reps: &[RepFov], q: &Query) -> Vec<usize> {
    let r_lat = q.radius_m / METERS_PER_DEG;
    let r_lng = q.radius_m / (METERS_PER_DEG * q.center.lat.to_radians().cos());
    reps.iter()
        .enumerate()
        .filter(|(_, rep)| {
            (rep.fov.p.lat - q.center.lat).abs() <= r_lat
                && (rep.fov.p.lng - q.center.lng).abs() <= r_lng
                && rep.overlaps_time(q.t_start, q.t_end)
        })
        .map(|(i, _)| i)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_candidates_match_naive(
        reps in prop::collection::vec(arb_rep(), 0..150),
        q in arb_query(),
    ) {
        let mut idx = FovIndex::new(IndexKind::RTree);
        for (i, rep) in reps.iter().enumerate() {
            idx.insert(rep, SegmentId(i as u32));
        }
        let mut got: Vec<usize> = idx.candidates(&q).into_iter().map(|id| id.0 as usize).collect();
        got.sort_unstable();
        prop_assert_eq!(got, naive_candidates(&reps, &q));
    }

    #[test]
    fn sharded_matches_flat(
        reps in prop::collection::vec(arb_rep(), 0..150),
        q in arb_query(),
        width in 60.0f64..1200.0,
    ) {
        let mut flat = FovIndex::new(IndexKind::RTree);
        let mut sharded = ShardedFovIndex::new(width, IndexKind::RTree);
        for (i, rep) in reps.iter().enumerate() {
            flat.insert(rep, SegmentId(i as u32));
            sharded.insert(rep, SegmentId(i as u32));
        }
        let mut a = flat.candidates(&q);
        let mut b = sharded.candidates(&q);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ranking_is_ordered_and_within_candidates(
        reps in prop::collection::vec(arb_rep(), 1..100),
        q in arb_query(),
        quality in prop::bool::ANY,
    ) {
        let server = CloudServer::new(CameraProfile::smartphone());
        for (i, rep) in reps.iter().enumerate() {
            server.ingest_one(*rep, SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            });
        }
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            rank: if quality { RankMode::Quality } else { RankMode::Distance },
            ..QueryOptions::default()
        };
        let hits = server.query(&q, &opts);
        let naive = naive_candidates(&reps, &q);
        prop_assert_eq!(hits.len(), naive.len());
        if quality {
            prop_assert!(hits.windows(2).all(|w| w[0].quality >= w[1].quality));
            prop_assert!(hits.iter().all(|h| (0.0..=1.0).contains(&h.quality)));
        } else {
            prop_assert!(hits.windows(2).all(|w| w[0].distance_m <= w[1].distance_m));
        }
    }

    #[test]
    fn snapshot_round_trip_any_store(reps in prop::collection::vec(arb_rep(), 0..100)) {
        let server = CloudServer::new(CameraProfile::smartphone());
        for (i, rep) in reps.iter().enumerate() {
            server.ingest_one(*rep, SegmentRef {
                provider_id: i as u64 % 5,
                video_id: i as u64,
                segment_idx: 0,
            });
        }
        let restored = load_snapshot(save_snapshot(&server).unwrap(), CameraProfile::smartphone()).unwrap();
        prop_assert_eq!(restored.stats().segments, reps.len());
        // Spot-check with a broad query.
        let q = Query::new(0.0, 7200.0, base(), 5000.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        prop_assert_eq!(server.query(&q, &opts).len(), restored.query(&q, &opts).len());
    }

    #[test]
    fn snapshot_loader_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = load_snapshot(&bytes[..], CameraProfile::smartphone());
    }

    #[test]
    fn corrupted_snapshots_error_not_panic(reps in prop::collection::vec(arb_rep(), 1..20), flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8)) {
        let server = CloudServer::new(CameraProfile::smartphone());
        for (i, rep) in reps.iter().enumerate() {
            server.ingest_one(*rep, SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            });
        }
        let mut raw = save_snapshot(&server).unwrap().to_vec();
        for (idx, val) in flips {
            let i = idx.index(raw.len());
            raw[i] ^= val;
        }
        // Either loads (flips may be benign) or errors — never panics.
        let _ = load_snapshot(&raw[..], CameraProfile::smartphone());
    }

    #[test]
    fn top_n_is_a_prefix_of_the_full_ranking(
        reps in prop::collection::vec(arb_rep(), 1..100),
        q in arb_query(),
        n in 1usize..20,
    ) {
        let server = CloudServer::new(CameraProfile::smartphone());
        for (i, rep) in reps.iter().enumerate() {
            server.ingest_one(*rep, SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            });
        }
        let full = server.query(&q, &QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        });
        let top = server.query(&q, &QueryOptions {
            top_n: n,
            direction_filter: false,
            ..QueryOptions::default()
        });
        prop_assert_eq!(top.len(), full.len().min(n));
        for (a, b) in top.iter().zip(&full) {
            prop_assert_eq!(a.id, b.id);
        }
    }
}
