//! Push/pull parity: a standing query's mailbox must contain exactly the
//! segments a retrospective pull [`swag_server::CloudServer::query`] over
//! the same `(Query, QueryOptions)` returns — the two paths share one
//! compiled plan (boxes + filter chain), so they can only diverge in the
//! stages the mailbox deliberately skips: ranking and top-N truncation.
//!
//! Mailboxes accumulate in arrival order and are unbounded, so the
//! comparison is order-insensitive and the pull side runs with
//! `top_n = usize::MAX`; a second check pins the truncation relation
//! (a finite-top-N pull is a subset of the mailbox).

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov, UploadBatch};
use swag_geo::LatLon;
use swag_server::{CloudServer, Query, QueryOptions, RankMode, SearchHit, ServerConfig};

fn base() -> LatLon {
    LatLon::new(40.0, 116.32)
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (
        -700.0f64..700.0,
        -700.0f64..700.0,
        0.0f64..360.0,
        0.0f64..2400.0,
        0.5f64..200.0,
    )
        .prop_map(|(dx, dy, theta, t0, dur)| {
            RepFov::new(
                t0,
                t0 + dur,
                Fov::new(base().offset_by(swag_geo::Vec2::new(dx, dy)), theta),
            )
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        -500.0f64..500.0,
        -500.0f64..500.0,
        30.0f64..800.0,
        0.0f64..2000.0,
        10.0f64..2500.0,
    )
        .prop_map(|(dx, dy, r, t0, win)| {
            Query::new(
                t0,
                t0 + win,
                base().offset_by(swag_geo::Vec2::new(dx, dy)),
                r,
            )
        })
}

fn arb_opts() -> impl Strategy<Value = QueryOptions> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        prop::bool::ANY,
        0.0f64..25.0,
    )
        .prop_map(|(dir, cov, quality, tol)| QueryOptions {
            top_n: usize::MAX,
            direction_filter: dir,
            direction_tolerance_deg: tol,
            require_coverage: cov,
            rank: if quality {
                RankMode::Quality
            } else {
                RankMode::Distance
            },
        })
}

/// Canonical order-insensitive key set: hits identified by provenance
/// with exact distance/quality bit patterns.
fn keyed(hits: &[SearchHit]) -> Vec<(u64, u64, u32, u64, u64)> {
    let mut keys: Vec<_> = hits
        .iter()
        .map(|h| {
            (
                h.source.provider_id,
                h.source.video_id,
                h.source.segment_idx,
                h.distance_m.to_bits(),
                h.quality.to_bits(),
            )
        })
        .collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary workloads and filter combinations, the mailbox of a
    /// subscription registered before ingest equals a retrospective
    /// untruncated pull query, as a set.
    #[test]
    fn mailbox_equals_retrospective_query(
        reps in prop::collection::vec(arb_rep(), 0..80),
        q in arb_query(),
        opts in arb_opts(),
        publish_threshold in prop_oneof![Just(4usize), Just(1000usize)],
    ) {
        let server = CloudServer::with_config(
            CameraProfile::smartphone(),
            ServerConfig {
                shard_width_s: 300.0,
                publish_threshold,
                ..ServerConfig::default()
            },
        );
        let sub = server.subscribe(Query::new(q.t_start, q.t_end, q.center, q.radius_m), opts);
        for (i, chunk) in reps.chunks(7).enumerate() {
            server.ingest_batch(&UploadBatch {
                provider_id: i as u64,
                video_id: 3,
                reps: chunk.to_vec(),
            });
        }
        let pushed = server.poll_subscription(sub);
        let pulled = server.query(&q, &opts);
        prop_assert_eq!(keyed(&pushed), keyed(&pulled));

        // Truncated pulls return a subset of the mailbox contents.
        let top3 = server.query(&q, &QueryOptions { top_n: 3, ..opts });
        prop_assert!(top3.len() <= 3);
        let mailbox_keys = keyed(&pushed);
        for key in keyed(&top3) {
            prop_assert!(mailbox_keys.binary_search(&key).is_ok());
        }
    }
}

#[test]
fn mailbox_is_in_arrival_order_while_pull_is_ranked() {
    let server = CloudServer::new(CameraProfile::smartphone());
    let q = Query::new(0.0, 100.0, base(), 200.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        ..QueryOptions::default()
    };
    let sub = server.subscribe(q, opts);
    // Ingest far-then-near so arrival order and distance order disagree.
    for (i, dist) in [90.0, 30.0, 60.0].into_iter().enumerate() {
        server.ingest_batch(&UploadBatch {
            provider_id: i as u64,
            video_id: 0,
            reps: vec![RepFov::new(
                10.0,
                20.0,
                Fov::new(base().offset(180.0, dist), 0.0),
            )],
        });
    }
    let pushed = server.poll_subscription(sub);
    let pulled = server.query(&q, &opts);
    let arrival: Vec<u64> = pushed.iter().map(|h| h.source.provider_id).collect();
    let ranked: Vec<u64> = pulled.iter().map(|h| h.source.provider_id).collect();
    assert_eq!(arrival, vec![0, 1, 2], "mailbox keeps ingest order");
    assert_eq!(ranked, vec![1, 2, 0], "pull ranks nearest first");
    assert_eq!(keyed(&pushed), keyed(&pulled), "same membership");
}
