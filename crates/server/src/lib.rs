//! SWAG cloud server: spatio-temporal FoV indexing and rank-based
//! retrieval (paper §II, §V).
//!
//! The server ingests [`swag_core::UploadBatch`]es of representative FoVs
//! from providers, stores them in a [`store::SegmentStore`], and indexes
//! each as a 3-D line segment `[lng, lat, t_s] .. [lng, lat, t_e]` in an
//! R-tree ([`index::FovIndex`]). A querier's request
//! `Q = (t_s, t_e, p̂, r̂)` is converted to a query box (the radius is
//! rescaled to degrees at the query latitude, §V-B) and answered with the
//! paper's four-step filtering mechanism ([`ranking`]):
//!
//! 1. build the query rectangle from an empirical radius of view,
//! 2. retrieve all FoV segments intersecting it,
//! 3. drop FoVs pointing away from the query centre, and
//! 4. rank the rest by distance to the centre, returning the top N.
//!
//! [`server::CloudServer`] serves queries from immutable published
//! snapshots (epochs): a query clones one `Arc` in a momentary critical
//! section and then scans and ranks lock-free, while writers append into
//! a small delta and periodically fold it into a fresh snapshot whose
//! time-sharded index ([`shard::ShardedFovIndex`]) also drives retention
//! — old shards are dropped wholesale and their segments retired from
//! the store.

pub mod engine;
pub mod index;
pub mod persistence;
pub mod query;
pub mod ranking;
pub mod server;
pub mod shard;
pub mod store;
pub mod subscribe;

pub use engine::admission::{AdmissionConfig, ShedReason};
pub use engine::cache::CacheConfig;
pub use engine::fanout::{FanoutDecision, FanoutMode};
pub use engine::forensics::{
    result_digest, AnalyzeReport, AnalyzedQuery, CacheOutcome, ColdScanMeasure, EventLogConfig,
    QueryEvent, QueryEventLog, QueryOutcome, QUERY_EVENT_WORDS,
};
pub use engine::plan::{FilterChain, QueryPlan};
pub use index::{FovIndex, IndexKind};
pub use persistence::{load_snapshot, save_snapshot, SnapshotError};
pub use query::{Query, QueryError, QueryOptions, RankMode};
pub use ranking::{quality_score, SearchHit};
pub use server::{CloudServer, ServerConfig, ServerStats, AUTO_THRESHOLD_INTERVAL};
pub use shard::{ExpireReport, ShardedFovIndex};
pub use store::{SegmentId, SegmentRecord, SegmentRef, SegmentStore};
pub use subscribe::{SubscriptionId, SubscriptionSet};
pub use swag_store::{DurabilityConfig, DurabilityStats, StoreError, WalOp};
