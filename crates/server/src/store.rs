//! Segment metadata storage.
//!
//! The server never holds video content — only representative FoVs plus a
//! reference telling the querier *which provider's video, which segment* to
//! fetch afterwards (the content-free design of §I).

use serde::{Deserialize, Serialize};
use swag_core::RepFov;

/// Server-assigned dense identifier of a stored segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

/// Where a segment's actual video bytes live on the client side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentRef {
    /// Contributing provider.
    pub provider_id: u64,
    /// Video on the provider's device.
    pub video_id: u64,
    /// Segment index within that video.
    pub segment_idx: u32,
}

/// A stored segment: its representative FoV and its source reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Server-assigned id.
    pub id: SegmentId,
    /// The uploaded representative FoV.
    pub rep: RepFov,
    /// Source video segment.
    pub source: SegmentRef,
}

/// Append-only segment store with tombstones; `SegmentId` is the index.
///
/// Ids stay stable forever: retraction ([`SegmentStore::retire`]) marks a
/// record dead instead of reusing its slot, so references held by queriers
/// never dangle.
#[derive(Debug, Clone, Default)]
pub struct SegmentStore {
    records: Vec<SegmentRecord>,
    retired: Vec<bool>,
    live: usize,
}

impl SegmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, assigning its id.
    pub fn push(&mut self, rep: RepFov, source: SegmentRef) -> SegmentId {
        let id = SegmentId(u32::try_from(self.records.len()).expect("store capacity exceeded"));
        self.records.push(SegmentRecord { id, rep, source });
        self.retired.push(false);
        self.live += 1;
        id
    }

    /// Looks up a record (live or retired — ids never dangle).
    #[inline]
    pub fn get(&self, id: SegmentId) -> &SegmentRecord {
        &self.records[id.0 as usize]
    }

    /// Marks a record retired. Returns `false` if it already was.
    pub fn retire(&mut self, id: SegmentId) -> bool {
        let slot = &mut self.retired[id.0 as usize];
        if *slot {
            false
        } else {
            *slot = true;
            self.live -= 1;
            true
        }
    }

    /// Whether a record has been retired.
    #[inline]
    pub fn is_retired(&self, id: SegmentId) -> bool {
        self.retired[id.0 as usize]
    }

    /// Number of live (non-retired) segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the store has no live segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over the live records.
    pub fn iter(&self) -> impl Iterator<Item = &SegmentRecord> {
        self.records
            .iter()
            .zip(&self.retired)
            .filter(|(_, &dead)| !dead)
            .map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn rep(t: f64) -> RepFov {
        RepFov::new(t, t + 1.0, Fov::new(LatLon::new(40.0, 116.0), 0.0))
    }

    fn src(p: u64) -> SegmentRef {
        SegmentRef {
            provider_id: p,
            video_id: 0,
            segment_idx: 0,
        }
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut s = SegmentStore::new();
        assert!(s.is_empty());
        let a = s.push(rep(0.0), src(1));
        let b = s.push(rep(1.0), src(2));
        assert_eq!((a, b), (SegmentId(0), SegmentId(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b).source.provider_id, 2);
    }

    #[test]
    fn iter_preserves_order() {
        let mut s = SegmentStore::new();
        for i in 0..5 {
            s.push(rep(i as f64), src(i));
        }
        let providers: Vec<u64> = s.iter().map(|r| r.source.provider_id).collect();
        assert_eq!(providers, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn retire_hides_but_keeps_ids_valid() {
        let mut s = SegmentStore::new();
        let a = s.push(rep(0.0), src(1));
        let b = s.push(rep(1.0), src(2));
        assert!(s.retire(a));
        assert!(!s.retire(a), "double retire must be a no-op");
        assert_eq!(s.len(), 1);
        assert!(s.is_retired(a) && !s.is_retired(b));
        // The slot still resolves (no dangling ids).
        assert_eq!(s.get(a).source.provider_id, 1);
        let live: Vec<u64> = s.iter().map(|r| r.source.provider_id).collect();
        assert_eq!(live, vec![2]);
    }
}
