//! Segment metadata storage.
//!
//! The server never holds video content — only representative FoVs plus a
//! reference telling the querier *which provider's video, which segment* to
//! fetch afterwards (the content-free design of §I).
//!
//! The types themselves live in the `swag-store` crate (ISSUE 10), which
//! also owns their durable forms — the segment WAL, snapshot containers,
//! and cold runs. This module re-exports them so the rest of the server
//! keeps its historical `crate::store::*` paths.

pub use swag_store::{SegmentId, SegmentRecord, SegmentRef, SegmentStore};
