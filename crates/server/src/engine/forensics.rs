//! Query forensics: EXPLAIN ANALYZE, the wide-event query log, and
//! replayable capture.
//!
//! Three layers share one data model, the [`QueryEvent`] — a fixed
//! 32-word record of everything one query did: the plan fingerprint and
//! the full request (bit-exact, so a capture replays byte-identically),
//! the epoch stamp it executed against, the concrete cache / admission /
//! fan-out decisions, per-operator wall time and rows in/out, the
//! index-vs-delta hit split, total latency, and an order-sensitive FNV
//! digest of the result set.
//!
//! * **EXPLAIN ANALYZE** (`Engine::query_analyzed`, in
//!   [`super::analyze`]) runs the *real* operator pipeline through an
//!   instrumented twin of the normal executor — same operator functions,
//!   same order, byte-identical results (pinned by an equivalence test)
//!   — and renders the plan tree annotated with what actually happened.
//! * The **wide-event log** ([`QueryEventLog`]) records one event per
//!   query into per-thread lock-free rings (the flight recorder's
//!   seqlock protocol, generalized in `swag-obs::EventLog`), with a
//!   tail-sampling policy: sheds and over-SLO-slow queries are always
//!   kept, ordinary traffic probabilistically. Disabled (the default),
//!   the query path pays one `Option` branch — no clock reads.
//! * **Replay**: a kept event carries the query, its options, and the
//!   epoch stamp, so `swag replay` can re-execute it under `--analyze`
//!   against a rebuilt engine and diff the result digest.
//!
//! This module holds the data model; the instrumented executor and the
//! annotated-report rendering live in [`super::analyze`].

use swag_obs::{EventClass, EventLog, EventLogStats};

use crate::query::{Query, QueryOptions, RankMode};
use crate::ranking::SearchHit;

use super::admission::ShedReason;

pub use super::analyze::{AnalyzeReport, AnalyzedQuery, ColdScanMeasure};

/// Words per encoded [`QueryEvent`].
pub const QUERY_EVENT_WORDS: usize = 32;

/// Event-log tuning, part of [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLogConfig {
    /// Master switch; disabled (the default) the query path pays one
    /// load-and-branch and reads no clock for forensics.
    pub enabled: bool,
    /// Per-thread ring capacity (recent events, sampled or not).
    pub capacity: usize,
    /// Bound on the tail-sampled kept log.
    pub kept_capacity: usize,
    /// Fraction (out of 1000) of ordinary events the tail sampler keeps;
    /// shed and slow events are always kept.
    pub keep_per_mille: u32,
    /// Latency at or above which an event is "slow" and always kept.
    /// `0` keeps only sheds unconditionally.
    pub slow_micros: u64,
    /// Sampler seed, so a capture run is reproducible.
    pub seed: u64,
}

impl Default for EventLogConfig {
    fn default() -> Self {
        EventLogConfig {
            enabled: false,
            capacity: 1024,
            kept_capacity: 256,
            keep_per_mille: 100,
            slow_micros: 0,
            seed: 0,
        }
    }
}

impl EventLogConfig {
    /// A sensible enabled configuration (the CLI live stack uses this).
    pub fn enabled(slow_micros: u64, seed: u64) -> Self {
        EventLogConfig {
            enabled: true,
            slow_micros,
            seed,
            ..EventLogConfig::default()
        }
    }
}

/// How a query ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOutcome {
    /// Executed and returned results.
    Served,
    /// Shed by admission control before execution.
    Shed(ShedReason),
}

impl std::fmt::Display for QueryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryOutcome::Served => write!(f, "served"),
            QueryOutcome::Shed(ShedReason::RateLimited) => write!(f, "shed_rate_limited"),
            QueryOutcome::Shed(ShedReason::Overloaded) => write!(f, "shed_overloaded"),
        }
    }
}

/// What the result cache did for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// No cache configured.
    Off,
    /// Plan spans too many shard buckets to be cacheable.
    Ineligible,
    /// Looked up, absent or invalidated — executed and stored.
    Miss,
    /// Served from the cache; no operators ran.
    Hit,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::Off => write!(f, "off"),
            CacheOutcome::Ineligible => write!(f, "ineligible"),
            CacheOutcome::Miss => write!(f, "miss"),
            CacheOutcome::Hit => write!(f, "hit"),
        }
    }
}

/// One query's wide event. All-numeric and `Copy` so it encodes to a
/// fixed `[u64; QUERY_EVENT_WORDS]` for the lock-free ring; float fields
/// round-trip bit-exactly (replay depends on it).
#[derive(Debug, Clone, Copy)]
pub struct QueryEvent {
    /// Canonical plan fingerprint (the result-cache key).
    pub fingerprint: u64,
    // The request, bit-exact.
    pub t_start: f64,
    pub t_end: f64,
    pub lat: f64,
    pub lng: f64,
    pub radius_m: f64,
    pub top_n: u64,
    pub direction_filter: bool,
    pub direction_tolerance_deg: f64,
    pub require_coverage: bool,
    pub rank: RankMode,
    // Decisions.
    pub outcome: QueryOutcome,
    pub cache: CacheOutcome,
    pub fanout_parallel: bool,
    pub fanout_shards: u64,
    pub fanout_items: u64,
    pub fanout_work: f64,
    pub fanout_threads: u64,
    /// Tokens left in the client's admission bucket after the decision;
    /// `None` when admission was not consulted.
    pub tokens_remaining: Option<f64>,
    // Epoch stamp the query executed against.
    pub global_gen: u64,
    pub delta_gen: u64,
    pub delta_len: u64,
    // Per-operator measurements (zero on cache hits and sheds).
    pub index_micros: u64,
    pub index_rows_in: u64,
    pub index_rows_out: u64,
    pub delta_micros: u64,
    pub delta_rows_in: u64,
    pub delta_rows_out: u64,
    pub rank_micros: u64,
    pub rank_rows_in: u64,
    pub rank_rows_out: u64,
    pub hits_index: u64,
    pub hits_delta: u64,
    // Outcome.
    pub total_micros: u64,
    pub hit_count: u64,
    /// Order-sensitive FNV-1a digest of the result set.
    pub digest: u64,
    /// Engine-clock time the query completed (ring ordering key).
    pub end_micros: u64,
}

impl QueryEvent {
    /// Packs the event into its fixed word array.
    pub fn encode(&self) -> [u64; QUERY_EVENT_WORDS] {
        let mut flags = 0u64;
        flags |= u64::from(self.direction_filter);
        flags |= u64::from(self.require_coverage) << 1;
        flags |= u64::from(matches!(self.rank, RankMode::Quality)) << 2;
        flags |= u64::from(self.fanout_parallel) << 3;
        flags |= (match self.outcome {
            QueryOutcome::Served => 0u64,
            QueryOutcome::Shed(ShedReason::RateLimited) => 1,
            QueryOutcome::Shed(ShedReason::Overloaded) => 2,
        }) << 4;
        flags |= (match self.cache {
            CacheOutcome::Off => 0u64,
            CacheOutcome::Ineligible => 1,
            CacheOutcome::Miss => 2,
            CacheOutcome::Hit => 3,
        }) << 6;
        flags |= u64::from(self.tokens_remaining.is_some()) << 8;
        [
            self.fingerprint,
            flags,
            self.t_start.to_bits(),
            self.t_end.to_bits(),
            self.lat.to_bits(),
            self.lng.to_bits(),
            self.radius_m.to_bits(),
            self.top_n,
            self.direction_tolerance_deg.to_bits(),
            self.global_gen,
            self.delta_gen,
            self.delta_len,
            self.fanout_shards,
            self.fanout_items,
            self.fanout_work.to_bits(),
            self.fanout_threads,
            self.tokens_remaining.unwrap_or(0.0).to_bits(),
            self.index_micros,
            self.index_rows_in,
            self.index_rows_out,
            self.delta_micros,
            self.delta_rows_in,
            self.delta_rows_out,
            self.rank_micros,
            self.rank_rows_in,
            self.rank_rows_out,
            self.hits_index,
            self.hits_delta,
            self.total_micros,
            self.hit_count,
            self.digest,
            self.end_micros,
        ]
    }

    /// Unpacks an encoded event; `None` on wrong width or invalid
    /// discriminant bits.
    pub fn decode(words: &[u64]) -> Option<Self> {
        if words.len() != QUERY_EVENT_WORDS {
            return None;
        }
        let flags = words[1];
        let outcome = match (flags >> 4) & 0b11 {
            0 => QueryOutcome::Served,
            1 => QueryOutcome::Shed(ShedReason::RateLimited),
            2 => QueryOutcome::Shed(ShedReason::Overloaded),
            _ => return None,
        };
        let cache = match (flags >> 6) & 0b11 {
            0 => CacheOutcome::Off,
            1 => CacheOutcome::Ineligible,
            2 => CacheOutcome::Miss,
            _ => CacheOutcome::Hit,
        };
        Some(QueryEvent {
            fingerprint: words[0],
            direction_filter: flags & 1 != 0,
            require_coverage: flags & 2 != 0,
            rank: if flags & 4 != 0 {
                RankMode::Quality
            } else {
                RankMode::Distance
            },
            fanout_parallel: flags & 8 != 0,
            outcome,
            cache,
            t_start: f64::from_bits(words[2]),
            t_end: f64::from_bits(words[3]),
            lat: f64::from_bits(words[4]),
            lng: f64::from_bits(words[5]),
            radius_m: f64::from_bits(words[6]),
            top_n: words[7],
            direction_tolerance_deg: f64::from_bits(words[8]),
            global_gen: words[9],
            delta_gen: words[10],
            delta_len: words[11],
            fanout_shards: words[12],
            fanout_items: words[13],
            fanout_work: f64::from_bits(words[14]),
            fanout_threads: words[15],
            tokens_remaining: (flags & (1 << 8) != 0).then(|| f64::from_bits(words[16])),
            index_micros: words[17],
            index_rows_in: words[18],
            index_rows_out: words[19],
            delta_micros: words[20],
            delta_rows_in: words[21],
            delta_rows_out: words[22],
            rank_micros: words[23],
            rank_rows_in: words[24],
            rank_rows_out: words[25],
            hits_index: words[26],
            hits_delta: words[27],
            total_micros: words[28],
            hit_count: words[29],
            digest: words[30],
            end_micros: words[31],
        })
    }

    /// Reconstructs the request this event recorded, bit-exact.
    pub fn query(&self) -> Query {
        Query {
            t_start: self.t_start,
            t_end: self.t_end,
            center: swag_geo::LatLon {
                lat: self.lat,
                lng: self.lng,
            },
            radius_m: self.radius_m,
        }
    }

    /// Reconstructs the request options this event recorded.
    pub fn options(&self) -> QueryOptions {
        QueryOptions {
            top_n: self.top_n as usize,
            direction_filter: self.direction_filter,
            direction_tolerance_deg: self.direction_tolerance_deg,
            require_coverage: self.require_coverage,
            rank: self.rank,
        }
    }

    /// One-line JSON: the exact word array (the replayable payload)
    /// plus a human-readable summary. `from_json` round-trips through
    /// the words only, so floats survive bit-exactly.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let words = self.encode();
        let mut s = String::with_capacity(640);
        s.push_str("{\"v\":1,\"words\":[");
        for (i, w) in words.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{w}");
        }
        let _ = write!(
            s,
            "],\"fingerprint\":\"{:#018x}\",\"outcome\":\"{}\",\"cache\":\"{}\",\"latency_us\":{},\"hits\":{},\"digest\":\"{:#018x}\"}}",
            self.fingerprint, self.outcome, self.cache, self.total_micros, self.hit_count, self.digest
        );
        s
    }

    /// Parses a [`Self::to_json`] line (only the `words` array is read).
    pub fn from_json(line: &str) -> Result<Self, String> {
        let start = line
            .find("\"words\":[")
            .ok_or_else(|| "no \"words\" array in event line".to_string())?
            + "\"words\":[".len();
        let end = line[start..]
            .find(']')
            .ok_or_else(|| "unterminated \"words\" array".to_string())?
            + start;
        let words: Vec<u64> = line[start..end]
            .split(',')
            .map(|w| w.trim().parse::<u64>().map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?;
        QueryEvent::decode(&words)
            .ok_or_else(|| format!("bad event encoding ({} words)", words.len()))
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Order-sensitive FNV-1a digest over every field of every hit. Two
/// result sets digest equal iff they are byte-identical in order — the
/// replay equivalence check.
pub fn result_digest(hits: &[SearchHit]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    for hit in hits {
        eat(u64::from(hit.id.0));
        eat(hit.source.provider_id);
        eat(hit.source.video_id);
        eat(u64::from(hit.source.segment_idx));
        eat(hit.rep.t_start.to_bits());
        eat(hit.rep.t_end.to_bits());
        eat(hit.rep.fov.p.lat.to_bits());
        eat(hit.rep.fov.p.lng.to_bits());
        eat(hit.rep.fov.theta.to_bits());
        eat(hit.distance_m.to_bits());
        eat(hit.quality.to_bits());
    }
    h
}

/// The engine's wide-event log: classification policy over the generic
/// `swag-obs` event ring.
pub struct QueryEventLog {
    log: EventLog,
    slow_micros: u64,
}

impl QueryEventLog {
    pub(crate) fn new(cfg: EventLogConfig) -> Self {
        QueryEventLog {
            log: EventLog::new(
                QUERY_EVENT_WORDS,
                cfg.capacity,
                cfg.kept_capacity,
                cfg.keep_per_mille,
                cfg.seed,
            ),
            slow_micros: cfg.slow_micros,
        }
    }

    /// Pauses/resumes recording (for warm-up phases of a capture run).
    pub fn set_enabled(&self, on: bool) {
        self.log.set_enabled(on);
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.log.is_enabled()
    }

    /// The always-keep latency threshold.
    pub fn slow_micros(&self) -> u64 {
        self.slow_micros
    }

    /// Records one event; sheds and over-threshold-slow events are
    /// always-keep class. Returns whether the event was retained.
    pub(crate) fn record(&self, ev: &QueryEvent) -> bool {
        let class = if !matches!(ev.outcome, QueryOutcome::Served)
            || (self.slow_micros > 0 && ev.total_micros >= self.slow_micros)
        {
            EventClass::Always
        } else {
            EventClass::Sampled
        };
        self.log.record(&ev.encode(), class)
    }

    /// The tail-sampled kept events, oldest first.
    pub fn kept(&self) -> Vec<QueryEvent> {
        self.log
            .kept()
            .iter()
            .filter_map(|w| QueryEvent::decode(w))
            .collect()
    }

    /// Every event still in the rings, ordered by completion time.
    pub fn recent(&self) -> Vec<QueryEvent> {
        let mut evs: Vec<QueryEvent> = self
            .log
            .recent()
            .iter()
            .filter_map(|w| QueryEvent::decode(w))
            .collect();
        evs.sort_by_key(|e| e.end_micros);
        evs
    }

    /// Retention counters.
    pub fn stats(&self) -> EventLogStats {
        self.log.stats()
    }

    /// Drops recorded events (counters survive).
    pub fn clear(&self) {
        self.log.clear();
    }
}
