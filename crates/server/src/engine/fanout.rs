//! Adaptive fan-out: the per-query serial-vs-parallel cost model.
//!
//! Fanning a probe across the executor is not free — each shard becomes
//! a pool job (submission, stealing, a latch wait) and each worker
//! allocates a private result vector that the caller re-merges. For the
//! common narrow query (one or two small shards) that overhead exceeds
//! the probe itself, and on a host with fewer cores than pool threads
//! the "parallel" path degrades into context-switch churn that loses to
//! the plain serial loop outright.
//!
//! So the engine prices every plan before running it:
//!
//! * the sharded index estimates the probe cost — live shards in the
//!   window and their item counts, scaled by how much of each shard's
//!   time bucket the window actually overlaps (the temporal
//!   selectivity; see [`crate::shard::ShardedFovIndex::estimate_probe`]);
//! * the effective worker count is clamped to the machine's available
//!   parallelism, so an oversized pool on a small host never
//!   oversubscribes;
//! * the probe goes parallel only when at least
//!   [`PARALLEL_MIN_SHARDS`] shards are in play, more than one
//!   effective worker exists, and the selectivity-weighted work crosses
//!   [`PARALLEL_MIN_WORK`] items.
//!
//! Both probe paths are byte-identical by construction (the multi-shard
//! result is the ascending sort + dedup of the per-shard union either
//! way), so the decision can change latency but never results — a
//! property the equivalence proptests pin. The decision taken is
//! visible in `swag explain` (the `fanout` line) and in the
//! `swag_server_fanout_total{mode=...}` counters next to the per-
//! operator `op_micros` telemetry.

use std::sync::OnceLock;

use swag_exec::Executor;

use crate::shard::ShardedFovIndex;

/// How the engine chooses between the serial and parallel probe path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutMode {
    /// Price each plan with the cost model (the default).
    #[default]
    Adaptive,
    /// Always probe serially (deterministic latency, test pinning).
    Serial,
    /// Always fan out when structurally possible (≥ 2 shards and > 1
    /// effective worker) — the pre-cost-model behaviour.
    Parallel,
}

/// Fewest probed shards for which fanning out can pay: a single-shard
/// probe has nothing to distribute.
pub const PARALLEL_MIN_SHARDS: usize = 2;

/// Fewest selectivity-weighted index items for which fanning out pays.
/// Below this the pool's per-job overhead (submission + steal + latch)
/// exceeds the traversal work being distributed.
pub const PARALLEL_MIN_WORK: f64 = 4096.0;

/// The machine's available parallelism, resolved once per process.
pub(crate) fn hw_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One priced plan: whether the index scan fans out, and the estimate
/// it was priced from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FanoutDecision {
    /// Whether the shard probe runs on the pool.
    pub parallel: bool,
    /// Live shards the window probes.
    pub shards: usize,
    /// Indexed items across those shards.
    pub items: usize,
    /// Selectivity-weighted items (each shard scaled by the fraction of
    /// its time bucket the window overlaps) — the cost-model input.
    pub estimated_work: f64,
    /// Workers the probe will use: the pool size clamped to the host's
    /// available parallelism, or 1 when serial.
    pub threads: usize,
}

impl FanoutDecision {
    /// Prices a `[t0, t1]` probe of `index` on `exec` under `mode`.
    pub fn decide(
        index: &ShardedFovIndex,
        t0: f64,
        t1: f64,
        exec: &Executor,
        mode: FanoutMode,
    ) -> Self {
        let est = index.estimate_probe(t0, t1);
        let workers = exec.threads().min(hw_threads());
        let eligible = est.shards >= PARALLEL_MIN_SHARDS && workers > 1;
        let parallel = match mode {
            FanoutMode::Serial => false,
            FanoutMode::Parallel => eligible,
            FanoutMode::Adaptive => eligible && est.work >= PARALLEL_MIN_WORK,
        };
        FanoutDecision {
            parallel,
            shards: est.shards,
            items: est.items,
            estimated_work: est.work,
            threads: if parallel { workers } else { 1 },
        }
    }

    /// One-line rendering for `swag explain`.
    pub(crate) fn render(&self) -> String {
        if self.parallel {
            format!(
                "parallel on {} threads ({} shards, ~{} of {} items est.)",
                self.threads, self.shards, self.estimated_work as u64, self.items
            )
        } else {
            format!(
                "serial ({} shard{}, ~{} of {} items est.)",
                self.shards,
                if self.shards == 1 { "" } else { "s" },
                self.estimated_work as u64,
                self.items
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::store::SegmentId;
    use swag_core::{Fov, RepFov};
    use swag_exec::{ExecConfig, Executor};
    use swag_geo::LatLon;

    fn index_with(shards: usize, per_shard: usize) -> ShardedFovIndex {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        let p = LatLon::new(40.0, 116.32);
        let mut id = 0u32;
        for s in 0..shards {
            for i in 0..per_shard {
                let t0 = s as f64 * 100.0 + (i % 90) as f64;
                idx.insert(&RepFov::new(t0, t0 + 1.0, Fov::new(p, 0.0)), SegmentId(id));
                id += 1;
            }
        }
        idx
    }

    #[test]
    fn serial_executor_never_fans_out() {
        let idx = index_with(8, 10_000);
        let exec = Executor::serial();
        let d = FanoutDecision::decide(&idx, 0.0, 800.0, &exec, FanoutMode::Adaptive);
        assert!(!d.parallel);
        assert_eq!(d.threads, 1);
        assert_eq!(d.shards, 8);
    }

    #[test]
    fn small_probes_stay_serial_under_adaptive() {
        let idx = index_with(4, 8);
        let exec = Executor::new(ExecConfig::with_threads(4));
        let d = FanoutDecision::decide(&idx, 0.0, 400.0, &exec, FanoutMode::Adaptive);
        assert!(d.estimated_work < PARALLEL_MIN_WORK);
        assert!(!d.parallel, "{d:?}");
    }

    #[test]
    fn single_shard_probe_stays_serial_even_when_forced() {
        let idx = index_with(1, 10_000);
        let exec = Executor::new(ExecConfig::with_threads(4));
        for mode in [FanoutMode::Adaptive, FanoutMode::Parallel] {
            let d = FanoutDecision::decide(&idx, 0.0, 99.0, &exec, mode);
            assert!(!d.parallel, "{mode:?}: nothing to distribute");
        }
    }

    #[test]
    fn large_multi_shard_probes_fan_out() {
        let idx = index_with(6, 4_000);
        let exec = Executor::new(ExecConfig::with_threads(2));
        let d = FanoutDecision::decide(&idx, 0.0, 600.0, &exec, FanoutMode::Adaptive);
        if hw_threads() > 1 {
            assert!(d.parallel, "{d:?}");
            assert!(d.threads >= 2);
        } else {
            assert!(!d.parallel, "single-core host must stay serial: {d:?}");
            assert_eq!(d.threads, 1);
        }
        // Forcing serial overrides the cost model either way.
        let s = FanoutDecision::decide(&idx, 0.0, 600.0, &exec, FanoutMode::Serial);
        assert!(!s.parallel);
    }

    #[test]
    fn selectivity_scales_estimated_work() {
        let idx = index_with(4, 1_000);
        let exec = Executor::serial();
        // Full window sees all items; a window covering half of each
        // bucket prices roughly half the work.
        let full = FanoutDecision::decide(&idx, 0.0, 400.0, &exec, FanoutMode::Adaptive);
        let half = FanoutDecision::decide(&idx, 0.0, 150.0, &exec, FanoutMode::Adaptive);
        assert!(full.estimated_work > 3_500.0, "{full:?}");
        assert!(half.estimated_work < full.estimated_work, "{half:?}");
    }

    #[test]
    fn workers_clamp_to_available_parallelism() {
        let idx = index_with(8, 4_000);
        let exec = Executor::new(ExecConfig::with_threads(64));
        let d = FanoutDecision::decide(&idx, 0.0, 800.0, &exec, FanoutMode::Parallel);
        assert!(d.threads <= hw_threads().max(1));
    }

    #[test]
    fn render_names_the_mode() {
        let idx = index_with(2, 10);
        let d = FanoutDecision::decide(&idx, 0.0, 200.0, &Executor::serial(), FanoutMode::Serial);
        assert!(d.render().starts_with("serial"));
    }
}
