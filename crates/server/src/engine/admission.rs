//! Admission control: per-client token buckets plus a bounded in-flight
//! request budget, with load-shedding instead of queueing.
//!
//! The engine's query API is synchronous, so "bounded request queue"
//! means a hard in-flight cap: a request either takes a slot immediately
//! or is shed with [`ShedReason::Overloaded`]. There is deliberately no
//! wait list — under overload an unbounded queue converts excess offered
//! load into unbounded latency for *everyone*, while shedding keeps the
//! admitted requests' p99 bounded by actual service time (the
//! `cache_bench` overload phase gates on this).
//!
//! Rate policy is per client: each client id owns a token bucket
//! refilled at [`AdmissionConfig::rate_per_s`] with burst capacity
//! [`AdmissionConfig::burst`], so one hot client cannot starve the rest.
//! Buckets refill lazily from the engine's injectable
//! [`MonotonicClock`], making the policy deterministic under test. The
//! client table itself is bounded ([`AdmissionConfig::max_clients`]);
//! at capacity the stalest bucket is recycled, which at worst re-grants
//! a burst to a returning client — a deliberate fail-open bias.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use swag_obs::MonotonicClock;

/// Admission tuning, part of [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch; disabled (the default) admits everything and the
    /// engine skips the controller entirely.
    pub enabled: bool,
    /// Steady-state queries per second granted to each client.
    pub rate_per_s: f64,
    /// Bucket depth: how far above the steady rate a client may burst.
    pub burst: f64,
    /// Hard cap on concurrently executing queries ("queue" depth for a
    /// synchronous API); excess requests are shed, not parked.
    pub max_inflight: usize,
    /// Bound on tracked client buckets.
    pub max_clients: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: false,
            rate_per_s: 2000.0,
            burst: 200.0,
            max_inflight: 256,
            max_clients: 4096,
        }
    }
}

/// Why a request was shed instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The client's token bucket is empty: it exceeded its admission
    /// budget. Retry after backoff.
    RateLimited,
    /// The server's in-flight budget is exhausted: global overload.
    Overloaded,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::RateLimited => write!(f, "rate limited (per-client admission budget)"),
            ShedReason::Overloaded => write!(f, "overloaded (in-flight request budget)"),
        }
    }
}

impl std::error::Error for ShedReason {}

struct TokenBucket {
    tokens: f64,
    refilled_micros: u64,
}

/// The controller the engine consults before executing a query.
pub(crate) struct AdmissionController {
    cfg: AdmissionConfig,
    clock: Arc<dyn MonotonicClock>,
    inflight: AtomicUsize,
    buckets: Mutex<HashMap<u64, TokenBucket>>,
}

/// RAII in-flight slot: dropping it (query finished or shed mid-way)
/// releases the slot.
pub(crate) struct InflightPermit<'a> {
    controller: &'a AdmissionController,
}

impl std::fmt::Debug for InflightPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightPermit").finish_non_exhaustive()
    }
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.controller.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl AdmissionController {
    pub(crate) fn new(cfg: AdmissionConfig, clock: Arc<dyn MonotonicClock>) -> Self {
        AdmissionController {
            cfg,
            clock,
            inflight: AtomicUsize::new(0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Currently executing admitted queries (the queue-depth gauge).
    pub(crate) fn queue_depth(&self) -> usize {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Admits or sheds one request from `client_id`. On success the
    /// returned permit holds an in-flight slot until dropped.
    pub(crate) fn admit(&self, client_id: u64) -> Result<InflightPermit<'_>, ShedReason> {
        // Per-client rate policy first: a rate-limited client should see
        // RateLimited even while the server is also saturated.
        let now = self.clock.now_micros();
        {
            let mut buckets = self.buckets.lock();
            if buckets.len() >= self.cfg.max_clients && !buckets.contains_key(&client_id) {
                // Recycle the stalest bucket rather than grow unbounded.
                if let Some(stale) = buckets
                    .iter()
                    .min_by_key(|(_, b)| b.refilled_micros)
                    .map(|(id, _)| *id)
                {
                    buckets.remove(&stale);
                }
            }
            let bucket = buckets.entry(client_id).or_insert(TokenBucket {
                tokens: self.cfg.burst,
                refilled_micros: now,
            });
            let elapsed_s = now.saturating_sub(bucket.refilled_micros) as f64 / 1e6;
            bucket.tokens = (bucket.tokens + elapsed_s * self.cfg.rate_per_s).min(self.cfg.burst);
            bucket.refilled_micros = now;
            if bucket.tokens < 1.0 {
                return Err(ShedReason::RateLimited);
            }
            bucket.tokens -= 1.0;
        }
        // Then the global in-flight budget.
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.cfg.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(ShedReason::Overloaded);
        }
        Ok(InflightPermit { controller: self })
    }

    /// Tokens currently left in `client_id`'s bucket (the configured
    /// burst for a client with no bucket yet). Forensic annotation only
    /// — reads, never refills or spends — so the number is the balance
    /// as of the bucket's last [`Self::admit`] touch.
    pub(crate) fn tokens_remaining(&self, client_id: u64) -> f64 {
        self.buckets
            .lock()
            .get(&client_id)
            .map_or(self.cfg.burst, |b| b.tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_obs::ManualClock;

    fn controller(cfg: AdmissionConfig) -> (AdmissionController, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (AdmissionController::new(cfg, clock.clone()), clock)
    }

    #[test]
    fn burst_then_rate_limit_then_refill() {
        let (ctl, clock) = controller(AdmissionConfig {
            enabled: true,
            rate_per_s: 10.0,
            burst: 3.0,
            ..AdmissionConfig::default()
        });
        for _ in 0..3 {
            assert!(ctl.admit(1).is_ok());
        }
        assert_eq!(
            ctl.admit(1)
                .expect_err("4th request must be shed: burst of 3 is spent"),
            ShedReason::RateLimited
        );
        // 100 ms at 10/s refills exactly one token.
        clock.advance_micros(100_000);
        assert!(ctl.admit(1).is_ok());
        assert_eq!(
            ctl.admit(1)
                .expect_err("refill granted exactly one token, already spent"),
            ShedReason::RateLimited
        );
    }

    #[test]
    fn clients_have_independent_buckets() {
        let (ctl, _clock) = controller(AdmissionConfig {
            enabled: true,
            rate_per_s: 1.0,
            burst: 1.0,
            ..AdmissionConfig::default()
        });
        assert!(ctl.admit(1).is_ok());
        assert_eq!(
            ctl.admit(1)
                .expect_err("client 1's single-token burst is spent"),
            ShedReason::RateLimited
        );
        assert!(
            ctl.admit(2).is_ok(),
            "client 2 must not share client 1's bucket"
        );
    }

    #[test]
    fn inflight_budget_sheds_overload_and_permits_release() {
        let (ctl, _clock) = controller(AdmissionConfig {
            enabled: true,
            rate_per_s: 1000.0,
            burst: 1000.0,
            max_inflight: 2,
            ..AdmissionConfig::default()
        });
        let a = ctl
            .admit(1)
            .expect("1st admit fits the max_inflight=2 budget");
        let b = ctl
            .admit(1)
            .expect("2nd admit fits the max_inflight=2 budget");
        assert_eq!(ctl.queue_depth(), 2);
        assert_eq!(
            ctl.admit(1)
                .expect_err("3rd concurrent admit must exceed max_inflight=2"),
            ShedReason::Overloaded
        );
        drop(a);
        assert_eq!(ctl.queue_depth(), 1);
        assert!(ctl.admit(1).is_ok());
        drop(b);
    }

    #[test]
    fn client_table_stays_bounded() {
        let (ctl, clock) = controller(AdmissionConfig {
            enabled: true,
            rate_per_s: 100.0,
            burst: 10.0,
            max_clients: 4,
            ..AdmissionConfig::default()
        });
        for id in 0..16 {
            clock.advance_micros(1_000);
            assert!(ctl.admit(id).is_ok());
        }
        assert!(ctl.buckets.lock().len() <= 4);
    }
}
