//! The layered query engine behind [`crate::server::CloudServer`].
//!
//! The engine is split by responsibility:
//!
//! * [`plan`] — the **planner**: lowers `(Query, QueryOptions)` into a
//!   typed [`plan::QueryPlan`] (query boxes, filter chain, rank mode,
//!   top-k) and renders `explain()` listings;
//! * [`ops`] — the **operator pipeline**: executes plans against an
//!   epoch snapshot (index scan → delta scan → filter → rank → top-k)
//!   and drives the four read entry points (`query`, `query_nearest`,
//!   `query_batch`, and — via the shared filter stage — subscriptions);
//! * [`write`] — the **write path**: staging, snapshot publishing,
//!   retention, compaction, retraction, and subscription bookkeeping;
//! * [`epoch`] — the immutable read-side state both halves exchange.
//!
//! The facade in `server.rs` owns construction, configuration, and the
//! public API surface; every method there is a thin delegation into
//! this module.

pub(crate) mod epoch;
pub mod fanout;
mod ops;
pub mod plan;
mod write;

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use swag_core::CameraProfile;
use swag_exec::Executor;
use swag_obs::{
    labeled_name, Counter, FlightRecorder, Histogram, MonotonicClock, Registry, Trace,
    DEFAULT_RING_CAPACITY,
};

use crate::query::{Query, QueryOptions};
use crate::server::ServerConfig;
use crate::shard::ShardedFovIndex;
use crate::store::SegmentStore;
use crate::subscribe::SubscriptionSet;

use epoch::{Epoch, SnapshotCore};
use plan::QueryPlan;
use write::Writer;

/// Per-operator metric handles: one stage of the operator pipeline,
/// keyed by the same `OP_*` name its trace spans and `explain` listings
/// use, so a hot operator in `swag top` can be cross-referenced against
/// a captured slow-query waterfall by name.
pub(crate) struct OpStageObs {
    /// Stage wall time per execution.
    pub(crate) micros: Arc<Histogram>,
    /// Rows the stage examined (index items tested, delta records
    /// walked, candidates ranked).
    pub(crate) rows_in: Arc<Histogram>,
    /// Rows the stage produced.
    pub(crate) rows_out: Arc<Histogram>,
}

impl OpStageObs {
    fn from_registry(registry: &Registry, op: &str) -> Self {
        OpStageObs {
            micros: registry.histogram(&labeled_name("swag_server_op_micros", &[("op", op)])),
            rows_in: registry.histogram(&labeled_name("swag_server_op_rows_in", &[("op", op)])),
            rows_out: registry.histogram(&labeled_name("swag_server_op_rows_out", &[("op", op)])),
        }
    }
}

/// Metric handles for an instrumented engine. Handles are resolved once
/// at attach time; recording never touches the registry again.
pub(crate) struct ServerObs {
    pub(crate) lock_wait: Arc<Histogram>,
    pub(crate) index_scan: Arc<Histogram>,
    pub(crate) ranking: Arc<Histogram>,
    pub(crate) query_total: Arc<Histogram>,
    pub(crate) candidates: Arc<Histogram>,
    pub(crate) index_nodes: Arc<Histogram>,
    pub(crate) index_leaves: Arc<Histogram>,
    pub(crate) ingest: Arc<Histogram>,
    pub(crate) segments: Arc<Counter>,
    pub(crate) nearest_rounds: Arc<Counter>,
    pub(crate) publishes: Arc<Counter>,
    pub(crate) snapshot_age: Arc<Histogram>,
    pub(crate) rebuild_micros: Arc<Histogram>,
    pub(crate) delta_size: Arc<Histogram>,
    pub(crate) retention_dropped: Arc<Counter>,
    pub(crate) op_index_scan: OpStageObs,
    pub(crate) op_delta_scan: OpStageObs,
    pub(crate) op_ranking: OpStageObs,
    /// Final-result split: hits served from the published snapshot's
    /// index vs. from the staged delta.
    pub(crate) hits_index: Arc<Counter>,
    pub(crate) hits_delta: Arc<Counter>,
    /// Time shards the index scan fanned out to, per query.
    pub(crate) shards_probed: Arc<Histogram>,
    /// Adaptive fan-out decisions: queries whose index scan ran serially
    /// vs. on the pool (see [`fanout::FanoutDecision`]).
    pub(crate) fanout_serial: Arc<Counter>,
    pub(crate) fanout_parallel: Arc<Counter>,
    pub(crate) trace: Trace,
}

impl ServerObs {
    fn from_registry(registry: &Registry) -> Self {
        registry.set_help(
            "swag_server_op_micros",
            "Operator-pipeline stage wall time per query, microseconds.",
        );
        registry.set_help(
            "swag_server_op_rows_in",
            "Rows examined per stage execution.",
        );
        registry.set_help(
            "swag_server_op_rows_out",
            "Rows produced per stage execution.",
        );
        registry.set_help(
            "swag_server_hits_total",
            "Filtered hits by origin: published snapshot index vs staged delta.",
        );
        registry.set_help(
            "swag_server_shards_probed",
            "Time shards the index scan fanned out to, per query.",
        );
        registry.set_help(
            "swag_server_fanout_total",
            "Index-scan fan-out decisions by mode (adaptive cost model).",
        );
        ServerObs {
            lock_wait: registry.histogram("swag_server_query_lock_wait_micros"),
            index_scan: registry.histogram("swag_server_query_index_scan_micros"),
            ranking: registry.histogram("swag_server_query_ranking_micros"),
            query_total: registry.histogram("swag_server_query_micros"),
            candidates: registry.histogram("swag_server_query_candidates"),
            index_nodes: registry.histogram("swag_server_index_nodes_visited"),
            index_leaves: registry.histogram("swag_server_index_leaves_scanned"),
            ingest: registry.histogram("swag_server_ingest_micros"),
            segments: registry.counter("swag_server_segments_ingested_total"),
            nearest_rounds: registry.counter("swag_server_nearest_rounds_total"),
            publishes: registry.counter("swag_server_publishes_total"),
            snapshot_age: registry.histogram("swag_server_snapshot_age_micros"),
            rebuild_micros: registry.histogram("swag_server_snapshot_rebuild_micros"),
            delta_size: registry.histogram("swag_server_snapshot_delta_size"),
            retention_dropped: registry.counter("swag_server_retention_dropped_total"),
            op_index_scan: OpStageObs::from_registry(registry, plan::OP_INDEX_SCAN),
            op_delta_scan: OpStageObs::from_registry(registry, plan::OP_DELTA_SCAN),
            op_ranking: OpStageObs::from_registry(registry, plan::OP_RANKING),
            hits_index: registry
                .counter(&labeled_name("swag_server_hits_total", &[("src", "index")])),
            hits_delta: registry
                .counter(&labeled_name("swag_server_hits_total", &[("src", "delta")])),
            shards_probed: registry.histogram("swag_server_shards_probed"),
            fanout_serial: registry.counter(&labeled_name(
                "swag_server_fanout_total",
                &[("mode", "serial")],
            )),
            fanout_parallel: registry.counter(&labeled_name(
                "swag_server_fanout_total",
                &[("mode", "parallel")],
            )),
            trace: Trace::new(256),
        }
    }
}

/// The layered engine: all server state, shared by the read pipeline
/// ([`ops`]) and the write path ([`write`]). The `CloudServer` facade
/// owns exactly one of these.
pub(crate) struct Engine {
    /// Readers clone the `Arc` under a momentary read lock; the lock is
    /// never held while scanning or ranking.
    pub(crate) epoch: RwLock<Arc<Epoch>>,
    pub(crate) writer: Mutex<Writer>,
    pub(crate) config: ServerConfig,
    pub(crate) cam: CameraProfile,
    pub(crate) clock: Arc<dyn MonotonicClock>,
    /// Work-stealing pool for shard fan-out, publish rebuilds, and query
    /// batches.
    pub(crate) exec: Executor,
    pub(crate) obs: Option<ServerObs>,
    /// Causal-tracing flight recorder for the query/ingest/publish
    /// paths. Disabled by default: each span site then costs one relaxed
    /// load.
    pub(crate) recorder: Arc<FlightRecorder>,
    pub(crate) batches: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) query_micros: AtomicU64,
}

impl Engine {
    /// Builds an engine with the given tuning and clock.
    pub(crate) fn new(
        cam: CameraProfile,
        config: ServerConfig,
        clock: Arc<dyn MonotonicClock>,
    ) -> Self {
        let recorder = Arc::new(FlightRecorder::with_clock(
            DEFAULT_RING_CAPACITY,
            clock.clone(),
        ));
        if let Some(t) = config.slow_query_micros {
            recorder.set_slow_threshold_micros(t);
        }
        let mut index = ShardedFovIndex::new(config.shard_width_s, config.index);
        index.set_recorder(recorder.clone());
        let core = Arc::new(SnapshotCore {
            store: SegmentStore::new(),
            index,
            published_at_micros: clock.now_micros(),
        });
        Engine {
            epoch: RwLock::new(Arc::new(Epoch {
                core: core.clone(),
                delta: Arc::from(Vec::new()),
                delta_len: 0,
            })),
            writer: Mutex::new(Writer {
                core,
                delta: Vec::new(),
                delta_len: 0,
                subscriptions: SubscriptionSet::new(),
                max_t_end: f64::NEG_INFINITY,
            }),
            config,
            cam,
            clock,
            exec: Executor::global().clone(),
            obs: None,
            recorder,
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            query_micros: AtomicU64::new(0),
        }
    }

    /// Wires the ingest, query, and publish paths to `registry` and
    /// re-publishes the core with shard metrics attached so fan-out is
    /// recorded from the next query on.
    pub(crate) fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(ServerObs::from_registry(registry));
        self.exec.attach_observability(registry);
        let mut w = self.writer.lock();
        let mut index = w.core.index.clone();
        index.attach_observability(registry);
        let core = Arc::new(SnapshotCore {
            store: w.core.store.clone(),
            index,
            published_at_micros: w.core.published_at_micros,
        });
        w.core = core.clone();
        let delta = Arc::from(w.delta.as_slice());
        let delta_len = w.delta_len;
        drop(w);
        *self.epoch.write() = Arc::new(Epoch {
            core,
            delta,
            delta_len,
        });
    }

    /// Replaces the flight recorder, applying the configured slow-query
    /// threshold and re-issuing the published snapshot so shard probes
    /// record into it from the next query on.
    pub(crate) fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        if let Some(t) = self.config.slow_query_micros {
            recorder.set_slow_threshold_micros(t);
        }
        self.recorder = recorder.clone();
        let mut w = self.writer.lock();
        let mut index = w.core.index.clone();
        index.set_recorder(recorder);
        let core = Arc::new(SnapshotCore {
            store: w.core.store.clone(),
            index,
            published_at_micros: w.core.published_at_micros,
        });
        w.core = core.clone();
        let delta = Arc::from(w.delta.as_slice());
        let delta_len = w.delta_len;
        drop(w);
        *self.epoch.write() = Arc::new(Epoch {
            core,
            delta,
            delta_len,
        });
    }

    /// Compiles the plan for a request and renders it against the
    /// current snapshot: boxes, shards probed, the fan-out decision the
    /// cost model would take, pending delta, filter chain, rank mode,
    /// and the operator pipeline.
    pub(crate) fn explain(&self, query: &Query, opts: &QueryOptions) -> String {
        let plan = QueryPlan::compile(query, opts);
        let epoch = self.epoch.read().clone();
        let decision = fanout::FanoutDecision::decide(
            &epoch.core.index,
            plan.query.t_start,
            plan.query.t_end,
            &self.exec,
            self.config.fanout,
        );
        plan.explain_against(&epoch.core.index, epoch.delta_len, &decision)
    }

    /// Computes point-in-time gauges into `registry`: epoch snapshot age,
    /// staged-delta size, compiled-plan count, and per-time-shard entry
    /// counts. These cannot be recorded from the hot path (age is a
    /// property of *now*, not of any event), so the ops surface calls
    /// this right before each scrape/rotation.
    pub(crate) fn refresh_gauges(&self, registry: &Registry) {
        registry.set_help(
            "swag_server_epoch_age_micros",
            "Age of the published snapshot at scrape time.",
        );
        registry.set_help(
            "swag_server_staged_delta",
            "Records staged in the delta, waiting for the next publish.",
        );
        registry.set_help(
            "swag_server_compiled_plans",
            "Compiled standing-query plans held by the subscription set.",
        );
        registry.set_help(
            "swag_server_shard_entries",
            "Indexed entries per live time shard (0 after the shard expires).",
        );
        let epoch = self.epoch.read().clone();
        let now = self.clock.now_micros();
        registry.gauge("swag_server_epoch_age_micros").set(
            now.saturating_sub(epoch.core.published_at_micros)
                .min(i64::MAX as u64) as i64,
        );
        registry
            .gauge("swag_server_staged_delta")
            .set(epoch.delta_len as i64);
        let plans = self.writer.lock().subscriptions.compiled_plans();
        registry
            .gauge("swag_server_compiled_plans")
            .set(plans as i64);
        // Zero every previously exported shard gauge first so expired
        // shards read 0 instead of their last live count forever.
        for name in registry.names() {
            if name.starts_with("swag_server_shard_entries{") {
                registry.gauge(&name).set(0);
            }
        }
        for (bucket, entries) in epoch.core.index.shard_sizes() {
            registry
                .gauge(&labeled_name(
                    "swag_server_shard_entries",
                    &[("shard", &bucket.to_string())],
                ))
                .set(entries as i64);
        }
    }
}
