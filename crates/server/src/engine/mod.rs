//! The layered query engine behind [`crate::server::CloudServer`].
//!
//! The engine is split by responsibility:
//!
//! * [`plan`] — the **planner**: lowers `(Query, QueryOptions)` into a
//!   typed [`plan::QueryPlan`] (query boxes, filter chain, rank mode,
//!   top-k) and renders `explain()` listings;
//! * [`ops`] — the **operator pipeline**: executes plans against an
//!   epoch snapshot (index scan → delta scan → filter → rank → top-k)
//!   and drives the four read entry points (`query`, `query_nearest`,
//!   `query_batch`, and — via the shared filter stage — subscriptions);
//! * [`write`] — the **write path**: staging, snapshot publishing,
//!   retention, compaction, retraction, and subscription bookkeeping;
//! * [`epoch`] — the immutable read-side state both halves exchange.
//!
//! The facade in `server.rs` owns construction, configuration, and the
//! public API surface; every method there is a thin delegation into
//! this module.

pub mod admission;
pub(crate) mod analyze;
pub mod cache;
pub(crate) mod epoch;
pub mod fanout;
pub mod forensics;
mod ops;
pub mod plan;
mod write;

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use swag_core::CameraProfile;
use swag_exec::Executor;
use swag_obs::{
    labeled_name, Counter, FlightRecorder, Histogram, MonotonicClock, Registry, Trace,
    DEFAULT_RING_CAPACITY,
};

use crate::query::{Query, QueryOptions};
use crate::server::ServerConfig;
use crate::shard::ShardedFovIndex;
use crate::store::SegmentStore;
use crate::subscribe::SubscriptionSet;

use admission::AdmissionController;
use cache::ResultCache;
use epoch::{CacheStamp, Epoch, SnapshotCore};
use forensics::QueryEventLog;
use plan::QueryPlan;
use write::Writer;

/// Per-operator metric handles: one stage of the operator pipeline,
/// keyed by the same `OP_*` name its trace spans and `explain` listings
/// use, so a hot operator in `swag top` can be cross-referenced against
/// a captured slow-query waterfall by name.
pub(crate) struct OpStageObs {
    /// Stage wall time per execution.
    pub(crate) micros: Arc<Histogram>,
    /// Rows the stage examined (index items tested, delta records
    /// walked, candidates ranked).
    pub(crate) rows_in: Arc<Histogram>,
    /// Rows the stage produced.
    pub(crate) rows_out: Arc<Histogram>,
}

impl OpStageObs {
    fn from_registry(registry: &Registry, op: &str) -> Self {
        OpStageObs {
            micros: registry.histogram(&labeled_name("swag_server_op_micros", &[("op", op)])),
            rows_in: registry.histogram(&labeled_name("swag_server_op_rows_in", &[("op", op)])),
            rows_out: registry.histogram(&labeled_name("swag_server_op_rows_out", &[("op", op)])),
        }
    }
}

/// Metric handles for an instrumented engine. Handles are resolved once
/// at attach time; recording never touches the registry again.
pub(crate) struct ServerObs {
    pub(crate) lock_wait: Arc<Histogram>,
    pub(crate) index_scan: Arc<Histogram>,
    pub(crate) ranking: Arc<Histogram>,
    pub(crate) query_total: Arc<Histogram>,
    pub(crate) candidates: Arc<Histogram>,
    pub(crate) index_nodes: Arc<Histogram>,
    pub(crate) index_leaves: Arc<Histogram>,
    pub(crate) ingest: Arc<Histogram>,
    pub(crate) segments: Arc<Counter>,
    pub(crate) nearest_rounds: Arc<Counter>,
    pub(crate) publishes: Arc<Counter>,
    pub(crate) snapshot_age: Arc<Histogram>,
    pub(crate) rebuild_micros: Arc<Histogram>,
    pub(crate) delta_size: Arc<Histogram>,
    pub(crate) retention_dropped: Arc<Counter>,
    pub(crate) op_index_scan: OpStageObs,
    pub(crate) op_delta_scan: OpStageObs,
    pub(crate) op_cold_scan: OpStageObs,
    pub(crate) op_ranking: OpStageObs,
    /// Final-result split: hits served from the published snapshot's
    /// index vs. from the staged delta vs. from on-disk cold runs.
    pub(crate) hits_index: Arc<Counter>,
    pub(crate) hits_delta: Arc<Counter>,
    pub(crate) hits_cold: Arc<Counter>,
    /// Time shards the index scan fanned out to, per query.
    pub(crate) shards_probed: Arc<Histogram>,
    /// Adaptive fan-out decisions: queries whose index scan ran serially
    /// vs. on the pool (see [`fanout::FanoutDecision`]).
    pub(crate) fanout_serial: Arc<Counter>,
    pub(crate) fanout_parallel: Arc<Counter>,
    /// Result-cache traffic: repeats answered from the cache vs.
    /// recomputed (misses include lazily invalidated entries), plus
    /// capacity evictions.
    pub(crate) cache_hits: Arc<Counter>,
    pub(crate) cache_misses: Arc<Counter>,
    pub(crate) cache_evictions: Arc<Counter>,
    /// Admission outcomes: served vs. shed by reason.
    pub(crate) admitted: Arc<Counter>,
    pub(crate) shed_rate_limited: Arc<Counter>,
    pub(crate) shed_overloaded: Arc<Counter>,
    /// Wide-event query log traffic: events recorded into the rings vs.
    /// retained by the tail sampler.
    pub(crate) events_pushed: Arc<Counter>,
    pub(crate) events_kept: Arc<Counter>,
    pub(crate) trace: Trace,
}

impl ServerObs {
    fn from_registry(registry: &Registry) -> Self {
        registry.set_help(
            "swag_server_op_micros",
            "Operator-pipeline stage wall time per query, microseconds.",
        );
        registry.set_help(
            "swag_server_op_rows_in",
            "Rows examined per stage execution.",
        );
        registry.set_help(
            "swag_server_op_rows_out",
            "Rows produced per stage execution.",
        );
        registry.set_help(
            "swag_server_hits_total",
            "Filtered hits by origin: published snapshot index vs staged delta.",
        );
        registry.set_help(
            "swag_server_shards_probed",
            "Time shards the index scan fanned out to, per query.",
        );
        registry.set_help(
            "swag_server_fanout_total",
            "Index-scan fan-out decisions by mode (adaptive cost model).",
        );
        registry.set_help(
            "swag_server_cache_hits_total",
            "Queries answered from the plan-keyed result cache.",
        );
        registry.set_help(
            "swag_server_cache_misses_total",
            "Cacheable queries recomputed (cold, invalidated, or collided).",
        );
        registry.set_help(
            "swag_server_cache_evictions_total",
            "Result-cache entries evicted by capacity pressure.",
        );
        registry.set_help(
            "swag_server_admitted_total",
            "Queries admitted past admission control.",
        );
        registry.set_help(
            "swag_server_shed_total",
            "Queries shed by admission control, by reason.",
        );
        registry.set_help(
            "swag_server_events_total",
            "Wide query events recorded into the forensic rings (stage=pushed) and retained by the tail sampler (stage=kept).",
        );
        ServerObs {
            lock_wait: registry.histogram("swag_server_query_lock_wait_micros"),
            index_scan: registry.histogram("swag_server_query_index_scan_micros"),
            ranking: registry.histogram("swag_server_query_ranking_micros"),
            query_total: registry.histogram("swag_server_query_micros"),
            candidates: registry.histogram("swag_server_query_candidates"),
            index_nodes: registry.histogram("swag_server_index_nodes_visited"),
            index_leaves: registry.histogram("swag_server_index_leaves_scanned"),
            ingest: registry.histogram("swag_server_ingest_micros"),
            segments: registry.counter("swag_server_segments_ingested_total"),
            nearest_rounds: registry.counter("swag_server_nearest_rounds_total"),
            publishes: registry.counter("swag_server_publishes_total"),
            snapshot_age: registry.histogram("swag_server_snapshot_age_micros"),
            rebuild_micros: registry.histogram("swag_server_snapshot_rebuild_micros"),
            delta_size: registry.histogram("swag_server_snapshot_delta_size"),
            retention_dropped: registry.counter("swag_server_retention_dropped_total"),
            op_index_scan: OpStageObs::from_registry(registry, plan::OP_INDEX_SCAN),
            op_delta_scan: OpStageObs::from_registry(registry, plan::OP_DELTA_SCAN),
            op_cold_scan: OpStageObs::from_registry(registry, plan::OP_COLD_SCAN),
            op_ranking: OpStageObs::from_registry(registry, plan::OP_RANKING),
            hits_index: registry
                .counter(&labeled_name("swag_server_hits_total", &[("src", "index")])),
            hits_delta: registry
                .counter(&labeled_name("swag_server_hits_total", &[("src", "delta")])),
            hits_cold: registry
                .counter(&labeled_name("swag_server_hits_total", &[("src", "cold")])),
            shards_probed: registry.histogram("swag_server_shards_probed"),
            fanout_serial: registry.counter(&labeled_name(
                "swag_server_fanout_total",
                &[("mode", "serial")],
            )),
            fanout_parallel: registry.counter(&labeled_name(
                "swag_server_fanout_total",
                &[("mode", "parallel")],
            )),
            cache_hits: registry.counter("swag_server_cache_hits_total"),
            cache_misses: registry.counter("swag_server_cache_misses_total"),
            cache_evictions: registry.counter("swag_server_cache_evictions_total"),
            admitted: registry.counter("swag_server_admitted_total"),
            shed_rate_limited: registry.counter(&labeled_name(
                "swag_server_shed_total",
                &[("reason", "rate_limited")],
            )),
            shed_overloaded: registry.counter(&labeled_name(
                "swag_server_shed_total",
                &[("reason", "overloaded")],
            )),
            events_pushed: registry.counter(&labeled_name(
                "swag_server_events_total",
                &[("stage", "pushed")],
            )),
            events_kept: registry.counter(&labeled_name(
                "swag_server_events_total",
                &[("stage", "kept")],
            )),
            trace: Trace::new(256),
        }
    }
}

/// The layered engine: all server state, shared by the read pipeline
/// ([`ops`]) and the write path ([`write`]). The `CloudServer` facade
/// owns exactly one of these.
pub(crate) struct Engine {
    /// Readers clone the `Arc` under a momentary read lock; the lock is
    /// never held while scanning or ranking.
    pub(crate) epoch: RwLock<Arc<Epoch>>,
    pub(crate) writer: Mutex<Writer>,
    pub(crate) config: ServerConfig,
    pub(crate) cam: CameraProfile,
    pub(crate) clock: Arc<dyn MonotonicClock>,
    /// Work-stealing pool for shard fan-out, publish rebuilds, and query
    /// batches.
    pub(crate) exec: Executor,
    pub(crate) obs: Option<ServerObs>,
    /// Plan-keyed result cache; `None` when disabled (capacity 0, the
    /// default) so the uncached hot path pays nothing.
    pub(crate) cache: Option<ResultCache>,
    /// Admission controller; `None` when disabled (the default) —
    /// `query_admitted` then admits unconditionally.
    pub(crate) admission: Option<AdmissionController>,
    /// Wide-event query log; `None` when disabled (the default), so the
    /// query path pays one branch and reads no clock for forensics.
    pub(crate) events: Option<Arc<QueryEventLog>>,
    /// Durable storage (segment WAL + incremental snapshots + cold
    /// tier); `None` for memory-only servers (the default) so the hot
    /// paths pay one branch each. Set by `CloudServer::open` after
    /// recovery replays through the normal ingest path.
    pub(crate) durability: Option<Arc<swag_store::Durability>>,
    /// Causal-tracing flight recorder for the query/ingest/publish
    /// paths. Disabled by default: each span site then costs one relaxed
    /// load.
    pub(crate) recorder: Arc<FlightRecorder>,
    pub(crate) batches: AtomicU64,
    pub(crate) queries: AtomicU64,
    pub(crate) query_micros: AtomicU64,
}

impl Engine {
    /// Builds an engine with the given tuning and clock.
    pub(crate) fn new(
        cam: CameraProfile,
        config: ServerConfig,
        clock: Arc<dyn MonotonicClock>,
    ) -> Self {
        let recorder = Arc::new(FlightRecorder::with_clock(
            DEFAULT_RING_CAPACITY,
            clock.clone(),
        ));
        if let Some(t) = config.slow_query_micros {
            recorder.set_slow_threshold_micros(t);
        }
        let mut index = ShardedFovIndex::new(config.shard_width_s, config.index);
        index.set_recorder(recorder.clone());
        let core = Arc::new(SnapshotCore {
            store: SegmentStore::new(),
            index,
            published_at_micros: clock.now_micros(),
        });
        let writer = Writer {
            core,
            delta: Vec::new(),
            delta_len: 0,
            subscriptions: SubscriptionSet::new(),
            max_t_end: f64::NEG_INFINITY,
            stamp: CacheStamp::initial(),
        };
        let epoch = writer.make_epoch();
        Engine {
            epoch: RwLock::new(epoch),
            writer: Mutex::new(writer),
            config,
            cam,
            clock: clock.clone(),
            exec: Executor::global().clone(),
            obs: None,
            cache: ResultCache::new(config.cache, config.shard_width_s),
            admission: config
                .admission
                .enabled
                .then(|| AdmissionController::new(config.admission, clock)),
            events: config
                .events
                .enabled
                .then(|| Arc::new(QueryEventLog::new(config.events))),
            durability: None,
            recorder,
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            query_micros: AtomicU64::new(0),
        }
    }

    /// Wires the ingest, query, and publish paths to `registry` and
    /// re-publishes the core with shard metrics attached so fan-out is
    /// recorded from the next query on.
    pub(crate) fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(ServerObs::from_registry(registry));
        self.exec.attach_observability(registry);
        if let Some(durability) = &self.durability {
            durability.attach_observability(registry);
        }
        let mut w = self.writer.lock();
        let mut index = w.core.index.clone();
        index.attach_observability(registry);
        let core = Arc::new(SnapshotCore {
            store: w.core.store.clone(),
            index,
            published_at_micros: w.core.published_at_micros,
        });
        w.core = core;
        let epoch = w.make_epoch();
        drop(w);
        *self.epoch.write() = epoch;
    }

    /// Replaces the flight recorder, applying the configured slow-query
    /// threshold and re-issuing the published snapshot so shard probes
    /// record into it from the next query on.
    pub(crate) fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        if let Some(t) = self.config.slow_query_micros {
            recorder.set_slow_threshold_micros(t);
        }
        self.recorder = recorder.clone();
        let mut w = self.writer.lock();
        let mut index = w.core.index.clone();
        index.set_recorder(recorder);
        let core = Arc::new(SnapshotCore {
            store: w.core.store.clone(),
            index,
            published_at_micros: w.core.published_at_micros,
        });
        w.core = core;
        let epoch = w.make_epoch();
        drop(w);
        *self.epoch.write() = epoch;
    }

    /// Compiles the plan for a request and renders it against the
    /// current snapshot: boxes, shards probed, the fan-out decision the
    /// cost model would take, pending delta, filter chain, rank mode,
    /// and the operator pipeline.
    pub(crate) fn explain(&self, query: &Query, opts: &QueryOptions) -> String {
        let plan = QueryPlan::compile(query, opts);
        let epoch = self.epoch.read().clone();
        let decision = fanout::FanoutDecision::decide(
            &epoch.core.index,
            plan.query.t_start,
            plan.query.t_end,
            &self.exec,
            self.config.fanout,
        );
        let span = cache::bucket_span_len(
            self.config.shard_width_s,
            plan.query.t_start,
            plan.query.t_end,
        );
        let mut cache_line = format!("fingerprint {:#018x}, ", plan.fingerprint());
        if span <= cache::CACHE_MAX_BUCKET_SPAN {
            use std::fmt::Write as _;
            let _ = write!(cache_line, "eligible (spans {span} shard buckets)");
        } else {
            use std::fmt::Write as _;
            let _ = write!(
                cache_line,
                "ineligible (spans {span} shard buckets > cap {})",
                cache::CACHE_MAX_BUCKET_SPAN
            );
        }
        if self.cache.is_none() {
            cache_line.push_str(", cache off");
        }
        let cold_line = self.cold_line(&plan);
        plan.explain_against(
            &epoch.core.index,
            epoch.delta_len,
            &decision,
            &cache_line,
            cold_line.as_deref(),
        )
    }

    /// Whether queries can reach the cold tier: a durable server with at
    /// least one demoted run on disk. Memory-only servers (the default)
    /// answer `false` from one branch.
    pub(crate) fn has_cold(&self) -> bool {
        self.durability
            .as_ref()
            .is_some_and(|d| !d.cold().is_empty())
    }

    /// Renders the explain cold-tier line for `plan`: how many of the
    /// on-disk cold runs its window could touch. `None` when the plan
    /// cannot reach cold data (then explain output is byte-identical to
    /// a memory-only server's).
    pub(crate) fn cold_line(&self, plan: &QueryPlan) -> Option<String> {
        let durability = self.durability.as_ref()?;
        let total = durability.cold().runs();
        if total == 0 {
            return None;
        }
        let touched = durability
            .cold()
            .overlapping(plan.query.t_end, durability.width_s())
            .len();
        Some(format!(
            "{touched} of {total} cold runs overlap the window ({})",
            plan::OP_COLD_SCAN
        ))
    }

    /// Computes point-in-time gauges into `registry`: epoch snapshot age,
    /// staged-delta size, compiled-plan count, and per-time-shard entry
    /// counts. These cannot be recorded from the hot path (age is a
    /// property of *now*, not of any event), so the ops surface calls
    /// this right before each scrape/rotation.
    pub(crate) fn refresh_gauges(&self, registry: &Registry) {
        registry.set_help(
            "swag_server_epoch_age_micros",
            "Age of the published snapshot at scrape time.",
        );
        registry.set_help(
            "swag_server_staged_delta",
            "Records staged in the delta, waiting for the next publish.",
        );
        registry.set_help(
            "swag_server_compiled_plans",
            "Compiled standing-query plans held by the subscription set.",
        );
        registry.set_help(
            "swag_server_shard_entries",
            "Indexed entries per live time shard (0 after the shard expires).",
        );
        registry.set_help(
            "swag_server_cache_entries",
            "Live entries in the plan-keyed result cache.",
        );
        registry.set_help(
            "swag_server_queue_depth",
            "Admitted queries currently executing (bounded by max_inflight).",
        );
        registry
            .gauge("swag_server_cache_entries")
            .set(self.cache.as_ref().map_or(0, |c| c.len()) as i64);
        registry
            .gauge("swag_server_queue_depth")
            .set(self.admission.as_ref().map_or(0, |a| a.queue_depth()) as i64);
        let epoch = self.epoch.read().clone();
        let now = self.clock.now_micros();
        registry.gauge("swag_server_epoch_age_micros").set(
            now.saturating_sub(epoch.core.published_at_micros)
                .min(i64::MAX as u64) as i64,
        );
        registry
            .gauge("swag_server_staged_delta")
            .set(epoch.delta_len as i64);
        let plans = self.writer.lock().subscriptions.compiled_plans();
        registry
            .gauge("swag_server_compiled_plans")
            .set(plans as i64);
        // Zero every previously exported shard gauge first so expired
        // shards read 0 instead of their last live count forever.
        for name in registry.names() {
            if name.starts_with("swag_server_shard_entries{") {
                registry.gauge(&name).set(0);
            }
        }
        for (bucket, entries) in epoch.core.index.shard_sizes() {
            registry
                .gauge(&labeled_name(
                    "swag_server_shard_entries",
                    &[("shard", &bucket.to_string())],
                ))
                .set(entries as i64);
        }
        if let Some(durability) = &self.durability {
            registry.set_help(
                "swag_store_wal_lag_bytes",
                "WAL bytes written but not yet fsynced (durability lag).",
            );
            registry.set_help(
                "swag_store_snapshot_age_micros",
                "Age of the last completed incremental snapshot (-1 = never).",
            );
            registry.set_help("swag_store_cold_runs", "Demoted cold runs on disk.");
            registry.set_help(
                "swag_store_cold_records",
                "Records reachable through the cold tier.",
            );
            let stats = durability.stats();
            registry
                .gauge("swag_store_wal_lag_bytes")
                .set(stats.wal_lag_bytes.min(i64::MAX as u64) as i64);
            registry.gauge("swag_store_snapshot_age_micros").set(
                stats
                    .last_snapshot_age_micros
                    .map_or(-1, |age| age.min(i64::MAX as u64) as i64),
            );
            registry
                .gauge("swag_store_cold_runs")
                .set(stats.cold_runs as i64);
            registry
                .gauge("swag_store_cold_records")
                .set(stats.cold_segments.min(i64::MAX as u64) as i64);
        }
    }
}
