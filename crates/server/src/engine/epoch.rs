//! The immutable read-side state: snapshot core + pending delta.
//!
//! What queries see is an **epoch**: one `Arc` clone of it answers a
//! whole query without holding a lock. The core is the published
//! `(store, index)` snapshot; the delta is the list of frozen per-ingest
//! slices staged since that snapshot, each record carrying its
//! pre-computed index box so the per-query delta scan is a pure `Aabb`
//! intersection test.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::shard::ShardedFovIndex;
use crate::store::{SegmentRecord, SegmentStore};

/// An immutable published `(store, index)` snapshot.
pub(crate) struct SnapshotCore {
    pub(crate) store: SegmentStore,
    pub(crate) index: ShardedFovIndex,
    pub(crate) published_at_micros: u64,
}

/// The result cache's view of "has anything this plan could see
/// changed?" — carried immutably on every epoch, bumped by the writer.
///
/// * `shard_versions` maps a time-shard bucket to a version that the
///   writer bumps whenever a publish folds records into that bucket,
///   retention drops it, or a retraction removes records from it. A
///   cached entry stores the versions of the buckets its window spans
///   and stays valid across publishes that only touch *other* buckets —
///   the issue's "cold shards keep their entries" property.
/// * `delta_gen` increments each time the pending delta is folded (its
///   records move into the core and the delta resets), so entries can
///   tell "the delta grew since I was stored" (check only the new
///   records) from "the delta was replaced" (re-check all of it).
/// * `global_gen` increments on whole-world changes that per-bucket
///   versions cannot describe: store compaction (dense [`crate::store::SegmentId`]s
///   are reassigned, so every cached hit list is stale) and bootstrap.
#[derive(Debug, Clone)]
pub(crate) struct CacheStamp {
    pub(crate) global_gen: u64,
    pub(crate) delta_gen: u64,
    pub(crate) shard_versions: Arc<BTreeMap<i64, u64>>,
}

impl CacheStamp {
    pub(crate) fn initial() -> Self {
        CacheStamp {
            global_gen: 0,
            delta_gen: 0,
            shard_versions: Arc::new(BTreeMap::new()),
        }
    }
}

/// One pending record plus its pre-computed index box, so the per-query
/// delta scan is a pure `Aabb` intersection test.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeltaRecord {
    pub(crate) rec: SegmentRecord,
    pub(crate) bbox: swag_rtree::Aabb<3>,
}

/// What queries see: one `Arc` clone of this answers a whole query.
/// `delta` holds records ingested since `core` was published, as a list
/// of frozen per-ingest slices — republishing after a write bumps one
/// refcount per slice instead of copying every pending record. Queries
/// scan it linearly (it is bounded by the publish threshold).
pub(crate) struct Epoch {
    pub(crate) core: Arc<SnapshotCore>,
    pub(crate) delta: Arc<[Arc<[DeltaRecord]>]>,
    pub(crate) delta_len: usize,
    pub(crate) stamp: CacheStamp,
}

impl Epoch {
    pub(crate) fn delta_records(&self) -> impl Iterator<Item = &DeltaRecord> {
        self.delta.iter().flat_map(|batch| batch.iter())
    }

    /// Delta records at flat position `start` onward. Within one
    /// `delta_gen` the delta is append-only (slices are frozen), so a
    /// cache entry validated at length `n` only needs records `n..`.
    pub(crate) fn delta_records_from(&self, start: usize) -> impl Iterator<Item = &DeltaRecord> {
        self.delta_records().skip(start)
    }
}
