//! The immutable read-side state: snapshot core + pending delta.
//!
//! What queries see is an **epoch**: one `Arc` clone of it answers a
//! whole query without holding a lock. The core is the published
//! `(store, index)` snapshot; the delta is the list of frozen per-ingest
//! slices staged since that snapshot, each record carrying its
//! pre-computed index box so the per-query delta scan is a pure `Aabb`
//! intersection test.

use std::sync::Arc;

use crate::shard::ShardedFovIndex;
use crate::store::{SegmentRecord, SegmentStore};

/// An immutable published `(store, index)` snapshot.
pub(crate) struct SnapshotCore {
    pub(crate) store: SegmentStore,
    pub(crate) index: ShardedFovIndex,
    pub(crate) published_at_micros: u64,
}

/// One pending record plus its pre-computed index box, so the per-query
/// delta scan is a pure `Aabb` intersection test.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeltaRecord {
    pub(crate) rec: SegmentRecord,
    pub(crate) bbox: swag_rtree::Aabb<3>,
}

/// What queries see: one `Arc` clone of this answers a whole query.
/// `delta` holds records ingested since `core` was published, as a list
/// of frozen per-ingest slices — republishing after a write bumps one
/// refcount per slice instead of copying every pending record. Queries
/// scan it linearly (it is bounded by the publish threshold).
pub(crate) struct Epoch {
    pub(crate) core: Arc<SnapshotCore>,
    pub(crate) delta: Arc<[Arc<[DeltaRecord]>]>,
    pub(crate) delta_len: usize,
}

impl Epoch {
    pub(crate) fn delta_records(&self) -> impl Iterator<Item = &DeltaRecord> {
        self.delta.iter().flat_map(|batch| batch.iter())
    }
}
