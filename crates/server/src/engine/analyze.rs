//! The instrumented executor behind EXPLAIN ANALYZE and the wide-event
//! log: a measured twin of the normal operator pipeline plus the
//! annotated-report rendering.
//!
//! The event *data model* (the 32-word [`QueryEvent`], its wire format,
//! the tail-sampling [`QueryEventLog`](super::forensics::QueryEventLog))
//! lives in [`super::forensics`]; this module is the execution side:
//! `execute_plan_instrumented` runs the identical operator calls in
//! identical order to `super::ops` (byte-identity pinned by an
//! equivalence test), measuring every stage, and `query_analyzed`
//! renders the plan tree annotated with what actually happened.
//!
//! The instrumented executor deliberately *duplicates* the pipeline of
//! [`super::ops`] instead of refactoring it behind flags: the normal hot
//! path must stay byte-and-branch identical to the pre-forensics engine
//! (the `obs_overhead` guard times it against an uninstrumented
//! replica), and the duplication is what an equivalence test can hold
//! still.

use swag_exec::Executor;
use swag_rtree::SearchStats;

use crate::query::{Query, QueryOptions};
use crate::ranking::{collect_hits, hit_for, rank_hits, SearchHit};
use crate::server::AUTO_THRESHOLD_INTERVAL;

use super::admission::ShedReason;
use super::cache;
use super::epoch::{DeltaRecord, Epoch};
use super::fanout::FanoutDecision;
use super::forensics::{result_digest, CacheOutcome, QueryEvent, QueryOutcome};
use super::plan::{
    PlanKey, QueryPlan, OP_COLD_SCAN, OP_DELTA_SCAN, OP_INDEX_SCAN, OP_QUERY, OP_RANKING,
};
use super::Engine;
use std::sync::atomic::Ordering;

/// What the cold-tier scan measured during one analyzed execution.
///
/// Kept out of [`QueryEvent`] so the wide-event wire format (a pinned
/// 32-word layout) is untouched by the durability layer; EXPLAIN
/// ANALYZE carries it alongside instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColdScanMeasure {
    /// Wall time spent scanning cold runs.
    pub micros: u64,
    /// Records read across all overlapping cold runs.
    pub rows_in: u64,
    /// Hits the cold scan contributed after filtering.
    pub hits: u64,
}

/// The annotated output of one analyzed execution.
pub struct AnalyzeReport {
    /// Everything measured, as the wide event records it.
    pub event: QueryEvent,
    /// Cold-tier scan measurements, when demoted shards were reachable.
    pub cold: Option<ColdScanMeasure>,
    /// The resolved plan listing (`swag explain` format) the
    /// annotations attach to.
    pub plan_text: String,
}

impl AnalyzeReport {
    /// Renders the annotated plan tree: the resolved plan, the concrete
    /// admission decision and epoch stamp, and the measured pipeline —
    /// per-operator wall time and rows in/out under the same `OP_*`
    /// names the trace spans use.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let e = &self.event;
        let mut out = String::with_capacity(self.plan_text.len() + 512);
        out.push_str("EXPLAIN ANALYZE\n");
        out.push_str(&self.plan_text);
        let admission = match (e.outcome, e.tokens_remaining) {
            (QueryOutcome::Shed(reason), tokens) => {
                let t = tokens.map_or(String::new(), |t| format!(", {t:.1} tokens remaining"));
                format!("shed: {reason}{t}")
            }
            (QueryOutcome::Served, Some(tokens)) => {
                format!("admitted ({tokens:.1} tokens remaining)")
            }
            (QueryOutcome::Served, None) => "not consulted".to_string(),
        };
        let _ = writeln!(out, "  admission: {admission}");
        let _ = writeln!(
            out,
            "  stamp   : global_gen {}, delta_gen {}, {} pending delta records",
            e.global_gen, e.delta_gen, e.delta_len
        );
        match e.outcome {
            QueryOutcome::Shed(_) => {
                let _ = writeln!(
                    out,
                    "  measured: (shed before execution — no operators ran)"
                );
            }
            QueryOutcome::Served if e.cache == CacheOutcome::Hit => {
                let _ = writeln!(
                    out,
                    "  measured: {OP_QUERY} {} us total, {} hits, digest {:#018x}",
                    e.total_micros, e.hit_count, e.digest
                );
                let _ = writeln!(
                    out,
                    "    (served from the result cache — operators skipped)"
                );
            }
            QueryOutcome::Served => {
                let _ = writeln!(
                    out,
                    "  measured: {OP_QUERY} {} us total, {} hits, digest {:#018x}",
                    e.total_micros, e.hit_count, e.digest
                );
                let _ = writeln!(
                    out,
                    "    ├─ {OP_INDEX_SCAN:<11} {:>6} us   rows {} -> {}   ({} shard probe{}, {})",
                    e.index_micros,
                    e.index_rows_in,
                    e.index_rows_out,
                    e.fanout_shards,
                    if e.fanout_shards == 1 { "" } else { "s" },
                    if e.fanout_parallel {
                        format!("parallel on {} threads", e.fanout_threads)
                    } else {
                        "serial".to_string()
                    }
                );
                let _ = writeln!(
                    out,
                    "    ├─ {OP_DELTA_SCAN:<11} {:>6} us   rows {} -> {}",
                    e.delta_micros, e.delta_rows_in, e.delta_rows_out
                );
                if let Some(cold) = &self.cold {
                    let _ = writeln!(
                        out,
                        "    ├─ {OP_COLD_SCAN:<11} {:>6} us   rows {} -> {}",
                        cold.micros, cold.rows_in, cold.hits
                    );
                }
                let cold_hits_note = self
                    .cold
                    .map_or(String::new(), |c| format!(" + {} cold", c.hits));
                let _ = writeln!(
                    out,
                    "    └─ {OP_RANKING:<11} {:>6} us   rows {} -> {}   (hits: {} index + {} delta{})",
                    e.rank_micros,
                    e.rank_rows_in,
                    e.rank_rows_out,
                    e.hits_index,
                    e.hits_delta,
                    cold_hits_note
                );
            }
        }
        out
    }
}

/// Result of [`CloudServer::query_analyzed`](crate::server::CloudServer::query_analyzed):
/// the hits (byte-identical to an unanalyzed run; empty when shed) plus
/// the annotated report.
pub struct AnalyzedQuery {
    pub hits: Vec<SearchHit>,
    pub report: AnalyzeReport,
}

impl Engine {
    /// The instrumented twin of `execute_plan` + `execute_plan_cached`:
    /// runs the identical operator pipeline (same operator functions,
    /// same order — the equivalence test pins byte-identity), measuring
    /// every stage unconditionally, resolving the concrete cache
    /// decision, and recording the same spans / metrics the normal path
    /// would so analyzed queries stay visible in `swag top` and traces.
    pub(crate) fn execute_plan_instrumented(
        &self,
        epoch: &Epoch,
        t0: u64,
        plan: &QueryPlan,
    ) -> (Vec<SearchHit>, QueryEvent, Option<ColdScanMeasure>) {
        let fingerprint = plan.fingerprint();
        // Resolve the cache decision first, mirroring execute_plan_cached.
        let (cache_outcome, cached_hits) = match &self.cache {
            None => (CacheOutcome::Off, None),
            Some(c) if !c.eligible(plan) => (CacheOutcome::Ineligible, None),
            Some(c) => {
                let key = PlanKey::of(plan);
                match c.lookup(fingerprint, &key, plan, epoch) {
                    cache::Lookup::Hit(hits) => (CacheOutcome::Hit, Some(hits)),
                    cache::Lookup::Miss => (CacheOutcome::Miss, None),
                }
            }
        };
        let decision = FanoutDecision::decide(
            &epoch.core.index,
            plan.query.t_start,
            plan.query.t_end,
            &self.exec,
            self.config.fanout,
        );
        let mut ev = QueryEvent {
            fingerprint,
            t_start: plan.query.t_start,
            t_end: plan.query.t_end,
            lat: plan.query.center.lat,
            lng: plan.query.center.lng,
            radius_m: plan.query.radius_m,
            top_n: plan.k as u64,
            direction_filter: plan.filters.direction_tolerance_deg.is_some(),
            direction_tolerance_deg: plan.filters.direction_tolerance_deg.unwrap_or(0.0),
            require_coverage: plan.filters.require_coverage,
            rank: plan.rank,
            outcome: QueryOutcome::Served,
            cache: cache_outcome,
            fanout_parallel: decision.parallel,
            fanout_shards: decision.shards as u64,
            fanout_items: decision.items as u64,
            fanout_work: decision.estimated_work,
            fanout_threads: decision.threads as u64,
            tokens_remaining: None,
            global_gen: epoch.stamp.global_gen,
            delta_gen: epoch.stamp.delta_gen,
            delta_len: epoch.delta_len as u64,
            index_micros: 0,
            index_rows_in: 0,
            index_rows_out: 0,
            delta_micros: 0,
            delta_rows_in: 0,
            delta_rows_out: 0,
            rank_micros: 0,
            rank_rows_in: 0,
            rank_rows_out: 0,
            hits_index: 0,
            hits_delta: 0,
            total_micros: 0,
            hit_count: 0,
            digest: 0,
            end_micros: 0,
        };
        if let Some(hits) = cached_hits {
            // Mirror the normal cache-hit bookkeeping: root span, query
            // counters, total latency, hit counter.
            let mut root = self.recorder.guarded_span(OP_QUERY);
            root.set_detail(hits.len() as u64);
            self.queries.fetch_add(1, Ordering::Relaxed);
            let t_done = self.clock.now_micros();
            self.query_micros.fetch_add(t_done - t0, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.query_total.record(t_done - t0);
                obs.cache_hits.inc();
            }
            ev.total_micros = t_done - t0;
            ev.hit_count = hits.len() as u64;
            ev.digest = result_digest(&hits);
            ev.end_micros = t_done;
            return (hits, ev, None);
        }
        if ev.cache == CacheOutcome::Miss {
            if let Some(obs) = &self.obs {
                obs.cache_misses.inc();
            }
        }

        // The pipeline, instrumented: identical operator calls in
        // identical order to execute_plan's instrumented arm.
        let mut root = self.recorder.guarded_span(OP_QUERY);
        let serial = Executor::serial();
        let probe_exec = if decision.parallel {
            &self.exec
        } else {
            &serial
        };
        let t_locked = self.clock.now_micros();
        let mut search = SearchStats::default();
        let candidates = {
            let _span = self.recorder.span(OP_INDEX_SCAN);
            epoch.core.index.candidates_with_stats_in_exec(
                probe_exec,
                &plan.boxes,
                plan.query.t_start,
                plan.query.t_end,
                &mut search,
            )
        };
        let index_rows_in = search.items_tested;
        let t_index = self.clock.now_micros();
        let delta_matches: Vec<&DeltaRecord> = if epoch.delta_len > 0 {
            let _span = self.recorder.span(OP_DELTA_SCAN);
            epoch
                .delta_records()
                .filter(|d| plan.boxes.intersects(&d.bbox))
                .collect()
        } else {
            Vec::new()
        };
        let n_candidates = candidates.len() + delta_matches.len();
        let n_delta_matches = delta_matches.len();
        let t_scanned = self.clock.now_micros();
        // Cold tier, mirrored from execute_plan's instrumented arm: same
        // operator position, same hit order (index, delta, cold).
        let had_cold = self.has_cold();
        let (cold_hits, cold_rows_in, t_cold) = if had_cold {
            let (hits, rows_in) = {
                let _span = self.recorder.span(OP_COLD_SCAN);
                self.cold_scan(plan)
            };
            (hits, rows_in, self.clock.now_micros())
        } else {
            (Vec::new(), 0, t_scanned)
        };
        let n_cold_hits = cold_hits.len();
        let (hits, n_index_hits, n_delta_hits) = {
            let _span = self.recorder.span(OP_RANKING);
            let mut hits = collect_hits(&candidates, &epoch.core.store, &self.cam, plan);
            let n_index_hits = hits.len();
            hits.extend(
                delta_matches
                    .into_iter()
                    .filter(|d| plan.filters.accepts(&d.rec.rep, &self.cam, &plan.query))
                    .map(|d| hit_for(&d.rec, &self.cam, &plan.query)),
            );
            let n_delta_hits = hits.len() - n_index_hits;
            hits.extend(cold_hits);
            rank_hits(&mut hits, plan.rank, plan.k);
            (hits, n_index_hits, n_delta_hits)
        };
        let t_done = self.clock.now_micros();

        let n_queries = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
        self.query_micros.fetch_add(t_done - t0, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.lock_wait.record(t_locked - t0);
            obs.index_scan.record(t_scanned - t_locked);
            obs.ranking.record(t_done - t_cold);
            obs.query_total.record(t_done - t0);
            obs.candidates.record(n_candidates as u64);
            obs.op_index_scan.micros.record(t_index - t_locked);
            obs.op_index_scan.rows_in.record(index_rows_in);
            obs.op_index_scan.rows_out.record(candidates.len() as u64);
            obs.op_delta_scan.micros.record(t_scanned - t_index);
            obs.op_delta_scan.rows_in.record(epoch.delta_len as u64);
            obs.op_delta_scan.rows_out.record(n_delta_matches as u64);
            if t_cold > t_scanned || cold_rows_in > 0 {
                obs.op_cold_scan.micros.record(t_cold - t_scanned);
                obs.op_cold_scan.rows_in.record(cold_rows_in);
                obs.op_cold_scan.rows_out.record(n_cold_hits as u64);
            }
            obs.op_ranking.micros.record(t_done - t_cold);
            obs.op_ranking.rows_in.record(n_candidates as u64);
            obs.op_ranking.rows_out.record(hits.len() as u64);
            obs.hits_index.add(n_index_hits as u64);
            obs.hits_delta.add(n_delta_hits as u64);
            obs.hits_cold.add(n_cold_hits as u64);
            obs.shards_probed.record(decision.shards as u64);
            if decision.parallel {
                obs.fanout_parallel.inc();
            } else {
                obs.fanout_serial.inc();
            }
            if obs.trace.try_sample() {
                obs.trace.record(OP_QUERY, t_done - t0, n_candidates as u64);
            }
            if self.config.slow_query_micros.is_none()
                && self.recorder.is_enabled()
                && n_queries.is_multiple_of(AUTO_THRESHOLD_INTERVAL)
            {
                let p99 = obs.query_total.snapshot().p99();
                if p99 > 0 {
                    self.recorder.set_slow_threshold_micros(p99);
                }
            }
        }
        root.set_detail(hits.len() as u64);

        if ev.cache == CacheOutcome::Miss {
            if let Some(c) = &self.cache {
                if let cache::Insert::Stored { evicted: true } =
                    c.insert(fingerprint, PlanKey::of(plan), plan, epoch, &hits)
                {
                    if let Some(obs) = &self.obs {
                        obs.cache_evictions.inc();
                    }
                }
            }
        }

        ev.index_micros = t_index - t_locked;
        ev.index_rows_in = index_rows_in;
        ev.index_rows_out = candidates.len() as u64;
        ev.delta_micros = t_scanned - t_index;
        ev.delta_rows_in = epoch.delta_len as u64;
        ev.delta_rows_out = n_delta_matches as u64;
        ev.rank_micros = t_done - t_cold;
        ev.rank_rows_in = n_candidates as u64;
        ev.rank_rows_out = hits.len() as u64;
        ev.hits_index = n_index_hits as u64;
        ev.hits_delta = n_delta_hits as u64;
        ev.total_micros = t_done - t0;
        ev.hit_count = hits.len() as u64;
        ev.digest = result_digest(&hits);
        ev.end_micros = t_done;
        // Cold measurements ride outside the pinned QueryEvent layout.
        let cold = had_cold.then_some(ColdScanMeasure {
            micros: t_cold - t_scanned,
            rows_in: cold_rows_in,
            hits: n_cold_hits as u64,
        });
        (hits, ev, cold)
    }

    /// Records `ev` into the event log (when present) and bumps the
    /// pushed/kept counters.
    pub(crate) fn emit_event(&self, ev: &QueryEvent) {
        if let Some(events) = &self.events {
            let kept = events.record(ev);
            if let Some(obs) = &self.obs {
                obs.events_pushed.inc();
                if kept {
                    obs.events_kept.inc();
                }
            }
        }
    }

    /// The events-enabled arm of `query`: instrumented execution plus
    /// one wide event. `inline(never)` so the events-off hot path never
    /// carries this body.
    #[inline(never)]
    pub(crate) fn query_evented(
        &self,
        query: &Query,
        opts: &QueryOptions,
        tokens_remaining: Option<f64>,
    ) -> Vec<SearchHit> {
        let t0 = self.clock.now_micros();
        let epoch = self.epoch.read().clone();
        let plan = QueryPlan::compile(query, opts);
        let (hits, mut ev, _cold) = self.execute_plan_instrumented(&epoch, t0, &plan);
        ev.tokens_remaining = tokens_remaining;
        self.emit_event(&ev);
        hits
    }

    /// Builds and emits the wide event for a query shed before
    /// execution (always-keep class).
    #[inline(never)]
    pub(crate) fn emit_shed_event(
        &self,
        client_id: u64,
        query: &Query,
        opts: &QueryOptions,
        reason: ShedReason,
    ) {
        let plan = QueryPlan::compile(query, opts);
        let epoch = self.epoch.read().clone();
        let now = self.clock.now_micros();
        let mut ev = self.shed_event_snapshot(client_id, &plan, &epoch, reason);
        ev.end_micros = now;
        self.emit_event(&ev);
    }

    /// EXPLAIN ANALYZE: executes the query through the instrumented
    /// pipeline (admission consulted exactly like `query_admitted`) and
    /// returns the hits plus the annotated report. Emits a wide event
    /// like any other query when the log is enabled.
    pub(crate) fn query_analyzed(
        &self,
        client_id: u64,
        query: &Query,
        opts: &QueryOptions,
    ) -> AnalyzedQuery {
        let t0 = self.clock.now_micros();
        let mut tokens = None;
        let _permit = match &self.admission {
            None => None,
            Some(admission) => match admission.admit(client_id) {
                Ok(permit) => {
                    if let Some(obs) = &self.obs {
                        obs.admitted.inc();
                    }
                    tokens = Some(admission.tokens_remaining(client_id));
                    Some(permit)
                }
                Err(reason) => {
                    if let Some(obs) = &self.obs {
                        match reason {
                            ShedReason::RateLimited => obs.shed_rate_limited.inc(),
                            ShedReason::Overloaded => obs.shed_overloaded.inc(),
                        }
                    }
                    self.emit_shed_event(client_id, query, opts, reason);
                    let plan = QueryPlan::compile(query, opts);
                    let epoch = self.epoch.read().clone();
                    let mut ev = self.shed_event_snapshot(client_id, &plan, &epoch, reason);
                    ev.end_micros = self.clock.now_micros();
                    let plan_text = self.render_plan_text(&plan, &epoch, &ev);
                    return AnalyzedQuery {
                        hits: Vec::new(),
                        report: AnalyzeReport {
                            event: ev,
                            cold: None,
                            plan_text,
                        },
                    };
                }
            },
        };
        let epoch = self.epoch.read().clone();
        let plan = QueryPlan::compile(query, opts);
        let (hits, mut ev, cold) = self.execute_plan_instrumented(&epoch, t0, &plan);
        ev.tokens_remaining = tokens;
        self.emit_event(&ev);
        let plan_text = self.render_plan_text(&plan, &epoch, &ev);
        AnalyzedQuery {
            hits,
            report: AnalyzeReport {
                event: ev,
                cold,
                plan_text,
            },
        }
    }

    /// A shed event minus emission side effects, for report rendering.
    fn shed_event_snapshot(
        &self,
        client_id: u64,
        plan: &QueryPlan,
        epoch: &Epoch,
        reason: ShedReason,
    ) -> QueryEvent {
        QueryEvent {
            fingerprint: plan.fingerprint(),
            t_start: plan.query.t_start,
            t_end: plan.query.t_end,
            lat: plan.query.center.lat,
            lng: plan.query.center.lng,
            radius_m: plan.query.radius_m,
            top_n: plan.k as u64,
            direction_filter: plan.filters.direction_tolerance_deg.is_some(),
            direction_tolerance_deg: plan.filters.direction_tolerance_deg.unwrap_or(0.0),
            require_coverage: plan.filters.require_coverage,
            rank: plan.rank,
            outcome: QueryOutcome::Shed(reason),
            cache: CacheOutcome::Off,
            fanout_parallel: false,
            fanout_shards: 0,
            fanout_items: 0,
            fanout_work: 0.0,
            fanout_threads: 0,
            tokens_remaining: self
                .admission
                .as_ref()
                .map(|a| a.tokens_remaining(client_id)),
            global_gen: epoch.stamp.global_gen,
            delta_gen: epoch.stamp.delta_gen,
            delta_len: epoch.delta_len as u64,
            index_micros: 0,
            index_rows_in: 0,
            index_rows_out: 0,
            delta_micros: 0,
            delta_rows_in: 0,
            delta_rows_out: 0,
            rank_micros: 0,
            rank_rows_in: 0,
            rank_rows_out: 0,
            hits_index: 0,
            hits_delta: 0,
            total_micros: 0,
            hit_count: 0,
            digest: 0,
            end_micros: 0,
        }
    }

    /// Renders the resolved plan listing an [`AnalyzeReport`] annotates:
    /// the normal `explain` body with the fan-out and cache lines
    /// replaced by what the analyzed execution concretely decided.
    fn render_plan_text(&self, plan: &QueryPlan, epoch: &Epoch, ev: &QueryEvent) -> String {
        let decision = FanoutDecision {
            parallel: ev.fanout_parallel,
            shards: ev.fanout_shards as usize,
            items: ev.fanout_items as usize,
            estimated_work: ev.fanout_work,
            threads: ev.fanout_threads as usize,
        };
        let mut cache_line = format!("fingerprint {:#018x}, ", ev.fingerprint);
        cache_line.push_str(&match ev.cache {
            CacheOutcome::Off => "cache off".to_string(),
            CacheOutcome::Ineligible => format!(
                "ineligible (spans {} shard buckets > cap {})",
                cache::bucket_span_len(
                    self.config.shard_width_s,
                    plan.query.t_start,
                    plan.query.t_end
                ),
                cache::CACHE_MAX_BUCKET_SPAN
            ),
            CacheOutcome::Miss => "miss (executed and stored)".to_string(),
            CacheOutcome::Hit => "hit (served from cache)".to_string(),
        });
        let cold_line = self.cold_line(plan);
        plan.explain_against(
            &epoch.core.index,
            epoch.delta_len,
            &decision,
            &cache_line,
            cold_line.as_deref(),
        )
    }
}
