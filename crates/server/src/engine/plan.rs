//! The query planner: lowers `(Query, QueryOptions)` into a typed
//! [`QueryPlan`].
//!
//! A plan is everything the operator pipeline needs to run, resolved
//! once per query: the query boxes (antimeridian-aware, §V-B step 1),
//! the filter chain (step 3, shared verbatim with standing-query
//! subscriptions), the rank mode and the top-k cutoff (step 4). Plans
//! are cheap `Copy` values; [`SubscriptionSet`](crate::subscribe)
//! compiles one per standing query at registration time and the read
//! entry points compile one per request (or per expansion ring, for
//! k-nearest).
//!
//! [`QueryPlan::explain`] renders the plan for humans; the operator
//! names it prints are the same `OP_*` constants the flight-recorder
//! spans use, so a `swag trace` waterfall and a `swag explain` listing
//! name identical pipeline stages.

use swag_core::{points_toward, sector_intersects_circle, CameraProfile, RepFov};

use crate::engine::fanout::FanoutDecision;
use crate::index::{query_boxes, QueryBoxes};
use crate::query::{canon_zero, Query, QueryOptions, RankMode};
use crate::shard::ShardedFovIndex;

/// Span label of the per-query pipeline root.
pub const OP_QUERY: &str = "query";
/// Span label of the snapshot index scan operator.
pub const OP_INDEX_SCAN: &str = "index_scan";
/// Span label of the pending-delta scan operator.
pub const OP_DELTA_SCAN: &str = "delta_scan";
/// Span label of the cold-run scan operator (demoted time shards on
/// disk; only present in pipelines of durable servers with cold runs).
pub const OP_COLD_SCAN: &str = "cold_scan";
/// Span label of the filter + rank + truncate operator.
pub const OP_RANKING: &str = "ranking";
/// Span label of the k-nearest radius-expansion driver.
pub const OP_QUERY_NEAREST: &str = "query_nearest";
/// Span label of one per-shard index probe.
pub const OP_SHARD_PROBE: &str = "shard_probe";
/// Span label of one publish-time shard STR rebuild.
pub const OP_SHARD_REBUILD: &str = "shard_rebuild";
/// Span label of the delta-fold snapshot publish.
pub const OP_PUBLISH: &str = "publish";
/// Span label of one upload-batch ingest.
pub const OP_INGEST: &str = "ingest";

/// The per-record filter stage (paper §V-B step 3), compiled from
/// [`QueryOptions`]. This is the **single** definition of the direction
/// and coverage filters: pull queries, batch queries, k-nearest rings,
/// and standing-query subscriptions all run records through
/// [`FilterChain::accepts`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterChain {
    /// `Some(tolerance_deg)` drops FoVs whose orientation points away
    /// from the query centre (tolerance widens the camera half-angle).
    pub direction_tolerance_deg: Option<f64>,
    /// Additionally require the view sector to geometrically intersect
    /// the query disc.
    pub require_coverage: bool,
}

impl FilterChain {
    /// Compiles the filter stage from query options.
    pub fn from_options(opts: &QueryOptions) -> Self {
        FilterChain {
            direction_tolerance_deg: opts
                .direction_filter
                .then_some(opts.direction_tolerance_deg),
            require_coverage: opts.require_coverage,
        }
    }

    /// Whether a representative FoV passes every configured filter.
    pub fn accepts(&self, rep: &RepFov, cam: &CameraProfile, query: &Query) -> bool {
        if let Some(tol) = self.direction_tolerance_deg {
            if !points_toward(&rep.fov, cam, query.center, tol) {
                return false;
            }
        }
        if self.require_coverage
            && !sector_intersects_circle(&rep.fov, cam, query.center, query.radius_m)
        {
            return false;
        }
        true
    }

    /// Number of active filters (for explain output).
    pub fn len(&self) -> usize {
        usize::from(self.direction_tolerance_deg.is_some()) + usize::from(self.require_coverage)
    }

    /// Whether no filter is active.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A compiled query: what the operator pipeline executes against an
/// epoch snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPlan {
    /// The validated request.
    pub query: Query,
    /// Query rectangle(s) — two when the radius wraps the antimeridian.
    pub boxes: QueryBoxes,
    /// The per-record filter stage.
    pub filters: FilterChain,
    /// Result ordering.
    pub rank: RankMode,
    /// Top-k cutoff applied after ranking.
    pub k: usize,
}

impl QueryPlan {
    /// Lowers a request into a plan (the planner).
    pub fn compile(query: &Query, opts: &QueryOptions) -> Self {
        QueryPlan {
            query: *query,
            boxes: query_boxes(query),
            filters: FilterChain::from_options(opts),
            rank: opts.rank,
            k: opts.top_n,
        }
    }

    /// Stable 64-bit fingerprint of the canonical plan — the result-cache
    /// key. FNV-1a over the bit patterns of every field that affects
    /// results: the query window, centre, radius, the compiled filter
    /// chain, the rank mode, and the top-k cutoff. Floats are
    /// canonicalized first (`-0.0` folds onto `+0.0`), so semantically
    /// equal plans fingerprint identically; the query boxes derive
    /// deterministically from the query and are not hashed. Two distinct
    /// plans can in principle collide in 64 bits, which is why cache
    /// entries also store the full [`PlanKey`] and compare it on lookup.
    pub fn fingerprint(&self) -> u64 {
        PlanKey::of(self).fingerprint()
    }

    /// Renders the plan for humans: boxes, filter chain, rank mode, and
    /// the operator pipeline (named with the same labels the trace spans
    /// use). Snapshot-dependent facts (shards probed, pending delta) are
    /// added by [`Self::explain_against`].
    pub fn explain(&self) -> String {
        self.render(None)
    }

    /// [`Self::explain`] resolved against a concrete snapshot: also
    /// lists which time shards the plan probes, the fan-out decision the
    /// cost model took for them, the pending delta the delta-scan
    /// operator walks, and — on durable servers holding cold runs —
    /// whether the plan reaches the cold tier (`cold_line`).
    pub(crate) fn explain_against(
        &self,
        index: &ShardedFovIndex,
        delta_len: usize,
        fanout: &FanoutDecision,
        cache_line: &str,
        cold_line: Option<&str>,
    ) -> String {
        self.render(Some(ExplainContext {
            index,
            delta_len,
            fanout,
            cache_line,
            cold_line,
        }))
    }

    fn render(&self, snapshot: Option<ExplainContext<'_>>) -> String {
        use std::fmt::Write as _;
        let q = &self.query;
        let mut out = String::new();
        let _ = writeln!(out, "QueryPlan");
        let _ = writeln!(
            out,
            "  window  : [{:.3}, {:.3}] ({:.1} s)",
            q.t_start,
            q.t_end,
            q.t_end - q.t_start
        );
        let _ = writeln!(
            out,
            "  center  : ({:.6}, {:.6}) radius {:.1} m",
            q.center.lat, q.center.lng, q.radius_m
        );
        for (i, b) in self.boxes.as_slice().iter().enumerate() {
            let _ = writeln!(
                out,
                "  box {i}   : lng [{:.6}, {:.6}] lat [{:.6}, {:.6}]",
                b.min[0], b.max[0], b.min[1], b.max[1]
            );
        }
        let cold_line = snapshot.as_ref().and_then(|s| s.cold_line);
        if let Some(ExplainContext {
            index,
            delta_len,
            fanout,
            cache_line,
            ..
        }) = snapshot
        {
            let probes = index.probe_shards(q.t_start, q.t_end);
            let mut line = format!(
                "  shards  : probe {} of {} live (width {} s)",
                probes.len(),
                index.shard_count(),
                index.shard_width_s()
            );
            if !probes.is_empty() {
                line.push(':');
                for (bucket, items) in &probes {
                    let _ = write!(line, " #{bucket}(x{items})");
                }
            }
            let _ = writeln!(out, "{line}");
            let _ = writeln!(out, "  fanout  : {}", fanout.render());
            let _ = writeln!(out, "  delta   : {delta_len} pending records (linear scan)");
            let _ = writeln!(out, "  cache   : {cache_line}");
            if let Some(cold) = cold_line {
                let _ = writeln!(out, "  cold    : {cold}");
            }
        }
        let mut filters = Vec::new();
        if let Some(tol) = self.filters.direction_tolerance_deg {
            filters.push(format!("direction(±{tol}°)"));
        }
        if self.filters.require_coverage {
            filters.push("coverage".to_string());
        }
        let _ = writeln!(
            out,
            "  filters : {}",
            if filters.is_empty() {
                "none".to_string()
            } else {
                filters.join(" -> ")
            }
        );
        let rank = match self.rank {
            RankMode::Distance => "distance",
            RankMode::Quality => "quality",
        };
        let k = if self.k == usize::MAX {
            "all".to_string()
        } else {
            format!("top {}", self.k)
        };
        let _ = writeln!(out, "  rank    : {rank}, {k}");
        // The pipeline line stays byte-identical to the pre-durability
        // engine unless cold runs are actually reachable (tooling greps
        // for the plain form).
        if cold_line.is_some() {
            let _ = writeln!(
                out,
                "  pipeline: {OP_INDEX_SCAN}({OP_SHARD_PROBE}*) -> {OP_DELTA_SCAN} -> {OP_COLD_SCAN} -> {OP_RANKING}"
            );
        } else {
            let _ = writeln!(
                out,
                "  pipeline: {OP_INDEX_SCAN}({OP_SHARD_PROBE}*) -> {OP_DELTA_SCAN} -> {OP_RANKING}"
            );
        }
        out
    }
}

/// Snapshot-resolved context [`QueryPlan::explain_against`] renders.
pub(crate) struct ExplainContext<'a> {
    pub(crate) index: &'a ShardedFovIndex,
    pub(crate) delta_len: usize,
    pub(crate) fanout: &'a FanoutDecision,
    pub(crate) cache_line: &'a str,
    /// Rendered cold-tier summary; `None` when the server has no
    /// reachable cold runs (memory-only servers always).
    pub(crate) cold_line: Option<&'a str>,
}

/// The canonical key material [`QueryPlan::fingerprint`] hashes, small
/// enough to store `Copy` alongside each cache entry. The cache compares
/// the stored key on every hit, so a 64-bit fingerprint collision
/// between two distinct plans degrades to a cache miss instead of
/// serving another plan's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlanKey {
    t_start: u64,
    t_end: u64,
    lat: u64,
    lng: u64,
    radius: u64,
    /// Canonical tolerance bits, or `u64::MAX` (a NaN encoding no
    /// validated tolerance can produce) when the filter is off.
    dir_tol: u64,
    coverage: bool,
    rank: u8,
    k: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Canonical bit pattern of `x`: the two IEEE zeros hash identically.
fn canon_bits(x: f64) -> u64 {
    canon_zero(x).to_bits()
}

impl PlanKey {
    /// Extracts the canonical key from a compiled plan.
    pub(crate) fn of(plan: &QueryPlan) -> Self {
        let q = &plan.query;
        PlanKey {
            t_start: canon_bits(q.t_start),
            t_end: canon_bits(q.t_end),
            lat: canon_bits(q.center.lat),
            lng: canon_bits(q.center.lng),
            radius: canon_bits(q.radius_m),
            dir_tol: plan
                .filters
                .direction_tolerance_deg
                .map_or(u64::MAX, canon_bits),
            coverage: plan.filters.require_coverage,
            rank: match plan.rank {
                RankMode::Distance => 0,
                RankMode::Quality => 1,
            },
            k: plan.k as u64,
        }
    }

    /// FNV-1a over the key fields in declaration order.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for word in [
            self.t_start,
            self.t_end,
            self.lat,
            self.lng,
            self.radius,
            self.dir_tol,
            u64::from(self.coverage),
            u64::from(self.rank),
            self.k,
        ] {
            for byte in word.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    #[test]
    fn filter_chain_mirrors_options() {
        let chain = FilterChain::from_options(&QueryOptions::default());
        assert_eq!(chain.direction_tolerance_deg, Some(10.0));
        assert!(!chain.require_coverage);
        assert_eq!(chain.len(), 1);
        let none = FilterChain::from_options(&QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        });
        assert!(none.is_empty());
    }

    #[test]
    fn filter_chain_accepts_matches_semantics() {
        let cam = CameraProfile::smartphone();
        let q = Query::new(0.0, 10.0, center(), 100.0);
        // Camera 20 m south looking north (at the centre) passes; looking
        // south (away) fails the direction filter but passes without it.
        let toward = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 20.0), 0.0));
        let away = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 20.0), 180.0));
        let with_dir = FilterChain::from_options(&QueryOptions::default());
        assert!(with_dir.accepts(&toward, &cam, &q));
        assert!(!with_dir.accepts(&away, &cam, &q));
        let without = FilterChain {
            direction_tolerance_deg: None,
            require_coverage: false,
        };
        assert!(without.accepts(&away, &cam, &q));
    }

    #[test]
    fn plan_captures_rank_and_k() {
        let q = Query::new(0.0, 60.0, center(), 150.0);
        let plan = QueryPlan::compile(
            &q,
            &QueryOptions {
                top_n: 7,
                rank: RankMode::Quality,
                ..QueryOptions::default()
            },
        );
        assert_eq!(plan.k, 7);
        assert_eq!(plan.rank, RankMode::Quality);
        assert_eq!(plan.boxes, crate::index::query_boxes(&q));
    }

    #[test]
    fn explain_names_the_pipeline_operators() {
        let q = Query::new(0.0, 60.0, center(), 150.0);
        let plan = QueryPlan::compile(&q, &QueryOptions::default());
        let text = plan.explain();
        for op in [OP_INDEX_SCAN, OP_DELTA_SCAN, OP_RANKING, OP_SHARD_PROBE] {
            assert!(text.contains(op), "explain must mention {op}: {text}");
        }
        assert!(text.contains("direction"));
        assert!(text.contains("distance, top 10"));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let q = Query::new(0.0, 60.0, center(), 150.0);
        let opts = QueryOptions::default();
        let a = QueryPlan::compile(&q, &opts).fingerprint();
        let b = QueryPlan::compile(&q, &opts).fingerprint();
        assert_eq!(a, b, "same plan must fingerprint identically");
        // Every result-affecting knob moves the fingerprint.
        for other in [
            QueryPlan::compile(&Query::new(0.0, 61.0, center(), 150.0), &opts),
            QueryPlan::compile(&Query::new(0.0, 60.0, center(), 151.0), &opts),
            QueryPlan::compile(&q, &QueryOptions { top_n: 11, ..opts }),
            QueryPlan::compile(
                &q,
                &QueryOptions {
                    rank: RankMode::Quality,
                    ..opts
                },
            ),
            QueryPlan::compile(
                &q,
                &QueryOptions {
                    direction_filter: false,
                    ..opts
                },
            ),
            QueryPlan::compile(
                &q,
                &QueryOptions {
                    require_coverage: true,
                    ..opts
                },
            ),
        ] {
            assert_ne!(a, other.fingerprint(), "{other:?}");
        }
    }

    #[test]
    fn fingerprint_canonicalizes_zero_aliases() {
        // -0.0 spellings of window bounds, centre, and tolerance all
        // fingerprint like +0.0: the cache must not split a hot query
        // across aliased keys.
        let opts = QueryOptions::default();
        let neg = QueryPlan::compile(&Query::new(-0.0, 60.0, LatLon::new(-0.0, -0.0), 5.0), &opts);
        let pos = QueryPlan::compile(&Query::new(0.0, 60.0, LatLon::new(0.0, 0.0), 5.0), &opts);
        assert_eq!(neg.fingerprint(), pos.fingerprint());
        assert_eq!(PlanKey::of(&neg), PlanKey::of(&pos));
        let tol_neg = QueryPlan::compile(
            &Query::new(0.0, 60.0, center(), 5.0),
            &QueryOptions {
                direction_tolerance_deg: -0.0,
                ..opts
            },
        );
        let tol_pos = QueryPlan::compile(
            &Query::new(0.0, 60.0, center(), 5.0),
            &QueryOptions {
                direction_tolerance_deg: 0.0,
                ..opts
            },
        );
        assert_eq!(tol_neg.fingerprint(), tol_pos.fingerprint());
        // Filter off vs. zero tolerance are different plans.
        let off = QueryPlan::compile(
            &Query::new(0.0, 60.0, center(), 5.0),
            &QueryOptions {
                direction_filter: false,
                ..opts
            },
        );
        assert_ne!(off.fingerprint(), tol_pos.fingerprint());
    }

    #[test]
    fn explain_renders_antimeridian_boxes() {
        let q = Query::new(0.0, 60.0, LatLon::new(10.0, 179.999), 1000.0);
        let plan = QueryPlan::compile(&q, &QueryOptions::default());
        let text = plan.explain();
        assert!(text.contains("box 0"));
        assert!(text.contains("box 1"), "wrap query must show two boxes");
    }
}
