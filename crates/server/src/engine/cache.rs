//! The plan-keyed result cache: serving-path scale for hot queries.
//!
//! The paper's motivating scenario — a crowd all asking about the same
//! incident — concentrates query load on a handful of plans. Recomputing
//! each one melts the server; this cache answers repeats in one hash
//! probe. Entries are keyed by the 64-bit
//! [`QueryPlan::fingerprint`](super::plan::QueryPlan::fingerprint) of the
//! canonical plan and validated against the epoch's
//! [`CacheStamp`](super::epoch::CacheStamp) on every lookup:
//!
//! * **global generation** — compaction and bootstrap reassign dense
//!   segment ids, so a mismatch invalidates unconditionally;
//! * **per-bucket shard versions** — the writer bumps a time-shard
//!   bucket's version when a publish folds records into it, retention
//!   drops it, or a retraction removes from it. An entry records the
//!   versions of the buckets its window spans, so a publish that folds
//!   into *other* buckets leaves it valid — cold shards keep their
//!   entries across publishes;
//! * **delta position** — within one delta generation the staged delta
//!   is append-only, so an entry validated at flat position `n` only has
//!   to intersection-test records `n..` against its query boxes. Records
//!   that were folded out of the delta are covered by the shard-version
//!   check (their boxes include the time dimension, so they landed in
//!   the entry's buckets iff they could affect it).
//!
//! Invalidation is lazy: stale entries are detected and removed by the
//! next lookup (or evicted by capacity pressure), never swept. A
//! fingerprint collision between two distinct plans degrades to a miss —
//! entries store the full [`PlanKey`] and compare it on hit — so the
//! cache can serve wrong-age results never, wrong-plan results never,
//! and byte-identical results always (the equivalence proptests pin
//! this).

use std::collections::HashMap;
use std::ops::RangeInclusive;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ranking::SearchHit;

use super::epoch::Epoch;
use super::plan::{PlanKey, QueryPlan};

/// Widest window (in time-shard buckets) a plan may span and still be
/// cached: the per-entry version vector stays small and a single giant
/// scan cannot monopolize the cache.
pub(crate) const CACHE_MAX_BUCKET_SPAN: usize = 64;

/// Lock stripes. Hot fingerprints map to one stripe; 16 keeps writer
/// interference low without wasting memory at small capacities.
const CACHE_STRIPES: usize = 16;

/// Result-cache tuning, part of
/// [`ServerConfig`](crate::server::ServerConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum cached plans. `0` disables the cache entirely (the
    /// default: the cache is opt-in so an uncached server stays
    /// byte-identical to earlier versions).
    pub capacity: usize,
    /// Results with more hits than this are served but not stored, so a
    /// few `top_n = all` scans cannot crowd out the hot set.
    pub max_hits: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 0,
            max_hits: 512,
        }
    }
}

impl CacheConfig {
    /// A sensible enabled configuration (the CLI and benches use this).
    pub fn enabled(capacity: usize) -> Self {
        CacheConfig {
            capacity,
            ..CacheConfig::default()
        }
    }
}

/// Inclusive time-shard bucket range `[t0, t1]` spans — the same
/// `floor(t / width)` bucketing [`crate::shard::ShardedFovIndex`] uses.
pub(crate) fn bucket_range(width: f64, t0: f64, t1: f64) -> RangeInclusive<i64> {
    ((t0 / width).floor() as i64)..=((t1 / width).floor() as i64)
}

/// Number of buckets in [`bucket_range`], saturating.
pub(crate) fn bucket_span_len(width: f64, t0: f64, t1: f64) -> usize {
    let r = bucket_range(width, t0, t1);
    usize::try_from(r.end().saturating_sub(*r.start()))
        .unwrap_or(usize::MAX)
        .saturating_add(1)
}

/// One cached result plus everything needed to prove it still current.
struct CacheEntry {
    /// Full canonical key — compared on every hit so a 64-bit
    /// fingerprint collision is a miss, not a wrong answer.
    key: PlanKey,
    hits: Arc<[SearchHit]>,
    global_gen: u64,
    /// Versions of the buckets the plan's window spans, in bucket order,
    /// as captured from the stamp at insert (missing buckets omitted).
    versions: Box<[(i64, u64)]>,
    delta_gen: u64,
    /// Flat delta position already reflected in `hits`.
    delta_len: usize,
    /// LRU clock value of the last hit (or the insert).
    last_used: u64,
}

/// Lookup outcome, split so the engine can attribute metrics.
pub(crate) enum Lookup {
    Hit(Vec<SearchHit>),
    Miss,
}

/// Insert outcome.
pub(crate) enum Insert {
    Stored {
        evicted: bool,
    },
    /// Result larger than [`CacheConfig::max_hits`]; not stored.
    TooLarge,
}

/// The lock-striped cache. One instance per engine, shared by every
/// query thread; each stripe is a small `Mutex<HashMap>` held only for
/// the validity check (result materialization happens outside the
/// lock).
pub(crate) struct ResultCache {
    stripes: Box<[Mutex<HashMap<u64, CacheEntry>>]>,
    stripe_cap: usize,
    max_hits: usize,
    shard_width_s: f64,
    /// Monotonic LRU clock; cheap relaxed increments, exact order is
    /// irrelevant.
    clock: AtomicU64,
}

impl ResultCache {
    /// Builds a cache, or `None` when `capacity == 0` (disabled).
    pub(crate) fn new(cfg: CacheConfig, shard_width_s: f64) -> Option<Self> {
        if cfg.capacity == 0 {
            return None;
        }
        let stripes = CACHE_STRIPES.min(cfg.capacity);
        Some(ResultCache {
            stripes: (0..stripes)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            stripe_cap: cfg.capacity.div_ceil(stripes).max(1),
            max_hits: cfg.max_hits,
            shard_width_s,
            clock: AtomicU64::new(0),
        })
    }

    /// Whether a plan may be cached at all (window narrow enough for a
    /// small per-entry version vector).
    pub(crate) fn eligible(&self, plan: &QueryPlan) -> bool {
        bucket_span_len(self.shard_width_s, plan.query.t_start, plan.query.t_end)
            <= CACHE_MAX_BUCKET_SPAN
    }

    /// Current entry count across all stripes (gauge refresh only).
    pub(crate) fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    fn stripe(&self, fingerprint: u64) -> &Mutex<HashMap<u64, CacheEntry>> {
        &self.stripes[(fingerprint as usize) % self.stripes.len()]
    }

    /// Versions of the entry's buckets as the current stamp records
    /// them, compared pairwise without allocating.
    fn versions_current(entry: &CacheEntry, plan: &QueryPlan, epoch: &Epoch, width: f64) -> bool {
        let range = bucket_range(width, plan.query.t_start, plan.query.t_end);
        let mut current = epoch.stamp.shard_versions.range(range);
        entry
            .versions
            .iter()
            .all(|&(bucket, version)| current.next() == Some((&bucket, &version)))
            && current.next().is_none()
    }

    /// Looks up `fingerprint`, proving any entry current against
    /// `epoch` first. Stale entries are removed (lazy invalidation);
    /// valid ones are re-stamped to the epoch's delta position so the
    /// next lookup re-tests fewer records.
    pub(crate) fn lookup(
        &self,
        fingerprint: u64,
        key: &PlanKey,
        plan: &QueryPlan,
        epoch: &Epoch,
    ) -> Lookup {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripe(fingerprint).lock();
        let Some(entry) = stripe.get_mut(&fingerprint) else {
            return Lookup::Miss;
        };
        if entry.key != *key {
            // Fingerprint collision with a different live plan: a miss,
            // and the incumbent stays (last-insert-wins on store).
            return Lookup::Miss;
        }
        let stamp = &epoch.stamp;
        let same_world = entry.global_gen == stamp.global_gen
            && Self::versions_current(entry, plan, epoch, self.shard_width_s);
        if !same_world {
            stripe.remove(&fingerprint);
            return Lookup::Miss;
        }
        // Within one delta generation the delta is append-only, so only
        // records staged after the entry's position need testing; a
        // generation change means the old delta was folded (already
        // proven benign by the version check) and a new one may exist.
        let unaffected = if entry.delta_gen == stamp.delta_gen && entry.delta_len <= epoch.delta_len
        {
            !epoch
                .delta_records_from(entry.delta_len)
                .any(|d| plan.boxes.intersects(&d.bbox))
        } else {
            !epoch
                .delta_records()
                .any(|d| plan.boxes.intersects(&d.bbox))
        };
        if !unaffected {
            stripe.remove(&fingerprint);
            return Lookup::Miss;
        }
        entry.delta_gen = stamp.delta_gen;
        entry.delta_len = epoch.delta_len;
        entry.last_used = now;
        let hits = entry.hits.clone();
        drop(stripe);
        Lookup::Hit(hits.to_vec())
    }

    /// Stores a freshly computed result, stamped with the epoch it was
    /// computed against. Evicts the stripe's least-recently-used entry
    /// at capacity.
    pub(crate) fn insert(
        &self,
        fingerprint: u64,
        key: PlanKey,
        plan: &QueryPlan,
        epoch: &Epoch,
        hits: &[SearchHit],
    ) -> Insert {
        if hits.len() > self.max_hits {
            return Insert::TooLarge;
        }
        let range = bucket_range(self.shard_width_s, plan.query.t_start, plan.query.t_end);
        let versions: Box<[(i64, u64)]> = epoch
            .stamp
            .shard_versions
            .range(range)
            .map(|(b, v)| (*b, *v))
            .collect();
        let entry = CacheEntry {
            key,
            hits: Arc::from(hits),
            global_gen: epoch.stamp.global_gen,
            versions,
            delta_gen: epoch.stamp.delta_gen,
            delta_len: epoch.delta_len,
            last_used: self.clock.fetch_add(1, Ordering::Relaxed),
        };
        let mut stripe = self.stripe(fingerprint).lock();
        let mut evicted = false;
        if stripe.len() >= self.stripe_cap && !stripe.contains_key(&fingerprint) {
            if let Some(victim) = stripe
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp)
            {
                stripe.remove(&victim);
                evicted = true;
            }
        }
        stripe.insert(fingerprint, entry);
        Insert::Stored { evicted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_capacity_builds_no_cache() {
        assert!(ResultCache::new(CacheConfig::default(), 100.0).is_none());
        assert!(ResultCache::new(CacheConfig::enabled(8), 100.0).is_some());
    }

    #[test]
    fn bucket_span_matches_shard_bucketing() {
        // Same floor(t / width) rule as ShardedFovIndex::bucket_of.
        assert_eq!(bucket_range(100.0, 0.0, 99.0), 0..=0);
        assert_eq!(bucket_range(100.0, 50.0, 250.0), 0..=2);
        assert_eq!(bucket_range(100.0, -150.0, -1.0), -2..=-1);
        assert_eq!(bucket_span_len(100.0, 0.0, 99.0), 1);
        assert_eq!(bucket_span_len(100.0, 50.0, 250.0), 3);
    }

    #[test]
    fn wide_windows_are_ineligible() {
        let cache = ResultCache::new(CacheConfig::enabled(8), 1.0)
            .expect("nonzero capacity must build an enabled cache");
        let q = crate::query::Query::new(0.0, 10.0, swag_geo::LatLon::new(40.0, 116.32), 50.0);
        let narrow = QueryPlan::compile(&q, &crate::query::QueryOptions::default());
        assert!(cache.eligible(&narrow));
        let wide = QueryPlan::compile(
            &crate::query::Query::new(0.0, CACHE_MAX_BUCKET_SPAN as f64 + 1.0, q.center, 50.0),
            &crate::query::QueryOptions::default(),
        );
        assert!(!cache.eligible(&wide));
    }
}
