//! The operator pipeline: executes [`QueryPlan`]s against an epoch.
//!
//! One plan execution is the paper's retrieval path as a pipeline of
//! operators — **index scan** (sharded snapshot probe) → **delta scan**
//! (linear walk of pending records) → **filter** (the plan's compiled
//! [`FilterChain`](super::plan::FilterChain)) → **rank** → **top-k** —
//! each timed by a flight-recorder span named after the `OP_*` constant
//! it executes. All four read entry points are thin drivers over
//! [`Engine::execute_plan`]: `query` runs one plan, `query_nearest`
//! loops over radius-expanded plans, `query_batch` fans plans across
//! the executor against a single pinned epoch, and subscriptions reuse
//! the plan's filter stage at ingest time.

use std::sync::atomic::Ordering;

use swag_exec::Executor;
use swag_geo::LatLon;
use swag_rtree::SearchStats;

use crate::index::fov_box;
use crate::query::{Query, QueryOptions, RankMode};
use crate::ranking::{collect_hits, hit_for, rank_hits, SearchHit};
use crate::server::{ServerStats, AUTO_THRESHOLD_INTERVAL};
use crate::store::{SegmentId, SegmentRecord};

use super::admission::ShedReason;
use super::cache;
use super::epoch::{DeltaRecord, Epoch};
use super::fanout::{self, FanoutDecision};
use super::plan::{
    PlanKey, QueryPlan, OP_COLD_SCAN, OP_DELTA_SCAN, OP_INDEX_SCAN, OP_QUERY, OP_QUERY_NEAREST,
    OP_RANKING,
};
use super::Engine;

/// Sentinel [`SegmentId`] carried by hits served from cold runs: cold
/// records left the live store when retention demoted them, so they have
/// no dense server id. External callers identify results by
/// [`SearchHit::source`] either way.
pub(crate) const COLD_HIT_ID: SegmentId = SegmentId(u32::MAX);

impl Engine {
    /// The cold-run scan operator: walks every demoted run whose bucket
    /// could overlap the plan's window, applying the same box test and
    /// filter chain the delta scan uses. Returns the filtered hits
    /// (carrying [`COLD_HIT_ID`]) plus the records examined. Callers
    /// gate on [`Engine::has_cold`], so memory-only servers never reach
    /// this.
    pub(crate) fn cold_scan(&self, plan: &QueryPlan) -> (Vec<SearchHit>, u64) {
        let mut hits = Vec::new();
        let mut rows_in = 0u64;
        if let Some(durability) = &self.durability {
            for run in durability
                .cold()
                .overlapping(plan.query.t_end, durability.width_s())
            {
                let records = run.records();
                rows_in += records.len() as u64;
                for (rep, source) in records.iter() {
                    if plan.boxes.intersects(&fov_box(rep))
                        && plan.filters.accepts(rep, &self.cam, &plan.query)
                    {
                        let rec = SegmentRecord {
                            id: COLD_HIT_ID,
                            rep: *rep,
                            source: *source,
                        };
                        hits.push(hit_for(&rec, &self.cam, &plan.query));
                    }
                }
            }
        }
        (hits, rows_in)
    }

    /// Executes one plan against an already-acquired epoch, completing
    /// the latency accounting started at `t0` (the caller reads the
    /// clock once before acquiring the epoch; this method reads it once
    /// more uninstrumented, three more times instrumented). Scanning and
    /// ranking are lock-free: the epoch is immutable, and the shard
    /// fan-out runs on the engine's executor.
    pub(crate) fn execute_plan(&self, epoch: &Epoch, t0: u64, plan: &QueryPlan) -> Vec<SearchHit> {
        // Root of this query's span tree, armed for slow-query capture:
        // if its wall time (on the recorder's clock) crosses the slow
        // threshold, the whole tree is pinned into the retained log.
        // Child spans below — shard probes included, even when stolen by
        // other workers — parent to this context.
        let mut root = self.recorder.guarded_span(OP_QUERY);
        // Price the index scan before running it: narrow probes skip the
        // pool entirely (serial beats per-job overhead below the work
        // threshold), and the worker count is clamped to the host's
        // available parallelism. Both paths produce byte-identical
        // results, so this changes latency, never answers.
        let decision = FanoutDecision::decide(
            &epoch.core.index,
            plan.query.t_start,
            plan.query.t_end,
            &self.exec,
            self.config.fanout,
        );
        let serial = Executor::serial();
        let probe_exec = if decision.parallel {
            &self.exec
        } else {
            &serial
        };
        let hits = match &self.obs {
            None => {
                let candidates = {
                    let _span = self.recorder.span(OP_INDEX_SCAN);
                    epoch.core.index.candidates_in_exec(
                        probe_exec,
                        &plan.boxes,
                        plan.query.t_start,
                        plan.query.t_end,
                    )
                };
                let mut hits = collect_hits(&candidates, &epoch.core.store, &self.cam, plan);
                if epoch.delta_len > 0 {
                    let _span = self.recorder.span(OP_DELTA_SCAN);
                    for d in epoch.delta_records() {
                        if plan.boxes.intersects(&d.bbox)
                            && plan.filters.accepts(&d.rec.rep, &self.cam, &plan.query)
                        {
                            hits.push(hit_for(&d.rec, &self.cam, &plan.query));
                        }
                    }
                }
                if self.has_cold() {
                    let _span = self.recorder.span(OP_COLD_SCAN);
                    let (cold_hits, _) = self.cold_scan(plan);
                    hits.extend(cold_hits);
                }
                {
                    let _span = self.recorder.span(OP_RANKING);
                    rank_hits(&mut hits, plan.rank, plan.k);
                }
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.query_micros
                    .fetch_add(self.clock.now_micros() - t0, Ordering::Relaxed);
                hits
            }
            Some(obs) => {
                let t_locked = self.clock.now_micros();
                let mut search = SearchStats::default();
                let candidates = {
                    let _span = self.recorder.span(OP_INDEX_SCAN);
                    epoch.core.index.candidates_with_stats_in_exec(
                        probe_exec,
                        &plan.boxes,
                        plan.query.t_start,
                        plan.query.t_end,
                        &mut search,
                    )
                };
                let index_rows_in = search.items_tested;
                let t_index = self.clock.now_micros();
                let delta_matches: Vec<&DeltaRecord> = if epoch.delta_len > 0 {
                    let _span = self.recorder.span(OP_DELTA_SCAN);
                    let matches: Vec<&DeltaRecord> = epoch
                        .delta_records()
                        .filter(|d| plan.boxes.intersects(&d.bbox))
                        .collect();
                    // The delta scan is one flat "leaf" over pending records.
                    search.nodes_visited += 1;
                    search.leaves_scanned += 1;
                    search.items_tested += epoch.delta_len as u64;
                    search.items_matched += matches.len() as u64;
                    matches
                } else {
                    Vec::new()
                };
                let n_candidates = candidates.len() + delta_matches.len();
                let n_delta_matches = delta_matches.len();
                let t_scanned = self.clock.now_micros();
                // Cold tier: same operator order as the uninstrumented
                // arm. `t_cold` collapses onto `t_scanned` when no cold
                // runs exist, so memory-only metrics are unchanged.
                let (cold_hits, cold_rows_in, t_cold) = if self.has_cold() {
                    let (hits, rows_in) = {
                        let _span = self.recorder.span(OP_COLD_SCAN);
                        self.cold_scan(plan)
                    };
                    (hits, rows_in, self.clock.now_micros())
                } else {
                    (Vec::new(), 0, t_scanned)
                };
                let n_cold_hits = cold_hits.len();
                let (hits, n_index_hits, n_delta_hits) = {
                    let _span = self.recorder.span(OP_RANKING);
                    let mut hits = collect_hits(&candidates, &epoch.core.store, &self.cam, plan);
                    let n_index_hits = hits.len();
                    hits.extend(
                        delta_matches
                            .into_iter()
                            .filter(|d| plan.filters.accepts(&d.rec.rep, &self.cam, &plan.query))
                            .map(|d| hit_for(&d.rec, &self.cam, &plan.query)),
                    );
                    let n_delta_hits = hits.len() - n_index_hits;
                    hits.extend(cold_hits);
                    rank_hits(&mut hits, plan.rank, plan.k);
                    (hits, n_index_hits, n_delta_hits)
                };
                let t_done = self.clock.now_micros();

                let n_queries = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
                self.query_micros.fetch_add(t_done - t0, Ordering::Relaxed);
                obs.lock_wait.record(t_locked - t0);
                obs.index_scan.record(t_scanned - t_locked);
                obs.ranking.record(t_done - t_cold);
                obs.query_total.record(t_done - t0);
                obs.candidates.record(n_candidates as u64);
                obs.index_nodes.record(search.nodes_visited);
                obs.index_leaves.record(search.leaves_scanned);
                // Per-operator telemetry, keyed by the same OP_* names the
                // trace spans and `swag explain` use.
                obs.op_index_scan.micros.record(t_index - t_locked);
                obs.op_index_scan.rows_in.record(index_rows_in);
                obs.op_index_scan.rows_out.record(candidates.len() as u64);
                obs.op_delta_scan.micros.record(t_scanned - t_index);
                obs.op_delta_scan.rows_in.record(epoch.delta_len as u64);
                obs.op_delta_scan.rows_out.record(n_delta_matches as u64);
                if t_cold > t_scanned || cold_rows_in > 0 {
                    obs.op_cold_scan.micros.record(t_cold - t_scanned);
                    obs.op_cold_scan.rows_in.record(cold_rows_in);
                    obs.op_cold_scan.rows_out.record(n_cold_hits as u64);
                }
                obs.op_ranking.micros.record(t_done - t_cold);
                obs.op_ranking.rows_in.record(n_candidates as u64);
                obs.op_ranking.rows_out.record(hits.len() as u64);
                obs.hits_index.add(n_index_hits as u64);
                obs.hits_delta.add(n_delta_hits as u64);
                obs.hits_cold.add(n_cold_hits as u64);
                obs.shards_probed.record(decision.shards as u64);
                if decision.parallel {
                    obs.fanout_parallel.inc();
                } else {
                    obs.fanout_serial.inc();
                }
                if obs.trace.try_sample() {
                    obs.trace.record(OP_QUERY, t_done - t0, n_candidates as u64);
                }
                // Auto-derive the slow-query threshold from the live p99
                // unless the config pinned a fixed value.
                if self.config.slow_query_micros.is_none()
                    && self.recorder.is_enabled()
                    && n_queries.is_multiple_of(AUTO_THRESHOLD_INTERVAL)
                {
                    let p99 = obs.query_total.snapshot().p99();
                    if p99 > 0 {
                        self.recorder.set_slow_threshold_micros(p99);
                    }
                }
                hits
            }
        };
        root.set_detail(hits.len() as u64);
        hits
    }

    /// [`Self::execute_plan`] behind the plan-keyed result cache. On a
    /// hit the stored result is returned after the entry proves itself
    /// current against `epoch` (see [`cache`]); on a miss the plan
    /// executes normally and the result is stored, stamped with the
    /// epoch it was computed against. With the cache disabled (the
    /// default) this is a plain `execute_plan` call — kept
    /// `inline(always)` with the cache machinery split into
    /// [`Self::execute_plan_via_cache`] so the uncached hot path pays
    /// exactly one load-and-branch and stays byte-and-metric-identical
    /// to the pre-cache engine (the `obs_overhead` guard times this
    /// path against an uninstrumented replica carrying the same
    /// branch).
    #[inline(always)]
    pub(crate) fn execute_plan_cached(
        &self,
        epoch: &Epoch,
        t0: u64,
        plan: &QueryPlan,
    ) -> Vec<SearchHit> {
        match &self.cache {
            None => self.execute_plan(epoch, t0, plan),
            Some(cache) => self.execute_plan_via_cache(cache, epoch, t0, plan),
        }
    }

    /// The cache-enabled arm of [`Self::execute_plan_cached`] —
    /// `inline(never)` so its body (key derivation, striped lookup,
    /// insert) never bloats the cache-off callsites.
    #[inline(never)]
    fn execute_plan_via_cache(
        &self,
        cache: &cache::ResultCache,
        epoch: &Epoch,
        t0: u64,
        plan: &QueryPlan,
    ) -> Vec<SearchHit> {
        if !cache.eligible(plan) {
            return self.execute_plan(epoch, t0, plan);
        }
        let key = PlanKey::of(plan);
        let fingerprint = key.fingerprint();
        match cache.lookup(fingerprint, &key, plan, epoch) {
            cache::Lookup::Hit(hits) => {
                // A cached answer is still a served query: the root span,
                // the query counters, and the total-latency histogram all
                // record it (per-operator telemetry stays miss-only — no
                // operators ran).
                let mut root = self.recorder.guarded_span(OP_QUERY);
                root.set_detail(hits.len() as u64);
                self.queries.fetch_add(1, Ordering::Relaxed);
                let dt = self.clock.now_micros() - t0;
                self.query_micros.fetch_add(dt, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.query_total.record(dt);
                    obs.cache_hits.inc();
                }
                hits
            }
            cache::Lookup::Miss => {
                if let Some(obs) = &self.obs {
                    obs.cache_misses.inc();
                }
                let hits = self.execute_plan(epoch, t0, plan);
                if let cache::Insert::Stored { evicted: true } =
                    cache.insert(fingerprint, key, plan, epoch, &hits)
                {
                    if let Some(obs) = &self.obs {
                        obs.cache_evictions.inc();
                    }
                }
                hits
            }
        }
    }

    /// One-plan entry point: compiles the request, clones the epoch
    /// `Arc` in a momentary read-side critical section, and executes
    /// (through the result cache when enabled).
    pub(crate) fn query(&self, query: &Query, opts: &QueryOptions) -> Vec<SearchHit> {
        // With the wide-event log enabled, queries route through the
        // instrumented executor so each one emits a forensic event. The
        // events-off path (the default) pays exactly this one
        // load-and-branch — no clock reads, mirrored by the obs_overhead
        // baseline replica.
        if self.events.as_ref().is_some_and(|e| e.is_enabled()) {
            return self.query_evented(query, opts, None);
        }
        let t0 = self.clock.now_micros();
        let epoch = self.epoch.read().clone();
        let plan = QueryPlan::compile(query, opts);
        self.execute_plan_cached(&epoch, t0, &plan)
    }

    /// [`Self::query`] behind admission control: sheds instead of
    /// serving when `client_id` is over its token-bucket budget or the
    /// server's in-flight cap is reached. With admission disabled every
    /// request is admitted.
    pub(crate) fn query_admitted(
        &self,
        client_id: u64,
        query: &Query,
        opts: &QueryOptions,
    ) -> Result<Vec<SearchHit>, ShedReason> {
        let Some(admission) = &self.admission else {
            return Ok(self.query(query, opts));
        };
        match admission.admit(client_id) {
            Ok(_permit) => {
                if let Some(obs) = &self.obs {
                    obs.admitted.inc();
                }
                if self.events.as_ref().is_some_and(|e| e.is_enabled()) {
                    // The permit stays held across execution; the event
                    // records the post-decision token balance.
                    let tokens = admission.tokens_remaining(client_id);
                    return Ok(self.query_evented(query, opts, Some(tokens)));
                }
                Ok(self.query(query, opts))
            }
            Err(reason) => {
                if let Some(obs) = &self.obs {
                    match reason {
                        ShedReason::RateLimited => obs.shed_rate_limited.inc(),
                        ShedReason::Overloaded => obs.shed_overloaded.inc(),
                    }
                }
                if self.events.as_ref().is_some_and(|e| e.is_enabled()) {
                    self.emit_shed_event(client_id, query, opts, reason);
                }
                Err(reason)
            }
        }
    }

    /// k-nearest entry point: a radius-expansion loop over successive
    /// plans. Each ring compiles a fresh plan (same filters/rank, wider
    /// boxes, `k = all`) and executes it against a freshly acquired
    /// epoch; the loop stops once `k` hits are found past the settle
    /// radius or the budget is covered.
    pub(crate) fn query_nearest(
        &self,
        t_start: f64,
        t_end: f64,
        center: LatLon,
        k: usize,
        opts: &QueryOptions,
        max_radius_m: f64,
    ) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        // Each expansion round's query span becomes a child of this one.
        let _span = self.recorder.span(OP_QUERY_NEAREST);
        // Below this radius, unexplored segments may still outrank found
        // ones, so k hits are not enough to stop.
        let settle_radius_m = match opts.rank {
            RankMode::Distance => 0.0,
            RankMode::Quality => self.cam.view_radius_m.min(max_radius_m),
        };
        let mut radius = 50.0_f64.min(max_radius_m);
        loop {
            if let Some(obs) = &self.obs {
                obs.nearest_rounds.inc();
            }
            let t0 = self.clock.now_micros();
            let epoch = self.epoch.read().clone();
            let q = Query::new(t_start, t_end, center, radius);
            let mut plan = QueryPlan::compile(&q, opts);
            plan.k = usize::MAX;
            let hits = self.execute_plan_cached(&epoch, t0, &plan);
            if (hits.len() >= k && radius >= settle_radius_m) || radius >= max_radius_m {
                let mut hits = hits;
                hits.truncate(k);
                return hits;
            }
            radius = (radius * 2.0).min(max_radius_m);
        }
    }

    /// Batch entry point: compiles one plan per query and fans them
    /// across the executor against **one** pinned epoch, so a publish
    /// landing mid-batch cannot make later queries see different data
    /// than earlier ones. Result order matches input order and is
    /// byte-identical in serial and parallel mode.
    pub(crate) fn query_batch(
        &self,
        queries: &[Query],
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<Vec<SearchHit>> {
        let epoch = self.epoch.read().clone();
        let one = |q: &Query| {
            let t0 = self.clock.now_micros();
            let plan = QueryPlan::compile(q, opts);
            self.execute_plan_cached(&epoch, t0, &plan)
        };
        // Clamp to the host: a batch "parallelism" request beyond the
        // machine's cores would only add scheduling churn.
        let threads = threads.min(fanout::hw_threads());
        if threads <= 1 || self.exec.is_serial() {
            return queries.iter().map(one).collect();
        }
        self.exec.par_map(queries, one)
    }

    /// Exports every stored record, pending delta included.
    pub(crate) fn export_records(&self) -> Vec<SegmentRecord> {
        let epoch = self.epoch.read().clone();
        let mut out: Vec<SegmentRecord> = epoch.core.store.iter().copied().collect();
        out.extend(epoch.delta_records().map(|d| d.rec));
        out
    }

    /// Current statistics snapshot.
    pub(crate) fn stats(&self) -> ServerStats {
        let (lock_wait, index_scan, ranking, query) = match &self.obs {
            Some(o) => (
                o.lock_wait.snapshot(),
                o.index_scan.snapshot(),
                o.ranking.snapshot(),
                o.query_total.snapshot(),
            ),
            None => (
                swag_obs::HistogramSnapshot::empty(),
                swag_obs::HistogramSnapshot::empty(),
                swag_obs::HistogramSnapshot::empty(),
                swag_obs::HistogramSnapshot::empty(),
            ),
        };
        let epoch = self.epoch.read().clone();
        ServerStats {
            segments: epoch.core.store.len() + epoch.delta_len,
            store_slots: epoch.core.store.total() + epoch.delta_len,
            shards: epoch.core.index.shard_count(),
            pending_delta: epoch.delta_len,
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            query_micros_total: self.query_micros.load(Ordering::Relaxed),
            lock_wait_micros: lock_wait,
            index_scan_micros: index_scan,
            ranking_micros: ranking,
            query_micros: query,
        }
    }
}
