//! The write path: staging, snapshot publishing, retention, compaction,
//! retraction, and subscription bookkeeping.
//!
//! Writers append into the delta under a short write lock; every write
//! republishes the epoch (read-your-writes), and once the delta reaches
//! [`crate::server::ServerConfig::publish_threshold`] records the
//! writer folds it into a new snapshot, STR-bulk-rebuilding only the
//! time shards the batch touched. Retention expires old shards at
//! publish time and retires the dropped segments from the store, which
//! compacts once enough of it is tombstones.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use swag_core::{RepFov, UploadBatch};
use swag_store::WalOp;

use crate::index::fov_box;
use crate::query::{Query, QueryOptions};
use crate::ranking::SearchHit;
use crate::shard::ShardedFovIndex;
use crate::store::{SegmentId, SegmentRecord, SegmentRef, SegmentStore};
use crate::subscribe::{SubscriptionId, SubscriptionSet};

use super::epoch::{CacheStamp, DeltaRecord, Epoch, SnapshotCore};
use super::plan::{OP_INGEST, OP_PUBLISH};
use super::Engine;

/// Don't bother compacting stores with fewer tombstones than this.
const COMPACT_DEAD_FLOOR: usize = 32;

/// Writer-side state, guarded by one mutex. `core` mirrors the epoch's
/// core; store/index clones taken from it are copy-on-write cheap.
pub(crate) struct Writer {
    pub(crate) core: Arc<SnapshotCore>,
    pub(crate) delta: Vec<Arc<[DeltaRecord]>>,
    pub(crate) delta_len: usize,
    pub(crate) subscriptions: SubscriptionSet,
    /// Latest `t_end` ever ingested — the retention clock.
    pub(crate) max_t_end: f64,
    /// Cache invalidation state published with every epoch (see
    /// [`CacheStamp`] for what each piece invalidates).
    pub(crate) stamp: CacheStamp,
}

impl Writer {
    /// Builds the epoch the current writer state publishes. Every
    /// publish path goes through this so no constructor can forget the
    /// cache stamp.
    pub(crate) fn make_epoch(&self) -> Arc<Epoch> {
        Arc::new(Epoch {
            core: self.core.clone(),
            delta: Arc::from(self.delta.as_slice()),
            delta_len: self.delta_len,
            stamp: self.stamp.clone(),
        })
    }

    /// Bumps the cache version of every time-shard bucket `[t0, t1]`
    /// spans (the same `floor(t / width)` bucketing the sharded index
    /// uses), invalidating cached results that probed those buckets.
    fn bump_span(&mut self, width: f64, t0: f64, t1: f64) {
        let versions = Arc::make_mut(&mut self.stamp.shard_versions);
        for bucket in ((t0 / width).floor() as i64)..=((t1 / width).floor() as i64) {
            *versions.entry(bucket).or_insert(0) += 1;
        }
    }

    /// Bumps explicit bucket ids (the retention-drop path).
    fn bump_buckets(&mut self, buckets: &[i64]) {
        if buckets.is_empty() {
            return;
        }
        let versions = Arc::make_mut(&mut self.stamp.shard_versions);
        for bucket in buckets {
            *versions.entry(*bucket).or_insert(0) += 1;
        }
    }
}

impl Engine {
    /// Builds the next pending record (assigning the next dense id),
    /// pre-computes its index box, and offers it to standing queries.
    /// The caller freezes the returned records into one delta slice.
    fn stage(&self, w: &mut Writer, rep: RepFov, source: SegmentRef) -> DeltaRecord {
        let next = w.core.store.total() + w.delta_len;
        let id = SegmentId(u32::try_from(next).expect("store capacity exceeded"));
        w.delta_len += 1;
        w.max_t_end = w.max_t_end.max(rep.t_end);
        w.subscriptions.offer(&rep, id, source, &self.cam);
        DeltaRecord {
            rec: SegmentRecord { id, rep, source },
            bbox: fov_box(&rep),
        }
    }

    /// Publishes the current writer state: folds the delta into a new
    /// snapshot once it is large enough, otherwise republishes the same
    /// core with the updated delta (read-your-writes).
    fn publish(&self, w: &mut Writer) {
        if w.delta_len >= self.config.publish_threshold {
            self.publish_full(w, None);
        } else {
            // Same core, grown delta, same stamp: cached entries stay
            // valid and lazily test only the appended records.
            *self.epoch.write() = w.make_epoch();
        }
    }

    /// Folds the delta into a fresh snapshot: appends to the (COW) store,
    /// STR-rebuilds the touched shards, applies retention and compaction,
    /// and publishes the result. Returns how many segments retention
    /// dropped.
    fn publish_full(&self, w: &mut Writer, extra_horizon: Option<f64>) -> usize {
        let mut span = self.recorder.span(OP_PUBLISH);
        let t0 = self.clock.now_micros();
        span.set_detail(w.delta_len as u64);
        let delta_len = w.delta_len;
        let prev_published = w.core.published_at_micros;

        let mut store = w.core.store.clone();
        let mut index = w.core.index.clone();
        let mut staged: Vec<(RepFov, SegmentId)> = Vec::with_capacity(delta_len);
        for batch in w.delta.drain(..) {
            for d in batch.iter() {
                let id = store.push(d.rec.rep, d.rec.source);
                debug_assert_eq!(id, d.rec.id, "delta ids must stay dense");
                staged.push((d.rec.rep, id));
            }
        }
        w.delta_len = 0;
        index.bulk_insert_exec(&self.exec, &staged);

        // Cache invalidation: the delta was folded (a fresh generation),
        // and every bucket the folded records landed in changed.
        w.stamp.delta_gen += 1;
        let width = self.config.shard_width_s;
        for (rep, _) in &staged {
            w.bump_span(width, rep.t_start, rep.t_end);
        }

        // Retention: expire shards past the horizon, retire the segments
        // that no longer exist in any shard.
        let mut horizon = extra_horizon;
        if let Some(h) = self.config.retention_horizon_s {
            let auto = w.max_t_end - h;
            if auto.is_finite() {
                horizon = Some(horizon.map_or(auto, |e| e.max(auto)));
            }
        }
        let mut dropped = 0usize;
        if let Some(h) = horizon {
            let report = index.expire_before(h);
            w.bump_buckets(&report.buckets_dropped);
            // Cold-tier demotion: before the expired segments become
            // tombstones, write them (grouped by home bucket) to
            // immutable cold runs so `cold_scan` can still reach them.
            // Best-effort — a failed demotion never fails the publish.
            if let Some(durability) = &self.durability {
                if durability.config().cold_tier && !report.segments_dropped.is_empty() {
                    let mut by_bucket: BTreeMap<i64, Vec<(RepFov, SegmentRef)>> = BTreeMap::new();
                    for id in &report.segments_dropped {
                        let rec = store.get(*id);
                        by_bucket
                            .entry(swag_store::home_bucket(rec.rep.t_start, width))
                            .or_default()
                            .push((rec.rep, rec.source));
                    }
                    for (bucket, records) in &by_bucket {
                        let _ = durability.demote(*bucket, records);
                    }
                }
            }
            for id in &report.segments_dropped {
                if store.retire(*id) {
                    dropped += 1;
                }
            }
        }

        // Compaction: once enough of the store is tombstones, re-pack the
        // live records densely and rebuild the index. Ids are
        // server-internal; external references use `SegmentRef`.
        if store.dead() >= COMPACT_DEAD_FLOOR
            && store.dead() as f64 > self.config.compact_dead_fraction * store.total() as f64
        {
            let mut fresh = SegmentStore::new();
            let mut items = Vec::with_capacity(store.len());
            for rec in store.iter() {
                let id = fresh.push(rec.rep, rec.source);
                items.push((rec.rep, id));
            }
            let mut rebuilt = index.fresh_like();
            rebuilt.bulk_insert_exec(&self.exec, &items);
            store = fresh;
            index = rebuilt;
            // Compaction reassigns dense SegmentIds, which appear in
            // every cached SearchHit — nothing cached survives.
            w.stamp.global_gen += 1;
        }

        let now = self.clock.now_micros();
        let core = Arc::new(SnapshotCore {
            store,
            index,
            published_at_micros: now,
        });
        w.core = core;
        *self.epoch.write() = w.make_epoch();
        // Hand the folded store to the background snapshot worker. Every
        // WAL op so far was appended under this writer lock before its
        // effect landed, so the rotated floor covers exactly the ops the
        // store clone reflects.
        if let Some(durability) = &self.durability {
            durability.on_publish(w.core.store.clone(), w.stamp.shard_versions.clone());
        }
        if let Some(obs) = &self.obs {
            obs.publishes.inc();
            obs.rebuild_micros.record(now.saturating_sub(t0));
            obs.snapshot_age.record(now.saturating_sub(prev_published));
            obs.delta_size.record(delta_len as u64);
            obs.retention_dropped.add(dropped as u64);
        }
        dropped
    }

    /// Ingests one upload batch, returning the assigned segment ids.
    pub(crate) fn ingest_batch(&self, batch: &UploadBatch) -> Vec<SegmentId> {
        let mut span = self.recorder.span(OP_INGEST);
        span.set_detail(batch.reps.len() as u64);
        let t0 = if self.obs.is_some() {
            self.clock.now_micros()
        } else {
            0
        };
        let mut w = self.writer.lock();
        let mut staged = Vec::with_capacity(batch.reps.len());
        let ids = batch
            .reps
            .iter()
            .enumerate()
            .map(|(i, rep)| {
                let source = SegmentRef {
                    provider_id: batch.provider_id,
                    video_id: batch.video_id,
                    segment_idx: i as u32,
                };
                // WAL-append before staging: a record is never visible
                // in memory without a durable (or in-flight) log frame.
                if let Some(durability) = &self.durability {
                    let _ = durability.append(&WalOp::Append { rep: *rep, source });
                }
                let d = self.stage(&mut w, *rep, source);
                let id = d.rec.id;
                staged.push(d);
                id
            })
            .collect();
        if !staged.is_empty() {
            w.delta.push(Arc::from(staged));
        }
        self.publish(&mut w);
        drop(w);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.segments.add(batch.reps.len() as u64);
            obs.ingest.record(self.clock.now_micros() - t0);
        }
        ids
    }

    /// Ingests a single representative FoV.
    pub(crate) fn ingest_one(&self, rep: RepFov, source: SegmentRef) -> SegmentId {
        let mut w = self.writer.lock();
        if let Some(durability) = &self.durability {
            let _ = durability.append(&WalOp::Append { rep, source });
        }
        let d = self.stage(&mut w, rep, source);
        let id = d.rec.id;
        w.delta.push(Arc::from(vec![d]));
        self.publish(&mut w);
        drop(w);
        if let Some(obs) = &self.obs {
            obs.segments.inc();
        }
        id
    }

    /// Registers a standing query (compiling its plan once).
    pub(crate) fn subscribe(&self, query: Query, opts: QueryOptions) -> SubscriptionId {
        self.writer.lock().subscriptions.subscribe(query, opts)
    }

    /// Cancels a standing query.
    pub(crate) fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.writer.lock().subscriptions.unsubscribe(id)
    }

    /// Drains a standing query's accumulated matches (arrival order).
    pub(crate) fn poll_subscription(&self, id: SubscriptionId) -> Vec<SearchHit> {
        self.writer.lock().subscriptions.poll(id)
    }

    /// Retracts every segment a provider contributed. Returns how many
    /// segments were removed; the retraction publishes a fresh snapshot
    /// immediately.
    pub(crate) fn retract_provider(&self, provider_id: u64) -> usize {
        let mut w = self.writer.lock();
        // Fold pending records into the core first: retraction then only
        // has to retire published records, and delta ids stay dense.
        if w.delta_len > 0 {
            self.publish_full(&mut w, None);
        }
        // Logged after the fold (whose snapshot floor must not cover an
        // op its store clone does not reflect) and before the mutation.
        if let Some(durability) = &self.durability {
            let _ = durability.append(&WalOp::Retract { provider_id });
        }

        let victims: Vec<(RepFov, SegmentId)> = w
            .core
            .store
            .iter()
            .filter(|rec| rec.source.provider_id == provider_id)
            .map(|rec| (rec.rep, rec.id))
            .collect();
        let removed = victims.len();
        if !victims.is_empty() {
            let mut store = w.core.store.clone();
            let mut index = w.core.index.clone();
            let width = self.config.shard_width_s;
            for (rep, id) in &victims {
                let unindexed = index.remove(rep, *id);
                debug_assert!(unindexed, "index and store disagreed on {id:?}");
                store.retire(*id);
                // Cached results over these windows held the victim.
                w.bump_span(width, rep.t_start, rep.t_end);
            }
            let core = Arc::new(SnapshotCore {
                store,
                index,
                published_at_micros: w.core.published_at_micros,
            });
            w.core = core;
            *self.epoch.write() = w.make_epoch();
            // Make the retraction snapshot-durable promptly (it is the
            // §I privacy path) instead of waiting for the next fold.
            if let Some(durability) = &self.durability {
                durability.on_publish(w.core.store.clone(), w.stamp.shard_versions.clone());
            }
            if let Some(obs) = &self.obs {
                obs.publishes.inc();
            }
        }
        removed
    }

    /// Expires everything older than `horizon_s`: publishes a shrunken
    /// snapshot immediately and returns how many segments were dropped.
    pub(crate) fn expire_before(&self, horizon_s: f64) -> usize {
        let mut w = self.writer.lock();
        // Logged before the publish so the fold's snapshot floor covers
        // an op whose effect its store clone already reflects. (The
        // automatic config-driven horizon is deliberately NOT logged:
        // replay re-derives it from the same config and ingest order.)
        if let Some(durability) = &self.durability {
            let _ = durability.append(&WalOp::Expire { horizon_s });
        }
        self.publish_full(&mut w, Some(horizon_s))
    }

    /// Replaces the (empty) published snapshot with one STR-bulk-loaded
    /// from `records` (the restore path behind `from_records`).
    pub(crate) fn bootstrap(&self, records: Vec<(RepFov, SegmentRef)>) {
        let mut w = self.writer.lock();
        let mut store = SegmentStore::new();
        let mut items = Vec::with_capacity(records.len());
        let mut max_t_end = f64::NEG_INFINITY;
        for (rep, source) in records {
            let id = store.push(rep, source);
            items.push((rep, id));
            max_t_end = max_t_end.max(rep.t_end);
        }
        let mut index = ShardedFovIndex::new(self.config.shard_width_s, self.config.index);
        index.set_recorder(self.recorder.clone());
        index.bulk_insert_exec(&self.exec, &items);
        let core = Arc::new(SnapshotCore {
            store,
            index,
            published_at_micros: self.clock.now_micros(),
        });
        w.core = core;
        w.max_t_end = max_t_end;
        // The world was replaced wholesale; nothing cached survives.
        w.stamp.global_gen += 1;
        *self.epoch.write() = w.make_epoch();
    }
}
