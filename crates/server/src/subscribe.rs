//! Standing queries: investigation-style subscriptions.
//!
//! A querier watching a scene ("notify me about any new footage of this
//! corner between 14:00 and 15:00") registers a **standing query**; every
//! subsequently ingested segment that matches is queued in the
//! subscription's mailbox until polled. This is the push counterpart of
//! the paper's pull retrieval, reusing the same filtering semantics
//! ([`crate::ranking`]).
//!
//! Matching happens inline at ingest against each active subscription —
//! segment arrival rates are modest (tens per second city-wide) and the
//! per-pair test is a few comparisons, so no inverted index is needed
//! until subscription counts reach the tens of thousands.

use swag_core::{CameraProfile, RepFov};

use crate::engine::plan::QueryPlan;
use crate::index::fov_box;
use crate::query::{Query, QueryOptions};
use crate::ranking::{quality_score, SearchHit};
use crate::store::{SegmentId, SegmentRef};

/// Identifier of a standing query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// One registered standing query and its mailbox. The plan — query
/// boxes and filter chain — is compiled once at registration; matching
/// at ingest reuses the planner's filter stage, so standing queries and
/// pull queries can never diverge. (The plan's rank/top-k stage does
/// not apply here: mailboxes accumulate in arrival order, unbounded.)
#[derive(Debug)]
struct Subscription {
    id: SubscriptionId,
    plan: QueryPlan,
    mailbox: Vec<SearchHit>,
    active: bool,
}

/// The subscription registry (owned by the server behind its lock).
#[derive(Debug, Default)]
pub struct SubscriptionSet {
    subs: Vec<Subscription>,
    next_id: u64,
}

impl SubscriptionSet {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a standing query, compiling its plan once.
    pub fn subscribe(&mut self, query: Query, opts: QueryOptions) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        self.subs.push(Subscription {
            id,
            plan: QueryPlan::compile(&query, &opts),
            mailbox: Vec::new(),
            active: true,
        });
        id
    }

    /// Cancels a subscription; returns whether it existed and was active.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        match self.subs.iter_mut().find(|s| s.id == id) {
            Some(s) if s.active => {
                s.active = false;
                s.mailbox.clear();
                true
            }
            _ => false,
        }
    }

    /// Number of active subscriptions.
    pub fn active_count(&self) -> usize {
        self.subs.iter().filter(|s| s.active).count()
    }

    /// Number of compiled plans held, cancelled subscriptions included —
    /// the registry never shrinks, so this gauge (unlike
    /// [`Self::active_count`]) tracks the memory actually resident and
    /// surfaces unsubscribe-without-forget leaks.
    pub fn compiled_plans(&self) -> usize {
        self.subs.len()
    }

    /// Offers a freshly ingested segment to every active subscription.
    pub fn offer(
        &mut self,
        rep: &RepFov,
        seg_id: SegmentId,
        source: SegmentRef,
        cam: &CameraProfile,
    ) {
        let rep_box = fov_box(rep);
        for sub in self.subs.iter_mut().filter(|s| s.active) {
            if !sub.plan.boxes.intersects(&rep_box) {
                continue;
            }
            if !sub.plan.filters.accepts(rep, cam, &sub.plan.query) {
                continue;
            }
            sub.mailbox.push(SearchHit {
                id: seg_id,
                source,
                rep: *rep,
                distance_m: rep.fov.p.distance_m(sub.plan.query.center),
                quality: quality_score(rep, cam, &sub.plan.query),
            });
        }
    }

    /// Drains a subscription's mailbox (arrival order). Returns an empty
    /// vector for unknown or cancelled ids.
    pub fn poll(&mut self, id: SubscriptionId) -> Vec<SearchHit> {
        match self.subs.iter_mut().find(|s| s.id == id && s.active) {
            Some(s) => std::mem::take(&mut s.mailbox),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn rep_at(dist_south: f64, theta: f64, t0: f64) -> RepFov {
        RepFov::new(
            t0,
            t0 + 5.0,
            Fov::new(center().offset(180.0, dist_south), theta),
        )
    }

    fn offer(set: &mut SubscriptionSet, rep: RepFov, i: u32) {
        set.offer(
            &rep,
            SegmentId(i),
            SegmentRef {
                provider_id: u64::from(i),
                video_id: 0,
                segment_idx: 0,
            },
            &CameraProfile::smartphone(),
        );
    }

    #[test]
    fn matching_segments_land_in_the_mailbox() {
        let mut set = SubscriptionSet::new();
        let id = set.subscribe(
            Query::new(0.0, 100.0, center(), 100.0),
            QueryOptions::default(),
        );
        offer(&mut set, rep_at(20.0, 0.0, 10.0), 1); // close, facing centre
        offer(&mut set, rep_at(20.0, 180.0, 10.0), 2); // facing away
        offer(&mut set, rep_at(5000.0, 0.0, 10.0), 3); // far away
        offer(&mut set, rep_at(20.0, 0.0, 500.0), 4); // outside the window
        let hits = set.poll(id);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].source.provider_id, 1);
        // Mailbox drained.
        assert!(set.poll(id).is_empty());
    }

    #[test]
    fn multiple_subscriptions_fan_out() {
        let mut set = SubscriptionSet::new();
        let near = set.subscribe(
            Query::new(0.0, 100.0, center(), 50.0),
            QueryOptions::default(),
        );
        let wide = set.subscribe(
            Query::new(0.0, 100.0, center(), 2000.0),
            QueryOptions {
                direction_filter: false,
                ..QueryOptions::default()
            },
        );
        offer(&mut set, rep_at(100.0, 0.0, 1.0), 1);
        assert!(set.poll(near).is_empty());
        assert_eq!(set.poll(wide).len(), 1);
        assert_eq!(set.active_count(), 2);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut set = SubscriptionSet::new();
        let id = set.subscribe(
            Query::new(0.0, 100.0, center(), 100.0),
            QueryOptions::default(),
        );
        assert!(set.unsubscribe(id));
        assert!(!set.unsubscribe(id), "double cancel is a no-op");
        offer(&mut set, rep_at(20.0, 0.0, 10.0), 1);
        assert!(set.poll(id).is_empty());
        assert_eq!(set.active_count(), 0);
    }

    #[test]
    fn poll_unknown_id_is_empty() {
        let mut set = SubscriptionSet::new();
        assert!(set.poll(SubscriptionId(99)).is_empty());
    }
}
