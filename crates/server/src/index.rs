//! The spatio-temporal FoV index (paper §V-A).
//!
//! Each representative FoV becomes a 3-D "rectangle" that is degenerate in
//! space and extended in time: `min = [lng, lat, t_s]`,
//! `max = [lng, lat, t_e]` — a line segment in (longitude, latitude, time)
//! space, exactly as the paper stores it. Queries become boxes covering the
//! rescaled radius in both spatial dimensions and the requested interval in
//! time.
//!
//! Two interchangeable implementations share the [`FovIndex`] interface:
//! the R-tree ([`IndexKind::RTree`]) and the naive linear scan the paper
//! benchmarks against in Fig. 6(c) ([`IndexKind::Linear`]).

use swag_core::RepFov;
use swag_geo::{LatLon, METERS_PER_DEG};
use swag_rtree::{Aabb, RTree, RTreeConfig, SearchStats};

use crate::query::Query;
use crate::store::SegmentId;

/// Which index structure backs a [`FovIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// 3-D R-tree (the paper's design).
    #[default]
    RTree,
    /// Naive linear scan over all records (the Fig. 6(c) baseline).
    Linear,
}

/// The FoV rectangle of a representative FoV (paper §V-A).
pub fn fov_box(rep: &RepFov) -> Aabb<3> {
    Aabb::new(
        [rep.fov.p.lng, rep.fov.p.lat, rep.t_start],
        [rep.fov.p.lng, rep.fov.p.lat, rep.t_end],
    )
}

/// The query rectangle(s) of a request (paper §V-B): the radius is
/// converted to longitude/latitude scales over the query's latitude band.
///
/// Up to two boxes come back because longitude wraps at ±180°: a query
/// centred near the antimeridian produces one box ending at 180° and a
/// second starting at −180°. Searching both (and deduplicating) is what
/// makes retrieval correct across the meridian — a single box extending
/// past ±180° can never intersect segments stored on the other side.
///
/// The longitude scale is converted at the query centre (the paper's
/// rule). If the box touches a pole — where one metre spans unboundedly
/// many degrees of longitude and that conversion degenerates — or the
/// radius covers more than half the globe in longitude, the box covers
/// the full −180..180 range instead of silently degenerating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryBoxes {
    boxes: [Aabb<3>; 2],
    n: usize,
}

impl QueryBoxes {
    /// The boxes to search (one, or two when the query wraps ±180°).
    #[inline]
    pub fn as_slice(&self) -> &[Aabb<3>] {
        &self.boxes[..self.n]
    }

    /// Whether any of the boxes intersects `b`.
    #[inline]
    pub fn intersects(&self, b: &Aabb<3>) -> bool {
        self.as_slice().iter().any(|qb| qb.intersects(b))
    }
}

/// Builds the query box set for a request (see [`QueryBoxes`]).
pub fn query_boxes(q: &Query) -> QueryBoxes {
    let r_lat = q.radius_m / METERS_PER_DEG;
    let lat_min = (q.center.lat - r_lat).max(-90.0);
    let lat_max = (q.center.lat + r_lat).min(90.0);
    let coslat = q.center.lat.to_radians().cos().max(1e-12);
    let r_lng = q.radius_m / (METERS_PER_DEG * coslat);
    let full_wrap = lat_min <= -90.0 + 1e-12 || lat_max >= 90.0 - 1e-12 || r_lng >= 180.0;
    let one = |lng_min: f64, lng_max: f64| {
        Aabb::new([lng_min, lat_min, q.t_start], [lng_max, lat_max, q.t_end])
    };
    if full_wrap {
        return QueryBoxes {
            boxes: [one(-180.0, 180.0); 2],
            n: 1,
        };
    }
    let lng_min = q.center.lng - r_lng;
    let lng_max = q.center.lng + r_lng;
    if lng_min < -180.0 {
        // Wraps west past the antimeridian: the overflow re-enters at +180.
        QueryBoxes {
            boxes: [one(-180.0, lng_max), one(lng_min + 360.0, 180.0)],
            n: 2,
        }
    } else if lng_max > 180.0 {
        // Wraps east past the antimeridian.
        QueryBoxes {
            boxes: [one(lng_min, 180.0), one(-180.0, lng_max - 360.0)],
            n: 2,
        }
    } else {
        QueryBoxes {
            boxes: [one(lng_min, lng_max); 2],
            n: 1,
        }
    }
}

/// A spatio-temporal index over segment ids.
#[derive(Debug, Clone)]
pub enum FovIndex {
    /// R-tree backed.
    RTree(RTree<SegmentId, 3>),
    /// Linear-scan backed.
    Linear(Vec<(Aabb<3>, SegmentId)>),
}

impl FovIndex {
    /// Creates an empty index of the requested kind.
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::RTree => FovIndex::RTree(RTree::new()),
            IndexKind::Linear => FovIndex::Linear(Vec::new()),
        }
    }

    /// Creates an R-tree index with a custom configuration.
    pub fn with_rtree_config(config: RTreeConfig) -> Self {
        FovIndex::RTree(RTree::with_config(config))
    }

    /// Bulk loads an R-tree index from `(rep, id)` pairs (STR packing).
    pub fn bulk_load(items: Vec<(RepFov, SegmentId)>) -> Self {
        FovIndex::RTree(RTree::bulk_load(
            items
                .into_iter()
                .map(|(rep, id)| (fov_box(&rep), id))
                .collect(),
        ))
    }

    /// Bulk loads an index of the given kind from pre-computed FoV boxes
    /// (used by the sharded index's publish-time shard rebuilds).
    pub fn bulk_from_boxes(kind: IndexKind, items: Vec<(Aabb<3>, SegmentId)>) -> Self {
        match kind {
            IndexKind::RTree => FovIndex::RTree(RTree::bulk_load(items)),
            IndexKind::Linear => FovIndex::Linear(items),
        }
    }

    /// [`Self::bulk_from_boxes`] with the R-tree's STR leaf tiling fanned
    /// out on `exec`; the resulting index is identical to the serial one.
    pub fn bulk_from_boxes_par(
        exec: &swag_exec::Executor,
        kind: IndexKind,
        items: Vec<(Aabb<3>, SegmentId)>,
    ) -> Self {
        match kind {
            IndexKind::RTree => FovIndex::RTree(RTree::bulk_load_par(exec, items)),
            IndexKind::Linear => FovIndex::Linear(items),
        }
    }

    /// Builds a new index holding this index's items plus `more`, leaving
    /// `self` untouched. R-tree shards are STR re-packed (old + new
    /// together); linear shards are copied and extended.
    pub fn bulk_extend(&self, more: Vec<(Aabb<3>, SegmentId)>) -> Self {
        match self {
            FovIndex::RTree(t) => FovIndex::RTree(t.bulk_extend(more)),
            FovIndex::Linear(v) => {
                let mut v = v.clone();
                v.extend(more);
                FovIndex::Linear(v)
            }
        }
    }

    /// [`Self::bulk_extend`] with the re-pack's STR leaf tiling fanned out
    /// on `exec`; the resulting index is identical to the serial one.
    pub fn bulk_extend_par(
        &self,
        exec: &swag_exec::Executor,
        more: Vec<(Aabb<3>, SegmentId)>,
    ) -> Self {
        match self {
            FovIndex::RTree(t) => FovIndex::RTree(t.bulk_extend_par(exec, more)),
            FovIndex::Linear(_) => self.bulk_extend(more),
        }
    }

    /// Which kind of index this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            FovIndex::RTree(_) => IndexKind::RTree,
            FovIndex::Linear(_) => IndexKind::Linear,
        }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        match self {
            FovIndex::RTree(t) => t.len(),
            FovIndex::Linear(v) => v.len(),
        }
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits every indexed `(box, id)` pair in unspecified order.
    pub fn for_each_item(&self, mut f: impl FnMut(&Aabb<3>, SegmentId)) {
        match self {
            FovIndex::RTree(t) => {
                for (b, id) in t.iter() {
                    f(b, *id);
                }
            }
            FovIndex::Linear(v) => {
                for (b, id) in v {
                    f(b, *id);
                }
            }
        }
    }

    /// Indexes one representative FoV.
    pub fn insert(&mut self, rep: &RepFov, id: SegmentId) {
        let b = fov_box(rep);
        match self {
            FovIndex::RTree(t) => t.insert(b, id),
            FovIndex::Linear(v) => v.push((b, id)),
        }
    }

    /// All segment ids whose FoV rectangle intersects the query rectangle
    /// (spatial *and* temporal overlap, §V-B). Queries wrapping the ±180°
    /// antimeridian search both half-boxes; results are deduplicated.
    pub fn candidates(&self, q: &Query) -> Vec<SegmentId> {
        self.candidates_in(&query_boxes(q))
    }

    /// [`Self::candidates`] against an already-built query box set.
    pub fn candidates_in(&self, boxes: &QueryBoxes) -> Vec<SegmentId> {
        let mut out: Vec<SegmentId> = Vec::new();
        self.candidates_into(boxes, &mut out);
        if boxes.as_slice().len() > 1 {
            // A degenerate FoV point sitting exactly on ±180° could fall
            // into both half-boxes.
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    /// Appends raw (not antimeridian-deduplicated) matches to `out`.
    /// Callers that accumulate several shards into one buffer sort and
    /// deduplicate once at the end, which subsumes the two-box dedup.
    pub fn candidates_into(&self, boxes: &QueryBoxes, out: &mut Vec<SegmentId>) {
        for qb in boxes.as_slice() {
            match self {
                FovIndex::RTree(t) => out.extend(t.search(qb).into_iter().copied()),
                FovIndex::Linear(v) => out.extend(
                    v.iter()
                        .filter(|(b, _)| b.intersects(qb))
                        .map(|(_, id)| *id),
                ),
            }
        }
    }

    /// [`Self::candidates`] that also accumulates traversal counters into
    /// `stats` (used by the instrumented server query path). The linear
    /// scan reports itself as one flat "leaf" covering every record.
    pub fn candidates_with_stats(&self, q: &Query, stats: &mut SearchStats) -> Vec<SegmentId> {
        self.candidates_with_stats_in(&query_boxes(q), stats)
    }

    /// [`Self::candidates_with_stats`] against an already-built query box
    /// set (the plan-driven query path builds boxes once per plan).
    pub fn candidates_with_stats_in(
        &self,
        boxes: &QueryBoxes,
        stats: &mut SearchStats,
    ) -> Vec<SegmentId> {
        let mut out: Vec<SegmentId> = Vec::new();
        self.candidates_with_stats_into(boxes, &mut out, stats);
        if boxes.as_slice().len() > 1 {
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    /// [`Self::candidates_into`] accumulating traversal counters into
    /// `stats`: appends raw (not antimeridian-deduplicated) matches to
    /// `out`. Counters are recorded during traversal — before any dedup
    /// — so totals match [`Self::candidates_with_stats_in`] exactly.
    pub fn candidates_with_stats_into(
        &self,
        boxes: &QueryBoxes,
        out: &mut Vec<SegmentId>,
        stats: &mut SearchStats,
    ) {
        for qb in boxes.as_slice() {
            match self {
                FovIndex::RTree(t) => {
                    t.search_with_stats(qb, stats, |_mbr, id| out.push(*id));
                }
                FovIndex::Linear(v) => {
                    let before = out.len();
                    out.extend(
                        v.iter()
                            .filter(|(b, _)| b.intersects(qb))
                            .map(|(_, id)| *id),
                    );
                    stats.nodes_visited += 1;
                    stats.leaves_scanned += 1;
                    stats.items_tested += v.len() as u64;
                    stats.items_matched += (out.len() - before) as u64;
                }
            }
        }
    }

    /// Removes one indexed segment (used when providers retract videos).
    pub fn remove(&mut self, rep: &RepFov, id: SegmentId) -> bool {
        let b = fov_box(rep);
        match self {
            FovIndex::RTree(t) => t.remove(&b, |&v| v == id).is_some(),
            FovIndex::Linear(v) => {
                if let Some(pos) = v.iter().position(|(bb, vid)| *bb == b && *vid == id) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Convenience: meters of spatial slack to add when converting positions
/// near the query centre (used by tests).
pub fn lat_of(center: LatLon, north_m: f64) -> f64 {
    center.lat + north_m / METERS_PER_DEG
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;

    fn rep_at(north_m: f64, east_m: f64, t0: f64, t1: f64) -> RepFov {
        let p = LatLon::new(40.0, 116.32).offset_by(swag_geo::Vec2::new(east_m, north_m));
        RepFov::new(t0, t1, Fov::new(p, 0.0))
    }

    fn q(radius_m: f64, t0: f64, t1: f64) -> Query {
        Query::new(t0, t1, LatLon::new(40.0, 116.32), radius_m)
    }

    #[test]
    fn fov_box_is_degenerate_in_space() {
        let r = rep_at(0.0, 0.0, 5.0, 9.0);
        let b = fov_box(&r);
        assert_eq!(b.min[0], b.max[0]);
        assert_eq!(b.min[1], b.max[1]);
        assert_eq!((b.min[2], b.max[2]), (5.0, 9.0));
    }

    #[test]
    fn query_box_covers_radius() {
        let query = q(100.0, 0.0, 10.0);
        let b = query_boxes(&query);
        assert_eq!(b.as_slice().len(), 1);
        // The box must contain positions 100 m in every direction.
        for (n, e) in [(99.0, 0.0), (-99.0, 0.0), (0.0, 99.0), (0.0, -99.0)] {
            let r = rep_at(n, e, 5.0, 6.0);
            assert!(b.intersects(&fov_box(&r)), "offset ({n}, {e})");
        }
        // ...but not 150 m away.
        let far = rep_at(150.0, 0.0, 5.0, 6.0);
        assert!(!b.intersects(&fov_box(&far)));
    }

    fn rep_at_lnglat(lng: f64, lat: f64, t0: f64, t1: f64) -> RepFov {
        RepFov::new(t0, t1, Fov::new(LatLon::new(lat, lng), 0.0))
    }

    #[test]
    fn antimeridian_query_wraps_east() {
        // Query centred just west of +180°; the segment sits just east of
        // the wrap, i.e. at longitude −179.999°. Pre-fix, the single query
        // box extended past +180 and could never intersect it.
        for kind in [IndexKind::RTree, IndexKind::Linear] {
            let mut idx = FovIndex::new(kind);
            idx.insert(&rep_at_lnglat(-179.999, 10.0, 0.0, 10.0), SegmentId(0));
            idx.insert(&rep_at_lnglat(179.999, 10.0, 0.0, 10.0), SegmentId(1));
            idx.insert(&rep_at_lnglat(0.0, 10.0, 0.0, 10.0), SegmentId(2));
            let query = Query::new(0.0, 10.0, LatLon::new(10.0, 179.999), 1000.0);
            let boxes = query_boxes(&query);
            assert_eq!(boxes.as_slice().len(), 2, "{kind:?}: should wrap");
            let mut hits = idx.candidates(&query);
            hits.sort();
            assert_eq!(hits, vec![SegmentId(0), SegmentId(1)], "{kind:?}");
        }
    }

    #[test]
    fn antimeridian_query_wraps_west() {
        for kind in [IndexKind::RTree, IndexKind::Linear] {
            let mut idx = FovIndex::new(kind);
            idx.insert(&rep_at_lnglat(179.999, -35.0, 0.0, 10.0), SegmentId(0));
            idx.insert(&rep_at_lnglat(-179.999, -35.0, 0.0, 10.0), SegmentId(1));
            idx.insert(&rep_at_lnglat(90.0, -35.0, 0.0, 10.0), SegmentId(2));
            let query = Query::new(0.0, 10.0, LatLon::new(-35.0, -179.999), 1000.0);
            let boxes = query_boxes(&query);
            assert_eq!(boxes.as_slice().len(), 2, "{kind:?}: should wrap");
            let mut hits = idx.candidates(&query);
            hits.sort();
            assert_eq!(hits, vec![SegmentId(0), SegmentId(1)], "{kind:?}");
        }
    }

    #[test]
    fn antimeridian_dedups_boundary_point() {
        // A point exactly on ±180° may land in both half-boxes; it must be
        // reported once.
        let mut idx = FovIndex::new(IndexKind::Linear);
        idx.insert(&rep_at_lnglat(180.0, 0.0, 0.0, 10.0), SegmentId(0));
        let query = Query::new(0.0, 10.0, LatLon::new(0.0, 179.9999), 1000.0);
        assert_eq!(idx.candidates(&query), vec![SegmentId(0)]);
        let mut stats = SearchStats::default();
        assert_eq!(
            idx.candidates_with_stats(&query, &mut stats),
            vec![SegmentId(0)]
        );
    }

    #[test]
    fn polar_query_covers_all_longitudes() {
        // Near the pole one metre spans many degrees of longitude; the old
        // `coslat.max(1e-9)` clamp silently degenerated instead of widening.
        // A box touching the pole must cover every longitude.
        let mut idx = FovIndex::new(IndexKind::RTree);
        idx.insert(&rep_at_lnglat(10.0, 89.9995, 0.0, 10.0), SegmentId(0));
        idx.insert(&rep_at_lnglat(-170.0, 89.9995, 0.0, 10.0), SegmentId(1));
        let query = Query::new(0.0, 10.0, LatLon::new(89.9995, 100.0), 200.0);
        let boxes = query_boxes(&query);
        assert_eq!(boxes.as_slice().len(), 1);
        let qb = boxes.as_slice()[0];
        assert_eq!((qb.min[0], qb.max[0]), (-180.0, 180.0));
        let mut hits = idx.candidates(&query);
        hits.sort();
        assert_eq!(hits, vec![SegmentId(0), SegmentId(1)]);
    }

    #[test]
    fn both_kinds_agree() {
        let reps: Vec<RepFov> = (0..200)
            .map(|i| {
                let ang = f64::from(i) * 7.3;
                rep_at(
                    (f64::from(i) * 13.7).sin() * 400.0,
                    ang.cos() * 400.0,
                    f64::from(i),
                    f64::from(i) + 5.0,
                )
            })
            .collect();
        let mut rtree = FovIndex::new(IndexKind::RTree);
        let mut linear = FovIndex::new(IndexKind::Linear);
        for (i, r) in reps.iter().enumerate() {
            rtree.insert(r, SegmentId(i as u32));
            linear.insert(r, SegmentId(i as u32));
        }
        for query in [
            q(100.0, 0.0, 300.0),
            q(300.0, 50.0, 100.0),
            q(20.0, 500.0, 600.0),
        ] {
            let mut a = rtree.candidates(&query);
            let mut b = linear.candidates(&query);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn temporal_filtering_works() {
        let mut idx = FovIndex::new(IndexKind::RTree);
        idx.insert(&rep_at(0.0, 0.0, 0.0, 10.0), SegmentId(0));
        idx.insert(&rep_at(0.0, 0.0, 20.0, 30.0), SegmentId(1));
        assert_eq!(idx.candidates(&q(50.0, 12.0, 18.0)), vec![]);
        assert_eq!(idx.candidates(&q(50.0, 5.0, 25.0)).len(), 2);
        assert_eq!(idx.candidates(&q(50.0, 0.0, 3.0)), vec![SegmentId(0)]);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let reps: Vec<(RepFov, SegmentId)> = (0..500)
            .map(|i| {
                (
                    rep_at(
                        f64::from(i % 23) * 40.0,
                        f64::from(i % 17) * 40.0,
                        f64::from(i),
                        f64::from(i) + 2.0,
                    ),
                    SegmentId(i as u32),
                )
            })
            .collect();
        let bulk = FovIndex::bulk_load(reps.clone());
        let mut incr = FovIndex::new(IndexKind::RTree);
        for (r, id) in &reps {
            incr.insert(r, *id);
        }
        let query = q(400.0, 100.0, 300.0);
        let mut a = bulk.candidates(&query);
        let mut b = incr.candidates(&query);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn candidates_with_stats_agrees_with_candidates() {
        for kind in [IndexKind::RTree, IndexKind::Linear] {
            let mut idx = FovIndex::new(kind);
            for i in 0..300u32 {
                let r = rep_at(
                    f64::from(i % 19) * 50.0,
                    f64::from(i % 13) * 50.0,
                    f64::from(i),
                    f64::from(i) + 4.0,
                );
                idx.insert(&r, SegmentId(i));
            }
            let query = q(300.0, 50.0, 200.0);
            let mut stats = SearchStats::default();
            let mut a = idx.candidates_with_stats(&query, &mut stats);
            let mut b = idx.candidates(&query);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{kind:?}");
            assert_eq!(stats.items_matched, a.len() as u64, "{kind:?}");
            assert!(stats.items_tested >= stats.items_matched);
            assert!(stats.leaves_scanned >= 1);
        }
    }

    #[test]
    fn remove_unindexes() {
        let mut idx = FovIndex::new(IndexKind::RTree);
        let r = rep_at(0.0, 0.0, 0.0, 10.0);
        idx.insert(&r, SegmentId(7));
        assert!(idx.remove(&r, SegmentId(7)));
        assert!(!idx.remove(&r, SegmentId(7)));
        assert!(idx.candidates(&q(50.0, 0.0, 10.0)).is_empty());
    }
}
