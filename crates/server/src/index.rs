//! The spatio-temporal FoV index (paper §V-A).
//!
//! Each representative FoV becomes a 3-D "rectangle" that is degenerate in
//! space and extended in time: `min = [lng, lat, t_s]`,
//! `max = [lng, lat, t_e]` — a line segment in (longitude, latitude, time)
//! space, exactly as the paper stores it. Queries become boxes covering the
//! rescaled radius in both spatial dimensions and the requested interval in
//! time.
//!
//! Two interchangeable implementations share the [`FovIndex`] interface:
//! the R-tree ([`IndexKind::RTree`]) and the naive linear scan the paper
//! benchmarks against in Fig. 6(c) ([`IndexKind::Linear`]).

use swag_core::RepFov;
use swag_geo::{LatLon, METERS_PER_DEG};
use swag_rtree::{Aabb, RTree, RTreeConfig, SearchStats};

use crate::query::Query;
use crate::store::SegmentId;

/// Which index structure backs a [`FovIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// 3-D R-tree (the paper's design).
    #[default]
    RTree,
    /// Naive linear scan over all records (the Fig. 6(c) baseline).
    Linear,
}

/// The FoV rectangle of a representative FoV (paper §V-A).
pub fn fov_box(rep: &RepFov) -> Aabb<3> {
    Aabb::new(
        [rep.fov.p.lng, rep.fov.p.lat, rep.t_start],
        [rep.fov.p.lng, rep.fov.p.lat, rep.t_end],
    )
}

/// The query rectangle of a request (paper §V-B): the radius is converted
/// to longitude/latitude scales *at the query centre*.
pub fn query_box(q: &Query) -> Aabb<3> {
    let r_lat = q.radius_m / METERS_PER_DEG;
    let coslat = q.center.lat.to_radians().cos().max(1e-9);
    let r_lng = q.radius_m / (METERS_PER_DEG * coslat);
    Aabb::new(
        [q.center.lng - r_lng, q.center.lat - r_lat, q.t_start],
        [q.center.lng + r_lng, q.center.lat + r_lat, q.t_end],
    )
}

/// A spatio-temporal index over segment ids.
#[derive(Debug, Clone)]
pub enum FovIndex {
    /// R-tree backed.
    RTree(RTree<SegmentId, 3>),
    /// Linear-scan backed.
    Linear(Vec<(Aabb<3>, SegmentId)>),
}

impl FovIndex {
    /// Creates an empty index of the requested kind.
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::RTree => FovIndex::RTree(RTree::new()),
            IndexKind::Linear => FovIndex::Linear(Vec::new()),
        }
    }

    /// Creates an R-tree index with a custom configuration.
    pub fn with_rtree_config(config: RTreeConfig) -> Self {
        FovIndex::RTree(RTree::with_config(config))
    }

    /// Bulk loads an R-tree index from `(rep, id)` pairs (STR packing).
    pub fn bulk_load(items: Vec<(RepFov, SegmentId)>) -> Self {
        FovIndex::RTree(RTree::bulk_load(
            items
                .into_iter()
                .map(|(rep, id)| (fov_box(&rep), id))
                .collect(),
        ))
    }

    /// Which kind of index this is.
    pub fn kind(&self) -> IndexKind {
        match self {
            FovIndex::RTree(_) => IndexKind::RTree,
            FovIndex::Linear(_) => IndexKind::Linear,
        }
    }

    /// Number of indexed segments.
    pub fn len(&self) -> usize {
        match self {
            FovIndex::RTree(t) => t.len(),
            FovIndex::Linear(v) => v.len(),
        }
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indexes one representative FoV.
    pub fn insert(&mut self, rep: &RepFov, id: SegmentId) {
        let b = fov_box(rep);
        match self {
            FovIndex::RTree(t) => t.insert(b, id),
            FovIndex::Linear(v) => v.push((b, id)),
        }
    }

    /// All segment ids whose FoV rectangle intersects the query rectangle
    /// (spatial *and* temporal overlap, §V-B).
    pub fn candidates(&self, q: &Query) -> Vec<SegmentId> {
        let qb = query_box(q);
        match self {
            FovIndex::RTree(t) => t.search(&qb).into_iter().copied().collect(),
            FovIndex::Linear(v) => v
                .iter()
                .filter(|(b, _)| b.intersects(&qb))
                .map(|(_, id)| *id)
                .collect(),
        }
    }

    /// [`Self::candidates`] that also accumulates traversal counters into
    /// `stats` (used by the instrumented server query path). The linear
    /// scan reports itself as one flat "leaf" covering every record.
    pub fn candidates_with_stats(&self, q: &Query, stats: &mut SearchStats) -> Vec<SegmentId> {
        let qb = query_box(q);
        match self {
            FovIndex::RTree(t) => {
                let mut out = Vec::new();
                t.search_with_stats(&qb, stats, |_mbr, id| out.push(*id));
                out
            }
            FovIndex::Linear(v) => {
                let out: Vec<SegmentId> = v
                    .iter()
                    .filter(|(b, _)| b.intersects(&qb))
                    .map(|(_, id)| *id)
                    .collect();
                stats.nodes_visited += 1;
                stats.leaves_scanned += 1;
                stats.items_tested += v.len() as u64;
                stats.items_matched += out.len() as u64;
                out
            }
        }
    }

    /// Removes one indexed segment (used when providers retract videos).
    pub fn remove(&mut self, rep: &RepFov, id: SegmentId) -> bool {
        let b = fov_box(rep);
        match self {
            FovIndex::RTree(t) => t.remove(&b, |&v| v == id).is_some(),
            FovIndex::Linear(v) => {
                if let Some(pos) = v.iter().position(|(bb, vid)| *bb == b && *vid == id) {
                    v.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Convenience: meters of spatial slack to add when converting positions
/// near the query centre (used by tests).
pub fn lat_of(center: LatLon, north_m: f64) -> f64 {
    center.lat + north_m / METERS_PER_DEG
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;

    fn rep_at(north_m: f64, east_m: f64, t0: f64, t1: f64) -> RepFov {
        let p = LatLon::new(40.0, 116.32).offset_by(swag_geo::Vec2::new(east_m, north_m));
        RepFov::new(t0, t1, Fov::new(p, 0.0))
    }

    fn q(radius_m: f64, t0: f64, t1: f64) -> Query {
        Query::new(t0, t1, LatLon::new(40.0, 116.32), radius_m)
    }

    #[test]
    fn fov_box_is_degenerate_in_space() {
        let r = rep_at(0.0, 0.0, 5.0, 9.0);
        let b = fov_box(&r);
        assert_eq!(b.min[0], b.max[0]);
        assert_eq!(b.min[1], b.max[1]);
        assert_eq!((b.min[2], b.max[2]), (5.0, 9.0));
    }

    #[test]
    fn query_box_covers_radius() {
        let query = q(100.0, 0.0, 10.0);
        let b = query_box(&query);
        // The box must contain positions 100 m in every direction.
        for (n, e) in [(99.0, 0.0), (-99.0, 0.0), (0.0, 99.0), (0.0, -99.0)] {
            let r = rep_at(n, e, 5.0, 6.0);
            assert!(b.intersects(&fov_box(&r)), "offset ({n}, {e})");
        }
        // ...but not 150 m away.
        let far = rep_at(150.0, 0.0, 5.0, 6.0);
        assert!(!b.intersects(&fov_box(&far)));
    }

    #[test]
    fn both_kinds_agree() {
        let reps: Vec<RepFov> = (0..200)
            .map(|i| {
                let ang = f64::from(i) * 7.3;
                rep_at(
                    (f64::from(i) * 13.7).sin() * 400.0,
                    ang.cos() * 400.0,
                    f64::from(i),
                    f64::from(i) + 5.0,
                )
            })
            .collect();
        let mut rtree = FovIndex::new(IndexKind::RTree);
        let mut linear = FovIndex::new(IndexKind::Linear);
        for (i, r) in reps.iter().enumerate() {
            rtree.insert(r, SegmentId(i as u32));
            linear.insert(r, SegmentId(i as u32));
        }
        for query in [
            q(100.0, 0.0, 300.0),
            q(300.0, 50.0, 100.0),
            q(20.0, 500.0, 600.0),
        ] {
            let mut a = rtree.candidates(&query);
            let mut b = linear.candidates(&query);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn temporal_filtering_works() {
        let mut idx = FovIndex::new(IndexKind::RTree);
        idx.insert(&rep_at(0.0, 0.0, 0.0, 10.0), SegmentId(0));
        idx.insert(&rep_at(0.0, 0.0, 20.0, 30.0), SegmentId(1));
        assert_eq!(idx.candidates(&q(50.0, 12.0, 18.0)), vec![]);
        assert_eq!(idx.candidates(&q(50.0, 5.0, 25.0)).len(), 2);
        assert_eq!(idx.candidates(&q(50.0, 0.0, 3.0)), vec![SegmentId(0)]);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let reps: Vec<(RepFov, SegmentId)> = (0..500)
            .map(|i| {
                (
                    rep_at(
                        f64::from(i % 23) * 40.0,
                        f64::from(i % 17) * 40.0,
                        f64::from(i),
                        f64::from(i) + 2.0,
                    ),
                    SegmentId(i as u32),
                )
            })
            .collect();
        let bulk = FovIndex::bulk_load(reps.clone());
        let mut incr = FovIndex::new(IndexKind::RTree);
        for (r, id) in &reps {
            incr.insert(r, *id);
        }
        let query = q(400.0, 100.0, 300.0);
        let mut a = bulk.candidates(&query);
        let mut b = incr.candidates(&query);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn candidates_with_stats_agrees_with_candidates() {
        for kind in [IndexKind::RTree, IndexKind::Linear] {
            let mut idx = FovIndex::new(kind);
            for i in 0..300u32 {
                let r = rep_at(
                    f64::from(i % 19) * 50.0,
                    f64::from(i % 13) * 50.0,
                    f64::from(i),
                    f64::from(i) + 4.0,
                );
                idx.insert(&r, SegmentId(i));
            }
            let query = q(300.0, 50.0, 200.0);
            let mut stats = SearchStats::default();
            let mut a = idx.candidates_with_stats(&query, &mut stats);
            let mut b = idx.candidates(&query);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{kind:?}");
            assert_eq!(stats.items_matched, a.len() as u64, "{kind:?}");
            assert!(stats.items_tested >= stats.items_matched);
            assert!(stats.leaves_scanned >= 1);
        }
    }

    #[test]
    fn remove_unindexes() {
        let mut idx = FovIndex::new(IndexKind::RTree);
        let r = rep_at(0.0, 0.0, 0.0, 10.0);
        idx.insert(&r, SegmentId(7));
        assert!(idx.remove(&r, SegmentId(7)));
        assert!(!idx.remove(&r, SegmentId(7)));
        assert!(idx.candidates(&q(50.0, 0.0, 10.0)).is_empty());
    }
}
