//! The concurrent cloud server: construction, configuration, and the
//! public facade over the layered [`crate::engine`].
//!
//! Queries never hold a lock while they work: the engine publishes an
//! immutable **epoch** — an `Arc` to a `(store, index)` snapshot plus a
//! small delta of records ingested since that snapshot — and a query
//! clones that `Arc` in a tiny read-side critical section, then scans and
//! ranks entirely lock-free. Writers append into the delta under a short
//! write lock; every write republishes the epoch (so reads are
//! read-your-writes fresh), and once the delta reaches
//! [`ServerConfig::publish_threshold`] records the writer folds it into a
//! new snapshot, STR-bulk-rebuilding only the time shards the batch
//! touched. Retention ([`ServerConfig::retention_horizon_s`]) expires old
//! shards at publish time and retires the dropped segments from the
//! store, which compacts once enough of it is tombstones.
//!
//! The read path is plan-driven: every entry point lowers its request
//! through the planner ([`crate::engine::plan::QueryPlan`]) and executes
//! the resulting plan on the operator pipeline, so `query`,
//! `query_nearest`, `query_batch`, and standing-query subscriptions
//! share one filter and one ranking definition. [`CloudServer::explain`]
//! renders the plan a request would run.
//!
//! Observability is opt-in: [`CloudServer::attach_observability`] wires
//! the query path to `swag-obs` histograms (epoch acquire vs. index scan
//! vs. ranking split, candidate counts, R-tree traversal work), the
//! publish path to snapshot age / rebuild cost / delta size metrics, and
//! a sampled per-query [`Trace`]. Without it, the only cost the query
//! path pays is one branch on an `Option`. Time comes from an injectable
//! [`MonotonicClock`] so latency accounting is exactly testable.

use std::sync::Arc;

use swag_core::{CameraProfile, RepFov, UploadBatch};
use swag_exec::Executor;
use swag_obs::{FlightRecorder, HistogramSnapshot, MonotonicClock, Registry, Trace, WallClock};

use crate::engine::admission::{AdmissionConfig, ShedReason};
use crate::engine::cache::CacheConfig;
use crate::engine::fanout::FanoutMode;
use crate::engine::forensics::{AnalyzedQuery, EventLogConfig, QueryEventLog};
use crate::engine::Engine;
use crate::index::IndexKind;
use crate::query::{Query, QueryOptions};
use crate::ranking::SearchHit;
use crate::store::{SegmentId, SegmentRecord, SegmentRef};
use crate::subscribe::SubscriptionId;

/// Tuning knobs for the snapshot-publishing server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Index backend used inside each time shard.
    pub index: IndexKind,
    /// Width of each time shard, seconds.
    pub shard_width_s: f64,
    /// Delta size that triggers folding the delta into a new snapshot.
    pub publish_threshold: usize,
    /// Retention horizon: at every snapshot publish, shards older than
    /// `latest t_end − horizon` are expired and fully-expired segments
    /// retired from the store. `None` keeps everything forever.
    pub retention_horizon_s: Option<f64>,
    /// Fraction of the store that may be tombstones before a publish
    /// compacts it (re-assigning ids densely and rebuilding the index).
    pub compact_dead_fraction: f64,
    /// Slow-query capture threshold for the flight recorder,
    /// microseconds. `Some(t)` pins the span tree of every query slower
    /// than `t`; `None` auto-derives the threshold from the live p99 of
    /// the query-latency histogram (refreshed every
    /// [`AUTO_THRESHOLD_INTERVAL`] queries, observability attached and
    /// recorder enabled).
    pub slow_query_micros: Option<u64>,
    /// How the engine chooses between the serial and parallel shard
    /// probe per query. [`FanoutMode::Adaptive`] (the default) prices
    /// each plan with the fan-out cost model; `Serial` / `Parallel`
    /// force one path (both produce byte-identical results).
    pub fanout: FanoutMode,
    /// Plan-keyed result cache (disabled by default, `capacity: 0`):
    /// repeated queries are answered from cache until a publish touches
    /// one of the time shards their window spans. Results are
    /// byte-identical to the uncached path — the epoch stamp proves
    /// every served entry current (see `DESIGN.md` §13).
    pub cache: CacheConfig,
    /// Per-client token-bucket admission control with a bounded
    /// in-flight budget (disabled by default). Only
    /// [`CloudServer::query_admitted`] consults it; the plain query
    /// entry points are for trusted internal callers.
    pub admission: AdmissionConfig,
    /// Wide-event query log with tail sampling (disabled by default):
    /// every query records one forensic [`crate::QueryEvent`]; sheds and
    /// over-threshold-slow queries are always retained, ordinary traffic
    /// probabilistically. Disabled, the query path pays one branch and
    /// reads no clock for forensics.
    pub events: EventLogConfig,
    /// Durable storage (disabled by default — the server is memory-only
    /// unless opened through [`CloudServer::open`], which switches the
    /// master switch on): segment WAL on the ingest path, incremental
    /// snapshots at publish time, and cold-tier demotion of aged-out
    /// shards. The data directory is the argument to `open`, not part
    /// of this config. See `DESIGN.md` §15.
    pub durability: swag_store::DurabilityConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            index: IndexKind::RTree,
            shard_width_s: 600.0,
            publish_threshold: 256,
            retention_horizon_s: None,
            compact_dead_fraction: 0.25,
            slow_query_micros: None,
            fanout: FanoutMode::Adaptive,
            cache: CacheConfig::default(),
            admission: AdmissionConfig::default(),
            events: EventLogConfig::default(),
            durability: swag_store::DurabilityConfig::default(),
        }
    }
}

/// How often (in answered queries) the auto-derived slow-query threshold
/// is refreshed from the live p99.
pub const AUTO_THRESHOLD_INTERVAL: u64 = 64;

/// Aggregated server statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Stored segments (live snapshot records plus the pending delta).
    pub segments: usize,
    /// Store slots allocated, tombstones included (shrinks on compaction).
    pub store_slots: usize,
    /// Live time shards in the published snapshot.
    pub shards: usize,
    /// Records waiting in the delta for the next snapshot publish.
    pub pending_delta: usize,
    /// Upload batches ingested.
    pub batches: u64,
    /// Queries answered.
    pub queries: u64,
    /// Total time spent answering queries, microseconds.
    pub query_micros_total: u64,
    /// Time queries spent acquiring the epoch (empty unless
    /// observability is attached).
    pub lock_wait_micros: HistogramSnapshot,
    /// Time queries spent scanning the spatio-temporal index.
    pub index_scan_micros: HistogramSnapshot,
    /// Time queries spent ranking candidates.
    pub ranking_micros: HistogramSnapshot,
    /// End-to-end query latency distribution.
    pub query_micros: HistogramSnapshot,
}

impl ServerStats {
    /// Mean query latency in microseconds (0 when no queries ran).
    pub fn mean_query_micros(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_micros_total as f64 / self.queries as f64
        }
    }
}

/// The crowd-sourced retrieval server (paper §II).
///
/// ```
/// use swag_core::{CameraProfile, Fov, RepFov};
/// use swag_geo::LatLon;
/// use swag_server::{CloudServer, Query, QueryOptions, SegmentRef};
///
/// let server = CloudServer::new(CameraProfile::smartphone());
/// let scene = LatLon::new(40.0, 116.32);
/// // One segment filmed 20 m south of the scene, looking north at it.
/// server.ingest_one(
///     RepFov::new(10.0, 18.0, Fov::new(scene.offset(180.0, 20.0), 0.0)),
///     SegmentRef { provider_id: 7, video_id: 0, segment_idx: 0 },
/// );
/// let hits = server.query(
///     &Query::new(0.0, 60.0, scene, 50.0),
///     &QueryOptions::default(),
/// );
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].source.provider_id, 7);
/// ```
pub struct CloudServer {
    engine: Engine,
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CloudServer")
            .field("segments", &stats.segments)
            .field("batches", &stats.batches)
            .field("queries", &stats.queries)
            .field("camera", &self.engine.cam)
            .finish_non_exhaustive()
    }
}

impl CloudServer {
    /// Creates a server using an R-tree index and the given camera profile
    /// for ranking geometry.
    pub fn new(cam: CameraProfile) -> Self {
        Self::with_config(cam, ServerConfig::default())
    }

    /// Creates a server with a chosen index backend.
    pub fn with_index(cam: CameraProfile, kind: IndexKind) -> Self {
        Self::with_config(
            cam,
            ServerConfig {
                index: kind,
                ..ServerConfig::default()
            },
        )
    }

    /// Creates a server with explicit snapshot/retention tuning.
    pub fn with_config(cam: CameraProfile, config: ServerConfig) -> Self {
        Self::with_config_and_clock(cam, config, Arc::new(WallClock))
    }

    /// Creates a server reading time from an injected clock. Tests pass a
    /// deterministic clock and assert exact latency accounting.
    pub fn with_clock(cam: CameraProfile, kind: IndexKind, clock: Arc<dyn MonotonicClock>) -> Self {
        Self::with_config_and_clock(
            cam,
            ServerConfig {
                index: kind,
                ..ServerConfig::default()
            },
            clock,
        )
    }

    /// [`Self::with_config`] with an injected clock.
    pub fn with_config_and_clock(
        cam: CameraProfile,
        config: ServerConfig,
        clock: Arc<dyn MonotonicClock>,
    ) -> Self {
        CloudServer {
            engine: Engine::new(cam, config, clock),
        }
    }

    /// Opens a durable server on a data directory (created if empty),
    /// recovering whatever state is on disk: the latest incremental
    /// snapshot is bulk-loaded, then durable WAL ops past the snapshot's
    /// floor are replayed through the normal ingest path, so a recovered
    /// server is bit-for-bit the server that crashed (minus any
    /// un-fsynced WAL tail, which recovery truncates). The returned
    /// server appends every subsequent ingest/retract/expire to the WAL,
    /// snapshots incrementally at publish time, and (with
    /// [`swag_store::DurabilityConfig::cold_tier`]) demotes aged-out
    /// shards to cold runs instead of dropping them.
    ///
    /// `config.durability.enabled` is forced on — passing a data
    /// directory *is* the opt-in. For a memory-only server use
    /// [`Self::new`] / [`Self::with_config`].
    pub fn open(
        dir: impl AsRef<std::path::Path>,
        cam: CameraProfile,
        config: ServerConfig,
    ) -> Result<Self, swag_store::StoreError> {
        Self::open_with_clock(dir, cam, config, Arc::new(WallClock))
    }

    /// [`Self::open`] with an injected clock (drives WAL group-commit
    /// windows and snapshot-age accounting).
    pub fn open_with_clock(
        dir: impl AsRef<std::path::Path>,
        cam: CameraProfile,
        mut config: ServerConfig,
        clock: Arc<dyn MonotonicClock>,
    ) -> Result<Self, swag_store::StoreError> {
        config.durability.enabled = true;
        let (durability, recovery) = swag_store::Durability::open(
            dir.as_ref(),
            config.shard_width_s,
            config.durability,
            clock.clone(),
        )?;
        let mut server = Self::with_config_and_clock(cam, config, clock);
        // Replay happens with durability detached: recovered state is
        // already durable, so re-appending it to the WAL (or re-demoting
        // shards an already-recovered cold run holds) would duplicate it.
        if !recovery.records.is_empty() {
            server.engine.bootstrap(recovery.records);
        }
        for op in recovery.ops {
            match op {
                swag_store::WalOp::Append { rep, source } => {
                    server.engine.ingest_one(rep, source);
                }
                swag_store::WalOp::Retract { provider_id } => {
                    server.engine.retract_provider(provider_id);
                }
                swag_store::WalOp::Expire { horizon_s } => {
                    server.engine.expire_before(horizon_s);
                }
            }
        }
        server.engine.durability = Some(durability);
        Ok(server)
    }

    /// Durability counters (WAL lag, snapshot age, cold-tier size), when
    /// this server was opened on a data directory.
    pub fn durability_stats(&self) -> Option<swag_store::DurabilityStats> {
        self.engine.durability.as_ref().map(|d| d.stats())
    }

    /// Forces everything durable *now*: fsyncs the WAL tail regardless
    /// of the group-commit window and blocks until the background
    /// snapshot worker has drained. A no-op on memory-only servers.
    /// Call before a planned shutdown to make recovery replay-free.
    pub fn quiesce(&self) {
        if let Some(durability) = &self.engine.durability {
            durability.quiesce();
        }
    }

    /// Replaces the executor used for shard fan-out, publish rebuilds,
    /// and [`Self::query_batch`]. Pass [`Executor::serial`] to force
    /// deterministic single-threaded execution regardless of
    /// `SWAG_EXEC_THREADS`.
    pub fn set_executor(&mut self, exec: Executor) {
        self.engine.exec = exec;
    }

    /// The executor this server schedules parallel work on.
    pub fn executor(&self) -> &Executor {
        &self.engine.exec
    }

    /// Wires this server's ingest, query, and publish paths to `registry`
    /// (metric names `swag_server_*`, shard fan-out under `swag_shard_*`).
    /// Call before sharing the server across threads; until called,
    /// instrumentation costs one branch per query.
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.engine.attach_observability(registry);
    }

    /// Computes point-in-time gauges into `registry`: epoch snapshot age
    /// (`swag_server_epoch_age_micros`), staged-delta size, compiled
    /// standing-query plan count, and per-time-shard entry counts
    /// (`swag_server_shard_entries{shard=...}`, zeroed when a shard
    /// expires). Designed to run as an `OpsSurface` refresher right
    /// before each scrape; cheap enough to call on every rotation.
    pub fn refresh_gauges(&self, registry: &Registry) {
        self.engine.refresh_gauges(registry);
    }

    /// The sampled per-query trace ring, present once observability is
    /// attached. Disabled (never sampling) until [`Trace::enable`].
    pub fn query_trace(&self) -> Option<&Trace> {
        self.engine.obs.as_ref().map(|o| &o.trace)
    }

    /// The flight recorder behind this server's query/ingest/publish
    /// spans. Created disabled; call [`FlightRecorder::enable`] to start
    /// recording.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.engine.recorder
    }

    /// Replaces the flight recorder — e.g. to share one recorder across
    /// client, scheduler, and server so a request's spans land in one
    /// trace, or to inject a deterministic-clock recorder in tests. The
    /// configured [`ServerConfig::slow_query_micros`] threshold is
    /// applied to the new recorder, and the published snapshot is
    /// re-issued so shard probes record into it from the next query on.
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.engine.set_flight_recorder(recorder);
    }

    /// The camera profile used for ranking geometry.
    pub fn camera(&self) -> &CameraProfile {
        &self.engine.cam
    }

    /// The active snapshot/retention configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.engine.config
    }

    /// Ingests one upload batch, returning the assigned segment ids.
    pub fn ingest_batch(&self, batch: &UploadBatch) -> Vec<SegmentId> {
        self.engine.ingest_batch(batch)
    }

    /// Ingests a single representative FoV.
    pub fn ingest_one(&self, rep: RepFov, source: SegmentRef) -> SegmentId {
        self.engine.ingest_one(rep, source)
    }

    /// Registers a standing query: every matching segment ingested from
    /// now on is queued until [`Self::poll_subscription`]. The query's
    /// plan is compiled once at registration; ingest-time matching runs
    /// the same filter stage as pull queries.
    pub fn subscribe(&self, query: Query, opts: QueryOptions) -> SubscriptionId {
        self.engine.subscribe(query, opts)
    }

    /// Cancels a standing query.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.engine.unsubscribe(id)
    }

    /// Drains a standing query's accumulated matches (arrival order).
    pub fn poll_subscription(&self, id: SubscriptionId) -> Vec<SearchHit> {
        self.engine.poll_subscription(id)
    }

    /// Answers a query with the paper's rank-based retrieval: compiles
    /// one [`crate::engine::plan::QueryPlan`] and executes it on the
    /// operator pipeline. Lock-free after the initial epoch acquisition.
    pub fn query(&self, query: &Query, opts: &QueryOptions) -> Vec<SearchHit> {
        self.engine.query(query, opts)
    }

    /// [`Self::query`] behind admission control — the entry point for
    /// untrusted callers. With [`AdmissionConfig::enabled`] the request
    /// is first charged against `client_id`'s token bucket and the
    /// server's bounded in-flight budget; over-budget requests are shed
    /// with a [`ShedReason`] instead of queueing, which keeps admitted
    /// requests' tail latency bounded under overload. With admission
    /// disabled (the default) every request is admitted.
    pub fn query_admitted(
        &self,
        client_id: u64,
        query: &Query,
        opts: &QueryOptions,
    ) -> Result<Vec<SearchHit>, ShedReason> {
        self.engine.query_admitted(client_id, query, opts)
    }

    /// Answers a *k-nearest* request: the `k` segments closest to `center`
    /// whose intervals overlap `[t_start, t_end]`, subject to the same
    /// direction/coverage filters as [`Self::query`].
    ///
    /// Useful when the querier has no natural radius ("show me whatever
    /// was filmed closest to this spot"). Implemented as a
    /// radius-expansion loop over successive plans: the radius doubles
    /// until `k` filtered hits are found or the search has covered
    /// `max_radius_m`.
    ///
    /// Early exit at `k` hits is only sound when the ranking key grows
    /// with distance. Under [`crate::query::RankMode::Distance`] it does;
    /// under [`crate::query::RankMode::Quality`] a higher-quality segment
    /// can sit outside the current ring, so the search keeps expanding
    /// until the radius covers the camera's viewing range (beyond which
    /// the quality proximity term is zero, so nothing unexplored can
    /// outrank a found hit) or `max_radius_m`, whichever is smaller.
    pub fn query_nearest(
        &self,
        t_start: f64,
        t_end: f64,
        center: swag_geo::LatLon,
        k: usize,
        opts: &QueryOptions,
        max_radius_m: f64,
    ) -> Vec<SearchHit> {
        self.engine
            .query_nearest(t_start, t_end, center, k, opts, max_radius_m)
    }

    /// Answers many queries against **one** epoch: the snapshot `Arc` is
    /// cloned once for the whole batch, so a publish landing mid-batch
    /// cannot make later queries see different data than earlier ones.
    /// Plans are fanned across the server's executor (`threads <= 1`
    /// forces an in-order serial loop); result order matches input order
    /// and is byte-identical in serial and parallel mode.
    pub fn query_batch(
        &self,
        queries: &[Query],
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<Vec<SearchHit>> {
        self.engine.query_batch(queries, opts, threads)
    }

    /// Renders the [`crate::engine::plan::QueryPlan`] this request would
    /// execute, resolved against the current snapshot: query boxes,
    /// shards probed, pending delta, filter chain, rank mode, and the
    /// operator pipeline (named with the same labels trace spans use).
    pub fn explain(&self, query: &Query, opts: &QueryOptions) -> String {
        self.engine.explain(query, opts)
    }

    /// EXPLAIN ANALYZE: executes the request for real through an
    /// instrumented pipeline and returns the hits — byte-identical to
    /// [`Self::query_admitted`] (an equivalence test pins this) — plus a
    /// report annotating every operator with measured wall time and rows
    /// in/out, and the concrete cache, admission, and fan-out decisions
    /// this execution took. Admission is consulted exactly like
    /// `query_admitted`; a shed request returns no hits and a report
    /// saying why. When the wide-event log is enabled the analyzed run
    /// emits an event like any other query.
    pub fn query_analyzed(
        &self,
        client_id: u64,
        query: &Query,
        opts: &QueryOptions,
    ) -> AnalyzedQuery {
        self.engine.query_analyzed(client_id, query, opts)
    }

    /// The wide-event query log, present when
    /// [`ServerConfig::events`] enabled it.
    pub fn event_log(&self) -> Option<&Arc<QueryEventLog>> {
        self.engine.events.as_ref()
    }

    /// Retracts every segment a provider contributed (the §I privacy
    /// concern: contributors stay in control of their descriptors).
    /// Returns how many segments were removed. The retraction publishes a
    /// fresh snapshot immediately — it does not wait for the next
    /// threshold-driven publish.
    pub fn retract_provider(&self, provider_id: u64) -> usize {
        self.engine.retract_provider(provider_id)
    }

    /// Expires everything older than `horizon_s` (paper-time seconds):
    /// drops index shards ending at or before the horizon and retires
    /// fully-expired segments from the store (pruning it once compaction
    /// kicks in). Publishes the shrunken snapshot immediately and returns
    /// how many segments were dropped.
    pub fn expire_before(&self, horizon_s: f64) -> usize {
        self.engine.expire_before(horizon_s)
    }

    /// Exports every stored record, pending delta included (for
    /// snapshotting; see [`crate::persistence`]).
    pub fn export_records(&self) -> Vec<SegmentRecord> {
        self.engine.export_records()
    }

    /// Rebuilds a server from records, STR-bulk-loading the sharded index.
    pub fn from_records(cam: CameraProfile, records: Vec<(RepFov, SegmentRef)>) -> Self {
        Self::from_records_with_config(cam, ServerConfig::default(), records)
    }

    /// [`Self::from_records`] with explicit snapshot/retention tuning.
    pub fn from_records_with_config(
        cam: CameraProfile,
        config: ServerConfig,
        records: Vec<(RepFov, SegmentRef)>,
    ) -> Self {
        Self::from_records_with_config_exec(cam, config, Executor::global().clone(), records)
    }

    /// [`Self::from_records_with_config`] on an explicit executor: the
    /// STR bulk load runs on `exec` (parallel slab packing when it has
    /// threads), and the server keeps `exec` for query fan-out afterwards.
    pub fn from_records_with_config_exec(
        cam: CameraProfile,
        config: ServerConfig,
        exec: Executor,
        records: Vec<(RepFov, SegmentRef)>,
    ) -> Self {
        let mut server = Self::with_config(cam, config);
        server.set_executor(exec);
        server.engine.bootstrap(records);
        server
    }

    /// Current statistics snapshot. Phase histograms are empty unless
    /// observability is attached.
    pub fn stats(&self) -> ServerStats {
        self.engine.stats()
    }
}
