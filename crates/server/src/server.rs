//! The concurrent cloud server: epoch/snapshot reads.
//!
//! Queries never hold a lock while they work: the server publishes an
//! immutable **epoch** — an `Arc` to a `(store, index)` snapshot plus a
//! small delta of records ingested since that snapshot — and a query
//! clones that `Arc` in a tiny read-side critical section, then scans and
//! ranks entirely lock-free. Writers append into the delta under a short
//! write lock; every write republishes the epoch (so reads are
//! read-your-writes fresh), and once the delta reaches
//! [`ServerConfig::publish_threshold`] records the writer folds it into a
//! new snapshot, STR-bulk-rebuilding only the time shards the batch
//! touched ([`ShardedFovIndex::bulk_insert`]). Retention
//! ([`ServerConfig::retention_horizon_s`]) expires old shards at publish
//! time and retires the dropped segments from the store, which compacts
//! once enough of it is tombstones.
//!
//! Observability is opt-in: [`CloudServer::attach_observability`] wires
//! the query path to `swag-obs` histograms (epoch acquire vs. index scan
//! vs. ranking split, candidate counts, R-tree traversal work), the
//! publish path to snapshot age / rebuild cost / delta size metrics, and
//! a sampled per-query [`Trace`]. Without it, the only cost the query
//! path pays is one branch on an `Option`. Time comes from an injectable
//! [`MonotonicClock`] so latency accounting is exactly testable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use swag_core::{CameraProfile, RepFov, UploadBatch};
use swag_exec::Executor;
use swag_obs::{
    Counter, FlightRecorder, Histogram, HistogramSnapshot, MonotonicClock, Registry, Trace,
    WallClock, DEFAULT_RING_CAPACITY,
};
use swag_rtree::SearchStats;

use crate::index::{fov_box, query_boxes, IndexKind};
use crate::query::{Query, QueryOptions, RankMode};
use crate::ranking::{collect_hits, finalize_hits, hit_for, keep, SearchHit};
use crate::shard::ShardedFovIndex;
use crate::store::{SegmentId, SegmentRecord, SegmentRef, SegmentStore};
use crate::subscribe::{SubscriptionId, SubscriptionSet};

/// Tuning knobs for the snapshot-publishing server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Index backend used inside each time shard.
    pub index: IndexKind,
    /// Width of each time shard, seconds.
    pub shard_width_s: f64,
    /// Delta size that triggers folding the delta into a new snapshot.
    pub publish_threshold: usize,
    /// Retention horizon: at every snapshot publish, shards older than
    /// `latest t_end − horizon` are expired and fully-expired segments
    /// retired from the store. `None` keeps everything forever.
    pub retention_horizon_s: Option<f64>,
    /// Fraction of the store that may be tombstones before a publish
    /// compacts it (re-assigning ids densely and rebuilding the index).
    pub compact_dead_fraction: f64,
    /// Slow-query capture threshold for the flight recorder,
    /// microseconds. `Some(t)` pins the span tree of every query slower
    /// than `t`; `None` auto-derives the threshold from the live p99 of
    /// the query-latency histogram (refreshed every
    /// [`AUTO_THRESHOLD_INTERVAL`] queries, observability attached and
    /// recorder enabled).
    pub slow_query_micros: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            index: IndexKind::RTree,
            shard_width_s: 600.0,
            publish_threshold: 256,
            retention_horizon_s: None,
            compact_dead_fraction: 0.25,
            slow_query_micros: None,
        }
    }
}

/// How often (in answered queries) the auto-derived slow-query threshold
/// is refreshed from the live p99.
pub const AUTO_THRESHOLD_INTERVAL: u64 = 64;

/// Don't bother compacting stores with fewer tombstones than this.
const COMPACT_DEAD_FLOOR: usize = 32;

/// Aggregated server statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Stored segments (live snapshot records plus the pending delta).
    pub segments: usize,
    /// Store slots allocated, tombstones included (shrinks on compaction).
    pub store_slots: usize,
    /// Live time shards in the published snapshot.
    pub shards: usize,
    /// Records waiting in the delta for the next snapshot publish.
    pub pending_delta: usize,
    /// Upload batches ingested.
    pub batches: u64,
    /// Queries answered.
    pub queries: u64,
    /// Total time spent answering queries, microseconds.
    pub query_micros_total: u64,
    /// Time queries spent acquiring the epoch (empty unless
    /// observability is attached).
    pub lock_wait_micros: HistogramSnapshot,
    /// Time queries spent scanning the spatio-temporal index.
    pub index_scan_micros: HistogramSnapshot,
    /// Time queries spent ranking candidates.
    pub ranking_micros: HistogramSnapshot,
    /// End-to-end query latency distribution.
    pub query_micros: HistogramSnapshot,
}

impl ServerStats {
    /// Mean query latency in microseconds (0 when no queries ran).
    pub fn mean_query_micros(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_micros_total as f64 / self.queries as f64
        }
    }
}

/// An immutable published `(store, index)` snapshot.
struct SnapshotCore {
    store: SegmentStore,
    index: ShardedFovIndex,
    published_at_micros: u64,
}

/// One pending record plus its pre-computed index box, so the per-query
/// delta scan is a pure `Aabb` intersection test.
#[derive(Debug, Clone, Copy)]
struct DeltaRecord {
    rec: SegmentRecord,
    bbox: swag_rtree::Aabb<3>,
}

/// What queries see: one `Arc` clone of this answers a whole query.
/// `delta` holds records ingested since `core` was published, as a list
/// of frozen per-ingest slices — republishing after a write bumps one
/// refcount per slice instead of copying every pending record. Queries
/// scan it linearly (it is bounded by the publish threshold).
struct Epoch {
    core: Arc<SnapshotCore>,
    delta: Arc<[Arc<[DeltaRecord]>]>,
    delta_len: usize,
}

impl Epoch {
    fn delta_records(&self) -> impl Iterator<Item = &DeltaRecord> {
        self.delta.iter().flat_map(|batch| batch.iter())
    }
}

/// Writer-side state, guarded by one mutex. `core` mirrors the epoch's
/// core; store/index clones taken from it are copy-on-write cheap.
struct Writer {
    core: Arc<SnapshotCore>,
    delta: Vec<Arc<[DeltaRecord]>>,
    delta_len: usize,
    subscriptions: SubscriptionSet,
    /// Latest `t_end` ever ingested — the retention clock.
    max_t_end: f64,
}

/// Metric handles for an instrumented server. Handles are resolved once
/// at attach time; recording never touches the registry again.
struct ServerObs {
    lock_wait: Arc<Histogram>,
    index_scan: Arc<Histogram>,
    ranking: Arc<Histogram>,
    query_total: Arc<Histogram>,
    candidates: Arc<Histogram>,
    index_nodes: Arc<Histogram>,
    index_leaves: Arc<Histogram>,
    ingest: Arc<Histogram>,
    segments: Arc<Counter>,
    nearest_rounds: Arc<Counter>,
    publishes: Arc<Counter>,
    snapshot_age: Arc<Histogram>,
    rebuild_micros: Arc<Histogram>,
    delta_size: Arc<Histogram>,
    retention_dropped: Arc<Counter>,
    trace: Trace,
}

impl ServerObs {
    fn from_registry(registry: &Registry) -> Self {
        ServerObs {
            lock_wait: registry.histogram("swag_server_query_lock_wait_micros"),
            index_scan: registry.histogram("swag_server_query_index_scan_micros"),
            ranking: registry.histogram("swag_server_query_ranking_micros"),
            query_total: registry.histogram("swag_server_query_micros"),
            candidates: registry.histogram("swag_server_query_candidates"),
            index_nodes: registry.histogram("swag_server_index_nodes_visited"),
            index_leaves: registry.histogram("swag_server_index_leaves_scanned"),
            ingest: registry.histogram("swag_server_ingest_micros"),
            segments: registry.counter("swag_server_segments_ingested_total"),
            nearest_rounds: registry.counter("swag_server_nearest_rounds_total"),
            publishes: registry.counter("swag_server_publishes_total"),
            snapshot_age: registry.histogram("swag_server_snapshot_age_micros"),
            rebuild_micros: registry.histogram("swag_server_snapshot_rebuild_micros"),
            delta_size: registry.histogram("swag_server_snapshot_delta_size"),
            retention_dropped: registry.counter("swag_server_retention_dropped_total"),
            trace: Trace::new(256),
        }
    }
}

/// The crowd-sourced retrieval server (paper §II).
///
/// ```
/// use swag_core::{CameraProfile, Fov, RepFov};
/// use swag_geo::LatLon;
/// use swag_server::{CloudServer, Query, QueryOptions, SegmentRef};
///
/// let server = CloudServer::new(CameraProfile::smartphone());
/// let scene = LatLon::new(40.0, 116.32);
/// // One segment filmed 20 m south of the scene, looking north at it.
/// server.ingest_one(
///     RepFov::new(10.0, 18.0, Fov::new(scene.offset(180.0, 20.0), 0.0)),
///     SegmentRef { provider_id: 7, video_id: 0, segment_idx: 0 },
/// );
/// let hits = server.query(
///     &Query::new(0.0, 60.0, scene, 50.0),
///     &QueryOptions::default(),
/// );
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].source.provider_id, 7);
/// ```
pub struct CloudServer {
    /// Readers clone the `Arc` under a momentary read lock; the lock is
    /// never held while scanning or ranking.
    epoch: RwLock<Arc<Epoch>>,
    writer: Mutex<Writer>,
    config: ServerConfig,
    cam: CameraProfile,
    clock: Arc<dyn MonotonicClock>,
    /// Work-stealing pool for shard fan-out, publish rebuilds, and query
    /// batches. Defaults to the process-wide executor; swap in
    /// [`Executor::serial`] via [`Self::set_executor`] for byte-exact
    /// deterministic runs.
    exec: Executor,
    obs: Option<ServerObs>,
    /// Causal-tracing flight recorder for the query/ingest/publish
    /// paths. Disabled by default: each span site then costs one relaxed
    /// load. Swap in a shared or test recorder via
    /// [`Self::set_flight_recorder`].
    recorder: Arc<FlightRecorder>,
    batches: AtomicU64,
    queries: AtomicU64,
    query_micros: AtomicU64,
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CloudServer")
            .field("segments", &stats.segments)
            .field("batches", &stats.batches)
            .field("queries", &stats.queries)
            .field("camera", &self.cam)
            .finish_non_exhaustive()
    }
}

impl CloudServer {
    /// Creates a server using an R-tree index and the given camera profile
    /// for ranking geometry.
    pub fn new(cam: CameraProfile) -> Self {
        Self::with_config(cam, ServerConfig::default())
    }

    /// Creates a server with a chosen index backend.
    pub fn with_index(cam: CameraProfile, kind: IndexKind) -> Self {
        Self::with_config(
            cam,
            ServerConfig {
                index: kind,
                ..ServerConfig::default()
            },
        )
    }

    /// Creates a server with explicit snapshot/retention tuning.
    pub fn with_config(cam: CameraProfile, config: ServerConfig) -> Self {
        Self::with_config_and_clock(cam, config, Arc::new(WallClock))
    }

    /// Creates a server reading time from an injected clock. Tests pass a
    /// deterministic clock and assert exact latency accounting.
    pub fn with_clock(cam: CameraProfile, kind: IndexKind, clock: Arc<dyn MonotonicClock>) -> Self {
        Self::with_config_and_clock(
            cam,
            ServerConfig {
                index: kind,
                ..ServerConfig::default()
            },
            clock,
        )
    }

    /// [`Self::with_config`] with an injected clock.
    pub fn with_config_and_clock(
        cam: CameraProfile,
        config: ServerConfig,
        clock: Arc<dyn MonotonicClock>,
    ) -> Self {
        let recorder = Arc::new(FlightRecorder::with_clock(
            DEFAULT_RING_CAPACITY,
            clock.clone(),
        ));
        if let Some(t) = config.slow_query_micros {
            recorder.set_slow_threshold_micros(t);
        }
        let mut index = ShardedFovIndex::new(config.shard_width_s, config.index);
        index.set_recorder(recorder.clone());
        let core = Arc::new(SnapshotCore {
            store: SegmentStore::new(),
            index,
            published_at_micros: clock.now_micros(),
        });
        CloudServer {
            epoch: RwLock::new(Arc::new(Epoch {
                core: core.clone(),
                delta: Arc::from(Vec::new()),
                delta_len: 0,
            })),
            writer: Mutex::new(Writer {
                core,
                delta: Vec::new(),
                delta_len: 0,
                subscriptions: SubscriptionSet::new(),
                max_t_end: f64::NEG_INFINITY,
            }),
            config,
            cam,
            clock,
            exec: Executor::global().clone(),
            obs: None,
            recorder,
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            query_micros: AtomicU64::new(0),
        }
    }

    /// Replaces the executor used for shard fan-out, publish rebuilds,
    /// and [`Self::query_batch`]. Pass [`Executor::serial`] to force
    /// deterministic single-threaded execution regardless of
    /// `SWAG_EXEC_THREADS`.
    pub fn set_executor(&mut self, exec: Executor) {
        self.exec = exec;
    }

    /// The executor this server schedules parallel work on.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// Wires this server's ingest, query, and publish paths to `registry`
    /// (metric names `swag_server_*`, shard fan-out under `swag_shard_*`).
    /// Call before sharing the server across threads; until called,
    /// instrumentation costs one branch per query.
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(ServerObs::from_registry(registry));
        self.exec.attach_observability(registry);
        // Re-publish the core with shard metrics attached so fan-out is
        // recorded from the next query on.
        let mut w = self.writer.lock();
        let mut index = w.core.index.clone();
        index.attach_observability(registry);
        let core = Arc::new(SnapshotCore {
            store: w.core.store.clone(),
            index,
            published_at_micros: w.core.published_at_micros,
        });
        w.core = core.clone();
        let delta = Arc::from(w.delta.as_slice());
        let delta_len = w.delta_len;
        drop(w);
        *self.epoch.write() = Arc::new(Epoch {
            core,
            delta,
            delta_len,
        });
    }

    /// The sampled per-query trace ring, present once observability is
    /// attached. Disabled (never sampling) until [`Trace::enable`].
    pub fn query_trace(&self) -> Option<&Trace> {
        self.obs.as_ref().map(|o| &o.trace)
    }

    /// The flight recorder behind this server's query/ingest/publish
    /// spans. Created disabled; call [`FlightRecorder::enable`] to start
    /// recording.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Replaces the flight recorder — e.g. to share one recorder across
    /// client, scheduler, and server so a request's spans land in one
    /// trace, or to inject a deterministic-clock recorder in tests. The
    /// configured [`ServerConfig::slow_query_micros`] threshold is
    /// applied to the new recorder, and the published snapshot is
    /// re-issued so shard probes record into it from the next query on.
    pub fn set_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        if let Some(t) = self.config.slow_query_micros {
            recorder.set_slow_threshold_micros(t);
        }
        self.recorder = recorder.clone();
        let mut w = self.writer.lock();
        let mut index = w.core.index.clone();
        index.set_recorder(recorder);
        let core = Arc::new(SnapshotCore {
            store: w.core.store.clone(),
            index,
            published_at_micros: w.core.published_at_micros,
        });
        w.core = core.clone();
        let delta = Arc::from(w.delta.as_slice());
        let delta_len = w.delta_len;
        drop(w);
        *self.epoch.write() = Arc::new(Epoch {
            core,
            delta,
            delta_len,
        });
    }

    /// The camera profile used for ranking geometry.
    pub fn camera(&self) -> &CameraProfile {
        &self.cam
    }

    /// The active snapshot/retention configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Builds the next pending record (assigning the next dense id),
    /// pre-computes its index box, and offers it to standing queries.
    /// The caller freezes the returned records into one delta slice.
    fn stage(&self, w: &mut Writer, rep: RepFov, source: SegmentRef) -> DeltaRecord {
        let next = w.core.store.total() + w.delta_len;
        let id = SegmentId(u32::try_from(next).expect("store capacity exceeded"));
        w.delta_len += 1;
        w.max_t_end = w.max_t_end.max(rep.t_end);
        w.subscriptions.offer(&rep, id, source, &self.cam);
        DeltaRecord {
            rec: SegmentRecord { id, rep, source },
            bbox: fov_box(&rep),
        }
    }

    /// Publishes the current writer state: folds the delta into a new
    /// snapshot once it is large enough, otherwise republishes the same
    /// core with the updated delta (read-your-writes).
    fn publish(&self, w: &mut Writer) {
        if w.delta_len >= self.config.publish_threshold {
            self.publish_full(w, None);
        } else {
            let epoch = Arc::new(Epoch {
                core: w.core.clone(),
                delta: Arc::from(w.delta.as_slice()),
                delta_len: w.delta_len,
            });
            *self.epoch.write() = epoch;
        }
    }

    /// Folds the delta into a fresh snapshot: appends to the (COW) store,
    /// STR-rebuilds the touched shards, applies retention and compaction,
    /// and publishes the result. Returns how many segments retention
    /// dropped.
    fn publish_full(&self, w: &mut Writer, extra_horizon: Option<f64>) -> usize {
        let mut span = self.recorder.span("publish");
        let t0 = self.clock.now_micros();
        span.set_detail(w.delta_len as u64);
        let delta_len = w.delta_len;
        let prev_published = w.core.published_at_micros;

        let mut store = w.core.store.clone();
        let mut index = w.core.index.clone();
        let mut staged: Vec<(RepFov, SegmentId)> = Vec::with_capacity(delta_len);
        for batch in w.delta.drain(..) {
            for d in batch.iter() {
                let id = store.push(d.rec.rep, d.rec.source);
                debug_assert_eq!(id, d.rec.id, "delta ids must stay dense");
                staged.push((d.rec.rep, id));
            }
        }
        w.delta_len = 0;
        index.bulk_insert_exec(&self.exec, &staged);

        // Retention: expire shards past the horizon, retire the segments
        // that no longer exist in any shard.
        let mut horizon = extra_horizon;
        if let Some(h) = self.config.retention_horizon_s {
            let auto = w.max_t_end - h;
            if auto.is_finite() {
                horizon = Some(horizon.map_or(auto, |e| e.max(auto)));
            }
        }
        let mut dropped = 0usize;
        if let Some(h) = horizon {
            let report = index.expire_before(h);
            for id in &report.segments_dropped {
                if store.retire(*id) {
                    dropped += 1;
                }
            }
        }

        // Compaction: once enough of the store is tombstones, re-pack the
        // live records densely and rebuild the index. Ids are
        // server-internal; external references use `SegmentRef`.
        if store.dead() >= COMPACT_DEAD_FLOOR
            && store.dead() as f64 > self.config.compact_dead_fraction * store.total() as f64
        {
            let mut fresh = SegmentStore::new();
            let mut items = Vec::with_capacity(store.len());
            for rec in store.iter() {
                let id = fresh.push(rec.rep, rec.source);
                items.push((rec.rep, id));
            }
            let mut rebuilt = index.fresh_like();
            rebuilt.bulk_insert_exec(&self.exec, &items);
            store = fresh;
            index = rebuilt;
        }

        let now = self.clock.now_micros();
        let core = Arc::new(SnapshotCore {
            store,
            index,
            published_at_micros: now,
        });
        w.core = core.clone();
        *self.epoch.write() = Arc::new(Epoch {
            core,
            delta: Arc::from(Vec::new()),
            delta_len: 0,
        });
        if let Some(obs) = &self.obs {
            obs.publishes.inc();
            obs.rebuild_micros.record(now.saturating_sub(t0));
            obs.snapshot_age.record(now.saturating_sub(prev_published));
            obs.delta_size.record(delta_len as u64);
            obs.retention_dropped.add(dropped as u64);
        }
        dropped
    }

    /// Ingests one upload batch, returning the assigned segment ids.
    pub fn ingest_batch(&self, batch: &UploadBatch) -> Vec<SegmentId> {
        let mut span = self.recorder.span("ingest");
        span.set_detail(batch.reps.len() as u64);
        let t0 = if self.obs.is_some() {
            self.clock.now_micros()
        } else {
            0
        };
        let mut w = self.writer.lock();
        let mut staged = Vec::with_capacity(batch.reps.len());
        let ids = batch
            .reps
            .iter()
            .enumerate()
            .map(|(i, rep)| {
                let source = SegmentRef {
                    provider_id: batch.provider_id,
                    video_id: batch.video_id,
                    segment_idx: i as u32,
                };
                let d = self.stage(&mut w, *rep, source);
                let id = d.rec.id;
                staged.push(d);
                id
            })
            .collect();
        if !staged.is_empty() {
            w.delta.push(Arc::from(staged));
        }
        self.publish(&mut w);
        drop(w);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.segments.add(batch.reps.len() as u64);
            obs.ingest.record(self.clock.now_micros() - t0);
        }
        ids
    }

    /// Ingests a single representative FoV.
    pub fn ingest_one(&self, rep: RepFov, source: SegmentRef) -> SegmentId {
        let mut w = self.writer.lock();
        let d = self.stage(&mut w, rep, source);
        let id = d.rec.id;
        w.delta.push(Arc::from(vec![d]));
        self.publish(&mut w);
        drop(w);
        if let Some(obs) = &self.obs {
            obs.segments.inc();
        }
        id
    }

    /// Registers a standing query: every matching segment ingested from
    /// now on is queued until [`Self::poll_subscription`].
    pub fn subscribe(&self, query: Query, opts: QueryOptions) -> SubscriptionId {
        self.writer.lock().subscriptions.subscribe(query, opts)
    }

    /// Cancels a standing query.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.writer.lock().subscriptions.unsubscribe(id)
    }

    /// Drains a standing query's accumulated matches (arrival order).
    pub fn poll_subscription(&self, id: SubscriptionId) -> Vec<SearchHit> {
        self.writer.lock().subscriptions.poll(id)
    }

    /// Answers a query against an already-acquired epoch, completing the
    /// latency accounting started at `t0` (the caller reads the clock
    /// once before acquiring the epoch; this method reads it once more
    /// uninstrumented, three more times instrumented). Scanning and
    /// ranking are lock-free: the epoch is immutable, and the shard
    /// fan-out runs on the server's executor.
    fn query_on(
        &self,
        epoch: &Epoch,
        t0: u64,
        query: &Query,
        opts: &QueryOptions,
    ) -> Vec<SearchHit> {
        // Root of this query's span tree, armed for slow-query capture:
        // if its wall time (on the recorder's clock) crosses the slow
        // threshold, the whole tree is pinned into the retained log.
        // Child spans below — shard probes included, even when stolen by
        // other workers — parent to this context.
        let mut root = self.recorder.guarded_span("query");
        let hits = match &self.obs {
            None => {
                let candidates = {
                    let _span = self.recorder.span("index_scan");
                    epoch.core.index.candidates_exec(&self.exec, query)
                };
                let mut hits = collect_hits(&candidates, &epoch.core.store, &self.cam, query, opts);
                if epoch.delta_len > 0 {
                    let _span = self.recorder.span("delta_scan");
                    let boxes = query_boxes(query);
                    for d in epoch.delta_records() {
                        if boxes.intersects(&d.bbox) && keep(&d.rec, &self.cam, query, opts) {
                            hits.push(hit_for(&d.rec, &self.cam, query));
                        }
                    }
                }
                {
                    let _span = self.recorder.span("ranking");
                    finalize_hits(&mut hits, opts);
                }
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.query_micros
                    .fetch_add(self.clock.now_micros() - t0, Ordering::Relaxed);
                hits
            }
            Some(obs) => {
                let t_locked = self.clock.now_micros();
                let mut search = SearchStats::default();
                let candidates = {
                    let _span = self.recorder.span("index_scan");
                    epoch
                        .core
                        .index
                        .candidates_with_stats_exec(&self.exec, query, &mut search)
                };
                let boxes = query_boxes(query);
                let delta_matches: Vec<&DeltaRecord> = if epoch.delta_len > 0 {
                    let _span = self.recorder.span("delta_scan");
                    let matches: Vec<&DeltaRecord> = epoch
                        .delta_records()
                        .filter(|d| boxes.intersects(&d.bbox))
                        .collect();
                    // The delta scan is one flat "leaf" over pending records.
                    search.nodes_visited += 1;
                    search.leaves_scanned += 1;
                    search.items_tested += epoch.delta_len as u64;
                    search.items_matched += matches.len() as u64;
                    matches
                } else {
                    Vec::new()
                };
                let n_candidates = candidates.len() + delta_matches.len();
                let t_scanned = self.clock.now_micros();
                let hits = {
                    let _span = self.recorder.span("ranking");
                    let mut hits =
                        collect_hits(&candidates, &epoch.core.store, &self.cam, query, opts);
                    hits.extend(
                        delta_matches
                            .into_iter()
                            .filter(|d| keep(&d.rec, &self.cam, query, opts))
                            .map(|d| hit_for(&d.rec, &self.cam, query)),
                    );
                    finalize_hits(&mut hits, opts);
                    hits
                };
                let t_done = self.clock.now_micros();

                let n_queries = self.queries.fetch_add(1, Ordering::Relaxed) + 1;
                self.query_micros.fetch_add(t_done - t0, Ordering::Relaxed);
                obs.lock_wait.record(t_locked - t0);
                obs.index_scan.record(t_scanned - t_locked);
                obs.ranking.record(t_done - t_scanned);
                obs.query_total.record(t_done - t0);
                obs.candidates.record(n_candidates as u64);
                obs.index_nodes.record(search.nodes_visited);
                obs.index_leaves.record(search.leaves_scanned);
                if obs.trace.try_sample() {
                    obs.trace.record("query", t_done - t0, n_candidates as u64);
                }
                // Auto-derive the slow-query threshold from the live p99
                // unless the config pinned a fixed value.
                if self.config.slow_query_micros.is_none()
                    && self.recorder.is_enabled()
                    && n_queries.is_multiple_of(AUTO_THRESHOLD_INTERVAL)
                {
                    let p99 = obs.query_total.snapshot().p99();
                    if p99 > 0 {
                        self.recorder.set_slow_threshold_micros(p99);
                    }
                }
                hits
            }
        };
        root.set_detail(hits.len() as u64);
        hits
    }

    /// Answers a query with the paper's rank-based retrieval. Lock-free
    /// after the initial epoch acquisition: the snapshot `Arc` is cloned
    /// in a momentary read-side critical section and scanning + ranking
    /// run against immutable data.
    pub fn query(&self, query: &Query, opts: &QueryOptions) -> Vec<SearchHit> {
        let t0 = self.clock.now_micros();
        let epoch = self.epoch.read().clone();
        self.query_on(&epoch, t0, query, opts)
    }

    /// Answers a *k-nearest* request: the `k` segments closest to `center`
    /// whose intervals overlap `[t_start, t_end]`, subject to the same
    /// direction/coverage filters as [`Self::query`].
    ///
    /// Useful when the querier has no natural radius ("show me whatever
    /// was filmed closest to this spot"). Implemented as an
    /// expanding-radius search over the spatio-temporal index: the radius
    /// doubles until `k` filtered hits are found or the search has covered
    /// `max_radius_m`.
    ///
    /// Early exit at `k` hits is only sound when the ranking key grows
    /// with distance. Under [`RankMode::Distance`] it does; under
    /// [`RankMode::Quality`] a higher-quality segment can sit outside the
    /// current ring, so the search keeps expanding until the radius
    /// covers the camera's viewing range (beyond which the quality
    /// proximity term is zero, so nothing unexplored can outrank a found
    /// hit) or `max_radius_m`, whichever is smaller.
    pub fn query_nearest(
        &self,
        t_start: f64,
        t_end: f64,
        center: swag_geo::LatLon,
        k: usize,
        opts: &QueryOptions,
        max_radius_m: f64,
    ) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        // Each expansion round's query span becomes a child of this one.
        let _span = self.recorder.span("query_nearest");
        // Below this radius, unexplored segments may still outrank found
        // ones, so k hits are not enough to stop.
        let settle_radius_m = match opts.rank {
            RankMode::Distance => 0.0,
            RankMode::Quality => self.cam.view_radius_m.min(max_radius_m),
        };
        let mut radius = 50.0_f64.min(max_radius_m);
        loop {
            if let Some(obs) = &self.obs {
                obs.nearest_rounds.inc();
            }
            let q = Query::new(t_start, t_end, center, radius);
            let wide = QueryOptions {
                top_n: usize::MAX,
                ..*opts
            };
            let hits = self.query(&q, &wide);
            if (hits.len() >= k && radius >= settle_radius_m) || radius >= max_radius_m {
                let mut hits = hits;
                hits.truncate(k);
                return hits;
            }
            radius = (radius * 2.0).min(max_radius_m);
        }
    }

    /// Retracts every segment a provider contributed (the §I privacy
    /// concern: contributors stay in control of their descriptors).
    /// Returns how many segments were removed. The retraction publishes a
    /// fresh snapshot immediately — it does not wait for the next
    /// threshold-driven publish.
    pub fn retract_provider(&self, provider_id: u64) -> usize {
        let mut w = self.writer.lock();
        // Fold pending records into the core first: retraction then only
        // has to retire published records, and delta ids stay dense.
        if w.delta_len > 0 {
            self.publish_full(&mut w, None);
        }

        let victims: Vec<(RepFov, SegmentId)> = w
            .core
            .store
            .iter()
            .filter(|rec| rec.source.provider_id == provider_id)
            .map(|rec| (rec.rep, rec.id))
            .collect();
        let removed = victims.len();
        if !victims.is_empty() {
            let mut store = w.core.store.clone();
            let mut index = w.core.index.clone();
            for (rep, id) in &victims {
                let unindexed = index.remove(rep, *id);
                debug_assert!(unindexed, "index and store disagreed on {id:?}");
                store.retire(*id);
            }
            let core = Arc::new(SnapshotCore {
                store,
                index,
                published_at_micros: w.core.published_at_micros,
            });
            w.core = core.clone();
            *self.epoch.write() = Arc::new(Epoch {
                core,
                delta: Arc::from(Vec::new()),
                delta_len: 0,
            });
            if let Some(obs) = &self.obs {
                obs.publishes.inc();
            }
        }
        removed
    }

    /// Expires everything older than `horizon_s` (paper-time seconds):
    /// drops index shards ending at or before the horizon and retires
    /// fully-expired segments from the store (pruning it once compaction
    /// kicks in). Publishes the shrunken snapshot immediately and returns
    /// how many segments were dropped.
    pub fn expire_before(&self, horizon_s: f64) -> usize {
        let mut w = self.writer.lock();
        self.publish_full(&mut w, Some(horizon_s))
    }

    /// Answers many queries against **one** epoch: the snapshot `Arc` is
    /// cloned once for the whole batch, so a publish landing mid-batch
    /// cannot make later queries see different data than earlier ones.
    /// Queries are evaluated on the server's executor (`threads <= 1`
    /// forces an in-order serial loop); result order matches input order
    /// and is byte-identical in serial and parallel mode.
    pub fn query_batch(
        &self,
        queries: &[Query],
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<Vec<SearchHit>> {
        let epoch = self.epoch.read().clone();
        let one = |q: &Query| {
            let t0 = self.clock.now_micros();
            self.query_on(&epoch, t0, q, opts)
        };
        if threads <= 1 || self.exec.is_serial() {
            return queries.iter().map(one).collect();
        }
        self.exec.par_map(queries, one)
    }

    /// Exports every stored record, pending delta included (for
    /// snapshotting; see [`crate::persistence`]).
    pub fn export_records(&self) -> Vec<crate::store::SegmentRecord> {
        let epoch = self.epoch.read().clone();
        let mut out: Vec<SegmentRecord> = epoch.core.store.iter().copied().collect();
        out.extend(epoch.delta_records().map(|d| d.rec));
        out
    }

    /// Rebuilds a server from records, STR-bulk-loading the sharded index.
    pub fn from_records(cam: CameraProfile, records: Vec<(RepFov, SegmentRef)>) -> Self {
        Self::from_records_with_config(cam, ServerConfig::default(), records)
    }

    /// [`Self::from_records`] with explicit snapshot/retention tuning.
    pub fn from_records_with_config(
        cam: CameraProfile,
        config: ServerConfig,
        records: Vec<(RepFov, SegmentRef)>,
    ) -> Self {
        Self::from_records_with_config_exec(cam, config, Executor::global().clone(), records)
    }

    /// [`Self::from_records_with_config`] on an explicit executor: the
    /// STR bulk load runs on `exec` (parallel slab packing when it has
    /// threads), and the server keeps `exec` for query fan-out afterwards.
    pub fn from_records_with_config_exec(
        cam: CameraProfile,
        config: ServerConfig,
        exec: Executor,
        records: Vec<(RepFov, SegmentRef)>,
    ) -> Self {
        let mut server = Self::with_config(cam, config);
        server.set_executor(exec);
        {
            let mut w = server.writer.lock();
            let mut store = SegmentStore::new();
            let mut items = Vec::with_capacity(records.len());
            let mut max_t_end = f64::NEG_INFINITY;
            for (rep, source) in records {
                let id = store.push(rep, source);
                items.push((rep, id));
                max_t_end = max_t_end.max(rep.t_end);
            }
            let mut index = ShardedFovIndex::new(server.config.shard_width_s, server.config.index);
            index.set_recorder(server.recorder.clone());
            index.bulk_insert_exec(&server.exec, &items);
            let core = Arc::new(SnapshotCore {
                store,
                index,
                published_at_micros: server.clock.now_micros(),
            });
            w.core = core.clone();
            w.max_t_end = max_t_end;
            *server.epoch.write() = Arc::new(Epoch {
                core,
                delta: Arc::from(Vec::new()),
                delta_len: 0,
            });
        }
        server
    }

    /// Current statistics snapshot. Phase histograms are empty unless
    /// observability is attached.
    pub fn stats(&self) -> ServerStats {
        let (lock_wait, index_scan, ranking, query) = match &self.obs {
            Some(o) => (
                o.lock_wait.snapshot(),
                o.index_scan.snapshot(),
                o.ranking.snapshot(),
                o.query_total.snapshot(),
            ),
            None => (
                HistogramSnapshot::empty(),
                HistogramSnapshot::empty(),
                HistogramSnapshot::empty(),
                HistogramSnapshot::empty(),
            ),
        };
        let epoch = self.epoch.read().clone();
        ServerStats {
            segments: epoch.core.store.len() + epoch.delta_len,
            store_slots: epoch.core.store.total() + epoch.delta_len,
            shards: epoch.core.index.shard_count(),
            pending_delta: epoch.delta_len,
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            query_micros_total: self.query_micros.load(Ordering::Relaxed),
            lock_wait_micros: lock_wait,
            index_scan_micros: index_scan,
            ranking_micros: ranking,
            query_micros: query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    /// Advances by a fixed step on every read, so each timed interval in
    /// the query path is exactly `step` microseconds.
    struct SteppingClock {
        t: AtomicU64,
        step: u64,
    }

    impl SteppingClock {
        fn with_step(step: u64) -> Arc<Self> {
            Arc::new(SteppingClock {
                t: AtomicU64::new(0),
                step,
            })
        }
    }

    impl MonotonicClock for SteppingClock {
        fn now_micros(&self) -> u64 {
            self.t.fetch_add(self.step, Ordering::Relaxed)
        }
    }

    fn batch(provider: u64, n: usize) -> UploadBatch {
        UploadBatch {
            provider_id: provider,
            video_id: 1,
            reps: (0..n)
                .map(|i| {
                    let p = center().offset(180.0, 10.0 + i as f64 * 5.0);
                    RepFov::new(i as f64 * 10.0, i as f64 * 10.0 + 8.0, Fov::new(p, 0.0))
                })
                .collect(),
        }
    }

    #[test]
    fn ingest_and_query_round_trip() {
        let server = CloudServer::new(CameraProfile::smartphone());
        let ids = server.ingest_batch(&batch(42, 5));
        assert_eq!(ids.len(), 5);
        let q = Query::new(0.0, 100.0, center(), 100.0);
        let hits = server.query(&q, &QueryOptions::default());
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].source.provider_id, 42);
        // Nearest first.
        assert!((hits[0].distance_m - 10.0).abs() < 0.5);
        let stats = server.stats();
        assert_eq!(stats.segments, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn temporal_window_restricts_results() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 5)); // segments at t = 0-8, 10-18, ...
        let q = Query::new(20.0, 28.0, center(), 200.0);
        let hits = server.query(&q, &QueryOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rep.t_start, 20.0);
    }

    #[test]
    fn linear_and_rtree_servers_agree() {
        let a = CloudServer::with_index(CameraProfile::smartphone(), IndexKind::RTree);
        let b = CloudServer::with_index(CameraProfile::smartphone(), IndexKind::Linear);
        for provider in 0..10 {
            let batch = batch(provider, 8);
            a.ingest_batch(&batch);
            b.ingest_batch(&batch);
        }
        let q = Query::new(0.0, 100.0, center(), 60.0);
        let opts = QueryOptions {
            top_n: 50,
            ..QueryOptions::default()
        };
        let mut ha: Vec<_> = a.query(&q, &opts).iter().map(|h| h.source).collect();
        let mut hb: Vec<_> = b.query(&q, &opts).iter().map(|h| h.source).collect();
        ha.sort_by_key(|s| (s.provider_id, s.segment_idx));
        hb.sort_by_key(|s| (s.provider_id, s.segment_idx));
        assert_eq!(ha, hb);
    }

    #[test]
    fn standing_query_sees_only_future_matching_ingest() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 3)); // before subscribing: invisible
        let sub = server.subscribe(
            Query::new(0.0, 1000.0, center(), 100.0),
            QueryOptions::default(),
        );
        assert!(server.poll_subscription(sub).is_empty());

        server.ingest_batch(&batch(2, 3));
        let hits = server.poll_subscription(sub);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.source.provider_id == 2));
        // Drained; cancel stops future delivery.
        assert!(server.poll_subscription(sub).is_empty());
        assert!(server.unsubscribe(sub));
        server.ingest_batch(&batch(3, 3));
        assert!(server.poll_subscription(sub).is_empty());
    }

    #[test]
    fn retract_provider_hides_their_segments() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 5));
        server.ingest_batch(&batch(2, 5));
        assert_eq!(server.stats().segments, 10);

        let removed = server.retract_provider(1);
        assert_eq!(removed, 5);
        assert_eq!(server.stats().segments, 5);
        // Retracting again is a no-op.
        assert_eq!(server.retract_provider(1), 0);

        let q = Query::new(0.0, 100.0, center(), 200.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&q, &opts);
        assert!(hits.iter().all(|h| h.source.provider_id == 2));
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn retraction_removes_published_and_pending_records() {
        // Threshold 10: the first batch publishes into the sharded
        // snapshot, the next two stay pending in the delta. Retraction
        // must reach both places.
        let server = CloudServer::with_config(
            CameraProfile::smartphone(),
            ServerConfig {
                publish_threshold: 10,
                ..ServerConfig::default()
            },
        );
        server.ingest_batch(&batch(1, 10)); // published (threshold hit)
        server.ingest_batch(&batch(1, 3)); // pending
        server.ingest_batch(&batch(2, 3)); // pending
        assert_eq!(server.stats().pending_delta, 6);
        assert!(server.stats().shards > 0);

        assert_eq!(server.retract_provider(1), 13);
        let stats = server.stats();
        assert_eq!(stats.segments, 3);
        // Retraction folds the delta into the core before retiring, so
        // nothing stays pending afterwards.
        assert_eq!(stats.pending_delta, 0);
        let q = Query::new(0.0, 1000.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&q, &opts);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.source.provider_id == 2));
    }

    #[test]
    fn retraction_survives_snapshots() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 4));
        server.ingest_batch(&batch(2, 4));
        server.retract_provider(1);
        let restored = crate::persistence::load_snapshot(
            crate::persistence::save_snapshot(&server).unwrap(),
            CameraProfile::smartphone(),
        )
        .unwrap();
        assert_eq!(restored.stats().segments, 4);
        let q = Query::new(0.0, 100.0, center(), 200.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        assert!(restored
            .query(&q, &opts)
            .iter()
            .all(|h| h.source.provider_id == 2));
    }

    #[test]
    fn publish_threshold_folds_delta_into_snapshot() {
        let server = CloudServer::with_config(
            CameraProfile::smartphone(),
            ServerConfig {
                publish_threshold: 4,
                ..ServerConfig::default()
            },
        );
        server.ingest_batch(&batch(1, 3));
        let stats = server.stats();
        // Below the threshold everything is still pending, yet visible.
        assert_eq!((stats.pending_delta, stats.shards), (3, 0));
        let q = Query::new(0.0, 1000.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        assert_eq!(server.query(&q, &opts).len(), 3);

        server.ingest_batch(&batch(2, 2)); // 5 >= 4: snapshot published
        let stats = server.stats();
        assert_eq!(stats.pending_delta, 0);
        assert!(stats.shards > 0);
        assert_eq!(stats.segments, 5);
        assert_eq!(server.query(&q, &opts).len(), 5);
    }

    #[test]
    fn retention_horizon_expires_old_segments_at_publish() {
        let server = CloudServer::with_config(
            CameraProfile::smartphone(),
            ServerConfig {
                shard_width_s: 50.0,
                publish_threshold: 1, // publish on every ingest
                retention_horizon_s: Some(100.0),
                ..ServerConfig::default()
            },
        );
        let src = |p| SegmentRef {
            provider_id: p,
            video_id: 0,
            segment_idx: 0,
        };
        let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
        server.ingest_one(RepFov::new(0.0, 10.0, fov), src(1));
        assert_eq!(server.stats().segments, 1);
        // The second ingest moves the retention clock to t=510; the first
        // segment's shard now sits past the 100 s horizon and is dropped.
        server.ingest_one(RepFov::new(500.0, 510.0, fov), src(2));
        let stats = server.stats();
        assert_eq!(stats.segments, 1);
        let q = Query::new(0.0, 1000.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&q, &opts);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].source.provider_id, 2);
    }

    #[test]
    fn explicit_expiry_prunes_and_compacts_the_store() {
        let server = CloudServer::new(CameraProfile::smartphone());
        let fov = Fov::new(center().offset(180.0, 20.0), 0.0);
        // 40 old segments (bucket 0 at the default 600 s width), 10 recent.
        for i in 0..40u64 {
            server.ingest_one(
                RepFov::new(i as f64, i as f64 + 5.0, fov),
                SegmentRef {
                    provider_id: 1,
                    video_id: 0,
                    segment_idx: i as u32,
                },
            );
        }
        for i in 0..10u64 {
            server.ingest_one(
                RepFov::new(1000.0 + i as f64, 1005.0 + i as f64, fov),
                SegmentRef {
                    provider_id: 2,
                    video_id: 0,
                    segment_idx: i as u32,
                },
            );
        }
        assert_eq!(server.stats().segments, 50);

        let dropped = server.expire_before(600.0);
        assert_eq!(dropped, 40);
        let stats = server.stats();
        assert_eq!(stats.segments, 10);
        // 40 tombstones out of 50 slots crosses the compaction threshold:
        // the store is re-packed densely.
        assert_eq!(stats.store_slots, 10);
        let q = Query::new(0.0, 2000.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&q, &opts);
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|h| h.source.provider_id == 2));
        // Expiring again finds nothing new.
        assert_eq!(server.expire_before(600.0), 0);
    }

    #[test]
    fn batch_query_matches_sequential() {
        let server = CloudServer::new(CameraProfile::smartphone());
        for provider in 0..6 {
            server.ingest_batch(&batch(provider, 8));
        }
        let queries: Vec<Query> = (0..23)
            .map(|i| {
                Query::new(
                    f64::from(i) * 3.0,
                    f64::from(i) * 3.0 + 40.0,
                    center().offset(f64::from(i) * 16.0, 20.0),
                    150.0,
                )
            })
            .collect();
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let sequential: Vec<Vec<SearchHit>> =
            queries.iter().map(|q| server.query(q, &opts)).collect();
        for threads in [1, 3, 8] {
            let parallel = server.query_batch(&queries, &opts, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                let pv: Vec<_> = p.iter().map(|h| h.source).collect();
                let sv: Vec<_> = s.iter().map(|h| h.source).collect();
                assert_eq!(pv, sv, "threads = {threads}");
            }
        }
    }

    #[test]
    fn query_nearest_returns_k_closest() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(5, 8)); // distances 10, 15, ..., 45 m south
        let opts = QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query_nearest(0.0, 1000.0, center(), 3, &opts, 100_000.0);
        assert_eq!(hits.len(), 3);
        let d: Vec<f64> = hits.iter().map(|h| h.distance_m).collect();
        assert!(
            (d[0] - 10.0).abs() < 0.5 && (d[1] - 15.0).abs() < 0.5 && (d[2] - 20.0).abs() < 0.5
        );
    }

    #[test]
    fn query_nearest_expands_radius_to_find_far_segments() {
        let server = CloudServer::new(CameraProfile::smartphone());
        // One lonely segment 3 km away, pointing at the centre.
        let p = center().offset(180.0, 3000.0);
        server.ingest_one(
            RepFov::new(0.0, 10.0, Fov::new(p, 0.0)),
            SegmentRef {
                provider_id: 1,
                video_id: 0,
                segment_idx: 0,
            },
        );
        let opts = QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query_nearest(0.0, 100.0, center(), 1, &opts, 10_000.0);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].distance_m - 3000.0).abs() < 10.0);
        // With a tight radius budget the search gives up empty-handed.
        assert!(server
            .query_nearest(0.0, 100.0, center(), 1, &opts, 500.0)
            .is_empty());
    }

    #[test]
    fn query_nearest_zero_k() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 3));
        assert!(server
            .query_nearest(0.0, 100.0, center(), 0, &QueryOptions::default(), 1e5)
            .is_empty());
    }

    #[test]
    fn quality_nearest_keeps_expanding_past_early_hits() {
        // Regression: the k-hit early exit is only sound under Distance
        // ranking. Under Quality, a far-but-dead-on segment outranks a
        // near-but-askew one, so stopping at the first ring that yields k
        // hits returns the wrong segment.
        let server = CloudServer::new(CameraProfile::smartphone());
        // 20 m south but pointing 20 degrees off the scene: quality
        // 0.8 (proximity) x 0.2 (alignment) = 0.16.
        server.ingest_one(
            RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 20.0), 20.0)),
            SegmentRef {
                provider_id: 1,
                video_id: 0,
                segment_idx: 0,
            },
        );
        // 80 m south, dead-on: quality 0.2 x 1.0 = 0.2. Outside the
        // initial 50 m ring, so a premature exit never sees it.
        server.ingest_one(
            RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 80.0), 0.0)),
            SegmentRef {
                provider_id: 2,
                video_id: 0,
                segment_idx: 0,
            },
        );
        let opts = QueryOptions {
            rank: RankMode::Quality,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query_nearest(0.0, 10.0, center(), 1, &opts, 200.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].source.provider_id, 2,
            "quality ranking must surface the dead-on segment beyond the first ring"
        );
        // Distance mode still prefers the nearer segment.
        let opts = QueryOptions {
            rank: RankMode::Distance,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query_nearest(0.0, 10.0, center(), 1, &opts, 200.0);
        assert_eq!(hits[0].source.provider_id, 1);
    }

    #[test]
    fn injected_clock_makes_latency_accounting_exact() {
        let server = CloudServer::with_clock(
            CameraProfile::smartphone(),
            IndexKind::RTree,
            SteppingClock::with_step(7),
        );
        server.ingest_batch(&batch(1, 5));
        let q = Query::new(0.0, 100.0, center(), 100.0);
        for _ in 0..10 {
            server.query(&q, &QueryOptions::default());
        }
        let stats = server.stats();
        assert_eq!(stats.queries, 10);
        // Uninstrumented queries read the clock exactly twice.
        assert_eq!(stats.query_micros_total, 10 * 7);
        // No observability attached: phase histograms stay empty.
        assert_eq!(stats.query_micros, swag_obs::HistogramSnapshot::empty());
    }

    #[test]
    fn observability_splits_query_phases_exactly() {
        let reg = Registry::new();
        let mut server = CloudServer::with_clock(
            CameraProfile::smartphone(),
            IndexKind::RTree,
            SteppingClock::with_step(5),
        );
        server.attach_observability(&reg);
        server.ingest_batch(&batch(3, 6));
        let q = Query::new(0.0, 100.0, center(), 200.0);
        for _ in 0..4 {
            server.query(&q, &QueryOptions::default());
        }

        let stats = server.stats();
        assert_eq!(stats.queries, 4);
        // Instrumented queries read the clock four times: each of the
        // three phases is exactly one step, the total exactly three.
        for phase in [
            &stats.lock_wait_micros,
            &stats.index_scan_micros,
            &stats.ranking_micros,
        ] {
            assert_eq!(phase.count, 4);
            assert_eq!(phase.sum, 4 * 5);
        }
        assert_eq!(stats.query_micros.sum, 4 * 15);
        assert_eq!(stats.query_micros_total, 4 * 15);

        // The same numbers are visible through the registry.
        assert_eq!(
            reg.histogram("swag_server_query_micros").snapshot().count,
            4
        );
        assert_eq!(reg.counter("swag_server_segments_ingested_total").get(), 6);
        assert_eq!(
            reg.histogram("swag_server_ingest_micros").snapshot().count,
            1
        );
        let cands = reg.histogram("swag_server_query_candidates").snapshot();
        assert_eq!(cands.count, 4);
        assert_eq!(cands.sum, 4 * 6);
        assert!(
            reg.histogram("swag_server_index_leaves_scanned")
                .snapshot()
                .sum
                >= 4
        );
    }

    #[test]
    fn publish_metrics_record_snapshot_lifecycle() {
        let reg = Registry::new();
        let mut server = CloudServer::with_config(
            CameraProfile::smartphone(),
            ServerConfig {
                publish_threshold: 4,
                ..ServerConfig::default()
            },
        );
        server.attach_observability(&reg);
        server.ingest_batch(&batch(1, 3)); // pending only
        assert_eq!(reg.counter("swag_server_publishes_total").get(), 0);
        server.ingest_batch(&batch(2, 2)); // 5 >= 4: full publish
        assert_eq!(reg.counter("swag_server_publishes_total").get(), 1);
        let delta = reg.histogram("swag_server_snapshot_delta_size").snapshot();
        assert_eq!((delta.count, delta.sum), (1, 5));
        assert_eq!(
            reg.histogram("swag_server_snapshot_rebuild_micros")
                .snapshot()
                .count,
            1
        );
        assert_eq!(
            reg.histogram("swag_server_snapshot_age_micros")
                .snapshot()
                .count,
            1
        );
        // Shard fan-out metrics are wired through the published core.
        let q = Query::new(0.0, 1000.0, center(), 500.0);
        server.query(&q, &QueryOptions::default());
        assert_eq!(reg.histogram("swag_shard_fanout").snapshot().count, 1);
    }

    #[test]
    fn query_trace_samples_when_enabled() {
        let reg = Registry::new();
        let mut server = CloudServer::new(CameraProfile::smartphone());
        assert!(server.query_trace().is_none());
        server.attach_observability(&reg);
        server.ingest_batch(&batch(1, 4));
        let q = Query::new(0.0, 100.0, center(), 100.0);

        // Off by default: queries leave no events.
        server.query(&q, &QueryOptions::default());
        assert!(server.query_trace().unwrap().events().is_empty());

        server.query_trace().unwrap().enable(2);
        for _ in 0..6 {
            server.query(&q, &QueryOptions::default());
        }
        let events = server.query_trace().unwrap().events();
        assert_eq!(events.len(), 3); // 1 of every 2 queries sampled
        assert!(events.iter().all(|e| e.label == "query" && e.detail == 4));
    }

    #[test]
    fn concurrent_ingest_and_query() {
        let server = CloudServer::new(CameraProfile::smartphone());
        crossbeam::thread::scope(|s| {
            for provider in 0..8u64 {
                let server = &server;
                s.spawn(move |_| {
                    for _ in 0..20 {
                        server.ingest_batch(&batch(provider, 3));
                    }
                });
            }
            for _ in 0..4 {
                let server = &server;
                s.spawn(move |_| {
                    let q = Query::new(0.0, 1000.0, center(), 500.0);
                    for _ in 0..50 {
                        let _ = server.query(&q, &QueryOptions::default());
                    }
                });
            }
        })
        .unwrap();
        let stats = server.stats();
        assert_eq!(stats.segments, 8 * 20 * 3);
        assert_eq!(stats.batches, 160);
        assert_eq!(stats.queries, 200);
        // Final query sees everything in the window.
        let q = Query::new(0.0, 1000.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        assert_eq!(server.query(&q, &opts).len(), 480);
    }
}
