//! The concurrent cloud server.
//!
//! Wraps the store and index behind a `parking_lot::RwLock`: uploads take
//! the write lock briefly, queries run concurrently under the read lock.
//! Query latency and counts are tracked with atomics so statistics never
//! contend with the data path.
//!
//! Observability is opt-in: [`CloudServer::attach_observability`] wires
//! the query path to `swag-obs` histograms (lock wait vs. index scan vs.
//! ranking split, candidate counts, R-tree traversal work) and a sampled
//! per-query [`Trace`]. Without it, the only cost the query path pays is
//! one branch on an `Option`. Time comes from an injectable
//! [`MonotonicClock`] so latency accounting is exactly testable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use swag_core::{CameraProfile, RepFov, UploadBatch};
use swag_obs::{Counter, Histogram, HistogramSnapshot, MonotonicClock, Registry, Trace, WallClock};
use swag_rtree::SearchStats;

use crate::index::{FovIndex, IndexKind};
use crate::query::{Query, QueryOptions};
use crate::ranking::{rank_candidates, SearchHit};
use crate::store::{SegmentId, SegmentRef, SegmentStore};
use crate::subscribe::{SubscriptionId, SubscriptionSet};

/// Aggregated server statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Stored segments.
    pub segments: usize,
    /// Upload batches ingested.
    pub batches: u64,
    /// Queries answered.
    pub queries: u64,
    /// Total time spent answering queries, microseconds.
    pub query_micros_total: u64,
    /// Time queries spent acquiring the read lock (empty unless
    /// observability is attached).
    pub lock_wait_micros: HistogramSnapshot,
    /// Time queries spent scanning the spatio-temporal index.
    pub index_scan_micros: HistogramSnapshot,
    /// Time queries spent ranking candidates.
    pub ranking_micros: HistogramSnapshot,
    /// End-to-end query latency distribution.
    pub query_micros: HistogramSnapshot,
}

impl ServerStats {
    /// Mean query latency in microseconds (0 when no queries ran).
    pub fn mean_query_micros(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.query_micros_total as f64 / self.queries as f64
        }
    }
}

struct State {
    store: SegmentStore,
    index: FovIndex,
    subscriptions: SubscriptionSet,
}

/// Metric handles for an instrumented server. Handles are resolved once
/// at attach time; recording never touches the registry again.
struct ServerObs {
    lock_wait: Arc<Histogram>,
    index_scan: Arc<Histogram>,
    ranking: Arc<Histogram>,
    query_total: Arc<Histogram>,
    candidates: Arc<Histogram>,
    index_nodes: Arc<Histogram>,
    index_leaves: Arc<Histogram>,
    ingest: Arc<Histogram>,
    segments: Arc<Counter>,
    nearest_rounds: Arc<Counter>,
    trace: Trace,
}

impl ServerObs {
    fn from_registry(registry: &Registry) -> Self {
        ServerObs {
            lock_wait: registry.histogram("swag_server_query_lock_wait_micros"),
            index_scan: registry.histogram("swag_server_query_index_scan_micros"),
            ranking: registry.histogram("swag_server_query_ranking_micros"),
            query_total: registry.histogram("swag_server_query_micros"),
            candidates: registry.histogram("swag_server_query_candidates"),
            index_nodes: registry.histogram("swag_server_index_nodes_visited"),
            index_leaves: registry.histogram("swag_server_index_leaves_scanned"),
            ingest: registry.histogram("swag_server_ingest_micros"),
            segments: registry.counter("swag_server_segments_ingested_total"),
            nearest_rounds: registry.counter("swag_server_nearest_rounds_total"),
            trace: Trace::new(256),
        }
    }
}

/// The crowd-sourced retrieval server (paper §II).
///
/// ```
/// use swag_core::{CameraProfile, Fov, RepFov};
/// use swag_geo::LatLon;
/// use swag_server::{CloudServer, Query, QueryOptions, SegmentRef};
///
/// let server = CloudServer::new(CameraProfile::smartphone());
/// let scene = LatLon::new(40.0, 116.32);
/// // One segment filmed 20 m south of the scene, looking north at it.
/// server.ingest_one(
///     RepFov::new(10.0, 18.0, Fov::new(scene.offset(180.0, 20.0), 0.0)),
///     SegmentRef { provider_id: 7, video_id: 0, segment_idx: 0 },
/// );
/// let hits = server.query(
///     &Query::new(0.0, 60.0, scene, 50.0),
///     &QueryOptions::default(),
/// );
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].source.provider_id, 7);
/// ```
pub struct CloudServer {
    state: RwLock<State>,
    cam: CameraProfile,
    clock: Arc<dyn MonotonicClock>,
    obs: Option<ServerObs>,
    batches: AtomicU64,
    queries: AtomicU64,
    query_micros: AtomicU64,
}

impl std::fmt::Debug for CloudServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CloudServer")
            .field("segments", &stats.segments)
            .field("batches", &stats.batches)
            .field("queries", &stats.queries)
            .field("camera", &self.cam)
            .finish_non_exhaustive()
    }
}

impl CloudServer {
    /// Creates a server using an R-tree index and the given camera profile
    /// for ranking geometry.
    pub fn new(cam: CameraProfile) -> Self {
        Self::with_index(cam, IndexKind::RTree)
    }

    /// Creates a server with a chosen index backend.
    pub fn with_index(cam: CameraProfile, kind: IndexKind) -> Self {
        Self::with_clock(cam, kind, Arc::new(WallClock))
    }

    /// Creates a server reading time from an injected clock. Tests pass a
    /// deterministic clock and assert exact latency accounting.
    pub fn with_clock(cam: CameraProfile, kind: IndexKind, clock: Arc<dyn MonotonicClock>) -> Self {
        CloudServer {
            state: RwLock::new(State {
                store: SegmentStore::new(),
                index: FovIndex::new(kind),
                subscriptions: SubscriptionSet::new(),
            }),
            cam,
            clock,
            obs: None,
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            query_micros: AtomicU64::new(0),
        }
    }

    /// Wires this server's ingest and query paths to `registry` (metric
    /// names `swag_server_*`). Call before sharing the server across
    /// threads; until called, instrumentation costs one branch per query.
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(ServerObs::from_registry(registry));
    }

    /// The sampled per-query trace ring, present once observability is
    /// attached. Disabled (never sampling) until [`Trace::enable`].
    pub fn query_trace(&self) -> Option<&Trace> {
        self.obs.as_ref().map(|o| &o.trace)
    }

    /// The camera profile used for ranking geometry.
    pub fn camera(&self) -> &CameraProfile {
        &self.cam
    }

    /// Ingests one upload batch, returning the assigned segment ids.
    pub fn ingest_batch(&self, batch: &UploadBatch) -> Vec<SegmentId> {
        let t0 = if self.obs.is_some() {
            self.clock.now_micros()
        } else {
            0
        };
        let mut state = self.state.write();
        let ids = batch
            .reps
            .iter()
            .enumerate()
            .map(|(i, rep)| {
                let source = SegmentRef {
                    provider_id: batch.provider_id,
                    video_id: batch.video_id,
                    segment_idx: i as u32,
                };
                let id = state.store.push(*rep, source);
                state.index.insert(rep, id);
                state.subscriptions.offer(rep, id, source, &self.cam);
                id
            })
            .collect();
        drop(state);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.segments.add(batch.reps.len() as u64);
            obs.ingest.record(self.clock.now_micros() - t0);
        }
        ids
    }

    /// Ingests a single representative FoV.
    pub fn ingest_one(&self, rep: RepFov, source: SegmentRef) -> SegmentId {
        let mut state = self.state.write();
        let id = state.store.push(rep, source);
        state.index.insert(&rep, id);
        state.subscriptions.offer(&rep, id, source, &self.cam);
        drop(state);
        if let Some(obs) = &self.obs {
            obs.segments.inc();
        }
        id
    }

    /// Registers a standing query: every matching segment ingested from
    /// now on is queued until [`Self::poll_subscription`].
    pub fn subscribe(&self, query: Query, opts: QueryOptions) -> SubscriptionId {
        self.state.write().subscriptions.subscribe(query, opts)
    }

    /// Cancels a standing query.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        self.state.write().subscriptions.unsubscribe(id)
    }

    /// Drains a standing query's accumulated matches (arrival order).
    pub fn poll_subscription(&self, id: SubscriptionId) -> Vec<SearchHit> {
        self.state.write().subscriptions.poll(id)
    }

    /// Answers a query with the paper's rank-based retrieval.
    pub fn query(&self, query: &Query, opts: &QueryOptions) -> Vec<SearchHit> {
        match &self.obs {
            None => {
                let t0 = self.clock.now_micros();
                let state = self.state.read();
                let candidates = state.index.candidates(query);
                let hits = rank_candidates(&candidates, &state.store, &self.cam, query, opts);
                drop(state);
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.query_micros
                    .fetch_add(self.clock.now_micros() - t0, Ordering::Relaxed);
                hits
            }
            Some(obs) => {
                let t0 = self.clock.now_micros();
                let state = self.state.read();
                let t_locked = self.clock.now_micros();
                let mut search = SearchStats::default();
                let candidates = state.index.candidates_with_stats(query, &mut search);
                let t_scanned = self.clock.now_micros();
                let hits = rank_candidates(&candidates, &state.store, &self.cam, query, opts);
                drop(state);
                let t_done = self.clock.now_micros();

                self.queries.fetch_add(1, Ordering::Relaxed);
                self.query_micros.fetch_add(t_done - t0, Ordering::Relaxed);
                obs.lock_wait.record(t_locked - t0);
                obs.index_scan.record(t_scanned - t_locked);
                obs.ranking.record(t_done - t_scanned);
                obs.query_total.record(t_done - t0);
                obs.candidates.record(candidates.len() as u64);
                obs.index_nodes.record(search.nodes_visited);
                obs.index_leaves.record(search.leaves_scanned);
                if obs.trace.try_sample() {
                    obs.trace
                        .record("query", t_done - t0, candidates.len() as u64);
                }
                hits
            }
        }
    }

    /// Answers a *k-nearest* request: the `k` segments closest to `center`
    /// whose intervals overlap `[t_start, t_end]`, subject to the same
    /// direction/coverage filters as [`Self::query`].
    ///
    /// Useful when the querier has no natural radius ("show me whatever
    /// was filmed closest to this spot"). Implemented as an
    /// expanding-radius search over the spatio-temporal index: the radius
    /// doubles until `k` filtered hits are found or the search has covered
    /// `max_radius_m`.
    pub fn query_nearest(
        &self,
        t_start: f64,
        t_end: f64,
        center: swag_geo::LatLon,
        k: usize,
        opts: &QueryOptions,
        max_radius_m: f64,
    ) -> Vec<SearchHit> {
        if k == 0 {
            return Vec::new();
        }
        let mut radius = 50.0_f64.min(max_radius_m);
        loop {
            if let Some(obs) = &self.obs {
                obs.nearest_rounds.inc();
            }
            let q = Query::new(t_start, t_end, center, radius);
            let wide = QueryOptions {
                top_n: usize::MAX,
                ..*opts
            };
            let hits = self.query(&q, &wide);
            // Hits beyond the *previous* radius could be shadowed by
            // unexplored ring candidates only if ranking were non-metric;
            // distance ranking makes the first k stable once k hits fall
            // inside the current radius.
            if hits.len() >= k || radius >= max_radius_m {
                let mut hits = hits;
                hits.truncate(k);
                return hits;
            }
            radius = (radius * 2.0).min(max_radius_m);
        }
    }

    /// Retracts every segment a provider contributed (the §I privacy
    /// concern: contributors stay in control of their descriptors).
    /// Returns how many segments were removed.
    pub fn retract_provider(&self, provider_id: u64) -> usize {
        let mut state = self.state.write();
        let victims: Vec<(RepFov, SegmentId)> = state
            .store
            .iter()
            .filter(|rec| rec.source.provider_id == provider_id)
            .map(|rec| (rec.rep, rec.id))
            .collect();
        for (rep, id) in &victims {
            let removed = state.index.remove(rep, *id);
            debug_assert!(removed, "index and store disagreed on {id:?}");
            state.store.retire(*id);
        }
        victims.len()
    }

    /// Answers many queries concurrently using `threads` worker threads
    /// (crossbeam scoped threads under the shared read lock). Result order
    /// matches the input order.
    pub fn query_batch(
        &self,
        queries: &[Query],
        opts: &QueryOptions,
        threads: usize,
    ) -> Vec<Vec<SearchHit>> {
        let threads = threads.max(1);
        let mut results: Vec<Vec<SearchHit>> = vec![Vec::new(); queries.len()];
        let chunk = queries.len().div_ceil(threads).max(1);
        crossbeam::thread::scope(|s| {
            for (qs, out) in queries.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (q, slot) in qs.iter().zip(out.iter_mut()) {
                        *slot = self.query(q, opts);
                    }
                });
            }
        })
        .expect("query worker panicked");
        results
    }

    /// Exports every stored record (for snapshotting; see
    /// [`crate::persistence`]).
    pub fn export_records(&self) -> Vec<crate::store::SegmentRecord> {
        self.state.read().store.iter().copied().collect()
    }

    /// Rebuilds a server from records, STR-bulk-loading the R-tree index.
    pub fn from_records(cam: CameraProfile, records: Vec<(RepFov, SegmentRef)>) -> Self {
        let mut store = SegmentStore::new();
        let mut items = Vec::with_capacity(records.len());
        for (rep, source) in records {
            let id = store.push(rep, source);
            items.push((rep, id));
        }
        CloudServer {
            state: RwLock::new(State {
                store,
                index: FovIndex::bulk_load(items),
                subscriptions: SubscriptionSet::new(),
            }),
            cam,
            clock: Arc::new(WallClock),
            obs: None,
            batches: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            query_micros: AtomicU64::new(0),
        }
    }

    /// Current statistics snapshot. Phase histograms are empty unless
    /// observability is attached.
    pub fn stats(&self) -> ServerStats {
        let (lock_wait, index_scan, ranking, query) = match &self.obs {
            Some(o) => (
                o.lock_wait.snapshot(),
                o.index_scan.snapshot(),
                o.ranking.snapshot(),
                o.query_total.snapshot(),
            ),
            None => Default::default(),
        };
        ServerStats {
            segments: self.state.read().store.len(),
            batches: self.batches.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            query_micros_total: self.query_micros.load(Ordering::Relaxed),
            lock_wait_micros: lock_wait,
            index_scan_micros: index_scan,
            ranking_micros: ranking,
            query_micros: query,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    /// Advances by a fixed step on every read, so each timed interval in
    /// the query path is exactly `step` microseconds.
    struct SteppingClock {
        t: AtomicU64,
        step: u64,
    }

    impl SteppingClock {
        fn with_step(step: u64) -> Arc<Self> {
            Arc::new(SteppingClock {
                t: AtomicU64::new(0),
                step,
            })
        }
    }

    impl MonotonicClock for SteppingClock {
        fn now_micros(&self) -> u64 {
            self.t.fetch_add(self.step, Ordering::Relaxed)
        }
    }

    fn batch(provider: u64, n: usize) -> UploadBatch {
        UploadBatch {
            provider_id: provider,
            video_id: 1,
            reps: (0..n)
                .map(|i| {
                    let p = center().offset(180.0, 10.0 + i as f64 * 5.0);
                    RepFov::new(i as f64 * 10.0, i as f64 * 10.0 + 8.0, Fov::new(p, 0.0))
                })
                .collect(),
        }
    }

    #[test]
    fn ingest_and_query_round_trip() {
        let server = CloudServer::new(CameraProfile::smartphone());
        let ids = server.ingest_batch(&batch(42, 5));
        assert_eq!(ids.len(), 5);
        let q = Query::new(0.0, 100.0, center(), 100.0);
        let hits = server.query(&q, &QueryOptions::default());
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].source.provider_id, 42);
        // Nearest first.
        assert!((hits[0].distance_m - 10.0).abs() < 0.5);
        let stats = server.stats();
        assert_eq!(stats.segments, 5);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.queries, 1);
    }

    #[test]
    fn temporal_window_restricts_results() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 5)); // segments at t = 0-8, 10-18, ...
        let q = Query::new(20.0, 28.0, center(), 200.0);
        let hits = server.query(&q, &QueryOptions::default());
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rep.t_start, 20.0);
    }

    #[test]
    fn linear_and_rtree_servers_agree() {
        let a = CloudServer::with_index(CameraProfile::smartphone(), IndexKind::RTree);
        let b = CloudServer::with_index(CameraProfile::smartphone(), IndexKind::Linear);
        for provider in 0..10 {
            let batch = batch(provider, 8);
            a.ingest_batch(&batch);
            b.ingest_batch(&batch);
        }
        let q = Query::new(0.0, 100.0, center(), 60.0);
        let opts = QueryOptions {
            top_n: 50,
            ..QueryOptions::default()
        };
        let mut ha: Vec<_> = a.query(&q, &opts).iter().map(|h| h.source).collect();
        let mut hb: Vec<_> = b.query(&q, &opts).iter().map(|h| h.source).collect();
        ha.sort_by_key(|s| (s.provider_id, s.segment_idx));
        hb.sort_by_key(|s| (s.provider_id, s.segment_idx));
        assert_eq!(ha, hb);
    }

    #[test]
    fn standing_query_sees_only_future_matching_ingest() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 3)); // before subscribing: invisible
        let sub = server.subscribe(
            Query::new(0.0, 1000.0, center(), 100.0),
            QueryOptions::default(),
        );
        assert!(server.poll_subscription(sub).is_empty());

        server.ingest_batch(&batch(2, 3));
        let hits = server.poll_subscription(sub);
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|h| h.source.provider_id == 2));
        // Drained; cancel stops future delivery.
        assert!(server.poll_subscription(sub).is_empty());
        assert!(server.unsubscribe(sub));
        server.ingest_batch(&batch(3, 3));
        assert!(server.poll_subscription(sub).is_empty());
    }

    #[test]
    fn retract_provider_hides_their_segments() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 5));
        server.ingest_batch(&batch(2, 5));
        assert_eq!(server.stats().segments, 10);

        let removed = server.retract_provider(1);
        assert_eq!(removed, 5);
        assert_eq!(server.stats().segments, 5);
        // Retracting again is a no-op.
        assert_eq!(server.retract_provider(1), 0);

        let q = Query::new(0.0, 100.0, center(), 200.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&q, &opts);
        assert!(hits.iter().all(|h| h.source.provider_id == 2));
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn retraction_survives_snapshots() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 4));
        server.ingest_batch(&batch(2, 4));
        server.retract_provider(1);
        let restored = crate::persistence::load_snapshot(
            crate::persistence::save_snapshot(&server),
            CameraProfile::smartphone(),
        )
        .unwrap();
        assert_eq!(restored.stats().segments, 4);
        let q = Query::new(0.0, 100.0, center(), 200.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        assert!(restored
            .query(&q, &opts)
            .iter()
            .all(|h| h.source.provider_id == 2));
    }

    #[test]
    fn batch_query_matches_sequential() {
        let server = CloudServer::new(CameraProfile::smartphone());
        for provider in 0..6 {
            server.ingest_batch(&batch(provider, 8));
        }
        let queries: Vec<Query> = (0..23)
            .map(|i| {
                Query::new(
                    f64::from(i) * 3.0,
                    f64::from(i) * 3.0 + 40.0,
                    center().offset(f64::from(i) * 16.0, 20.0),
                    150.0,
                )
            })
            .collect();
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let sequential: Vec<Vec<SearchHit>> =
            queries.iter().map(|q| server.query(q, &opts)).collect();
        for threads in [1, 3, 8] {
            let parallel = server.query_batch(&queries, &opts, threads);
            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                let pv: Vec<_> = p.iter().map(|h| h.source).collect();
                let sv: Vec<_> = s.iter().map(|h| h.source).collect();
                assert_eq!(pv, sv, "threads = {threads}");
            }
        }
    }

    #[test]
    fn query_nearest_returns_k_closest() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(5, 8)); // distances 10, 15, ..., 45 m south
        let opts = QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query_nearest(0.0, 1000.0, center(), 3, &opts, 100_000.0);
        assert_eq!(hits.len(), 3);
        let d: Vec<f64> = hits.iter().map(|h| h.distance_m).collect();
        assert!(
            (d[0] - 10.0).abs() < 0.5 && (d[1] - 15.0).abs() < 0.5 && (d[2] - 20.0).abs() < 0.5
        );
    }

    #[test]
    fn query_nearest_expands_radius_to_find_far_segments() {
        let server = CloudServer::new(CameraProfile::smartphone());
        // One lonely segment 3 km away, pointing at the centre.
        let p = center().offset(180.0, 3000.0);
        server.ingest_one(
            RepFov::new(0.0, 10.0, Fov::new(p, 0.0)),
            SegmentRef {
                provider_id: 1,
                video_id: 0,
                segment_idx: 0,
            },
        );
        let opts = QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query_nearest(0.0, 100.0, center(), 1, &opts, 10_000.0);
        assert_eq!(hits.len(), 1);
        assert!((hits[0].distance_m - 3000.0).abs() < 10.0);
        // With a tight radius budget the search gives up empty-handed.
        assert!(server
            .query_nearest(0.0, 100.0, center(), 1, &opts, 500.0)
            .is_empty());
    }

    #[test]
    fn query_nearest_zero_k() {
        let server = CloudServer::new(CameraProfile::smartphone());
        server.ingest_batch(&batch(1, 3));
        assert!(server
            .query_nearest(0.0, 100.0, center(), 0, &QueryOptions::default(), 1e5)
            .is_empty());
    }

    #[test]
    fn injected_clock_makes_latency_accounting_exact() {
        let server = CloudServer::with_clock(
            CameraProfile::smartphone(),
            IndexKind::RTree,
            SteppingClock::with_step(7),
        );
        server.ingest_batch(&batch(1, 5));
        let q = Query::new(0.0, 100.0, center(), 100.0);
        for _ in 0..10 {
            server.query(&q, &QueryOptions::default());
        }
        let stats = server.stats();
        assert_eq!(stats.queries, 10);
        // Uninstrumented queries read the clock exactly twice.
        assert_eq!(stats.query_micros_total, 10 * 7);
        // No observability attached: phase histograms stay empty.
        assert_eq!(stats.query_micros, swag_obs::HistogramSnapshot::empty());
    }

    #[test]
    fn observability_splits_query_phases_exactly() {
        let reg = Registry::new();
        let mut server = CloudServer::with_clock(
            CameraProfile::smartphone(),
            IndexKind::RTree,
            SteppingClock::with_step(5),
        );
        server.attach_observability(&reg);
        server.ingest_batch(&batch(3, 6));
        let q = Query::new(0.0, 100.0, center(), 200.0);
        for _ in 0..4 {
            server.query(&q, &QueryOptions::default());
        }

        let stats = server.stats();
        assert_eq!(stats.queries, 4);
        // Instrumented queries read the clock four times: each of the
        // three phases is exactly one step, the total exactly three.
        for phase in [
            &stats.lock_wait_micros,
            &stats.index_scan_micros,
            &stats.ranking_micros,
        ] {
            assert_eq!(phase.count, 4);
            assert_eq!(phase.sum, 4 * 5);
        }
        assert_eq!(stats.query_micros.sum, 4 * 15);
        assert_eq!(stats.query_micros_total, 4 * 15);

        // The same numbers are visible through the registry.
        assert_eq!(
            reg.histogram("swag_server_query_micros").snapshot().count,
            4
        );
        assert_eq!(reg.counter("swag_server_segments_ingested_total").get(), 6);
        assert_eq!(
            reg.histogram("swag_server_ingest_micros").snapshot().count,
            1
        );
        let cands = reg.histogram("swag_server_query_candidates").snapshot();
        assert_eq!(cands.count, 4);
        assert_eq!(cands.sum, 4 * 6);
        assert!(
            reg.histogram("swag_server_index_leaves_scanned")
                .snapshot()
                .sum
                >= 4
        );
    }

    #[test]
    fn query_trace_samples_when_enabled() {
        let reg = Registry::new();
        let mut server = CloudServer::new(CameraProfile::smartphone());
        assert!(server.query_trace().is_none());
        server.attach_observability(&reg);
        server.ingest_batch(&batch(1, 4));
        let q = Query::new(0.0, 100.0, center(), 100.0);

        // Off by default: queries leave no events.
        server.query(&q, &QueryOptions::default());
        assert!(server.query_trace().unwrap().events().is_empty());

        server.query_trace().unwrap().enable(2);
        for _ in 0..6 {
            server.query(&q, &QueryOptions::default());
        }
        let events = server.query_trace().unwrap().events();
        assert_eq!(events.len(), 3); // 1 of every 2 queries sampled
        assert!(events.iter().all(|e| e.label == "query" && e.detail == 4));
    }

    #[test]
    fn concurrent_ingest_and_query() {
        let server = CloudServer::new(CameraProfile::smartphone());
        crossbeam::thread::scope(|s| {
            for provider in 0..8u64 {
                let server = &server;
                s.spawn(move |_| {
                    for _ in 0..20 {
                        server.ingest_batch(&batch(provider, 3));
                    }
                });
            }
            for _ in 0..4 {
                let server = &server;
                s.spawn(move |_| {
                    let q = Query::new(0.0, 1000.0, center(), 500.0);
                    for _ in 0..50 {
                        let _ = server.query(&q, &QueryOptions::default());
                    }
                });
            }
        })
        .unwrap();
        let stats = server.stats();
        assert_eq!(stats.segments, 8 * 20 * 3);
        assert_eq!(stats.batches, 160);
        assert_eq!(stats.queries, 200);
        // Final query sees everything in the window.
        let q = Query::new(0.0, 1000.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        assert_eq!(server.query(&q, &opts).len(), 480);
    }
}
