//! Server snapshots: serialise the segment store to bytes and restore it,
//! rebuilding the R-tree with an STR bulk load.
//!
//! The cloud server's state is exactly its representative-FoV records (the
//! index is derived data), so a snapshot is a sequence of
//! `(RepFov, SegmentRef)` records in the `swag-store` container format
//! (ISSUE 10): a self-describing v2 header, a u64 record count, and a crc32
//! footer, with the legacy v1 layout still readable. Restoring bulk-loads
//! the index, which is both faster and better-packed than replaying inserts
//! (see `benches/index_insert.rs`).

use bytes::{Buf, Bytes};
use swag_core::CameraProfile;

use crate::server::CloudServer;

pub use swag_store::SnapshotError;

/// Serialises a server's segment store in the current (v2) container
/// format.
///
/// Fails with [`SnapshotError::BadRecord`] if a stored record is outside
/// the codec's encodable domain (the server only holds records that came
/// in through the codec, so this indicates corruption), or with
/// [`SnapshotError::TooManyRecords`] past the container's count range.
pub fn save_snapshot(server: &CloudServer) -> Result<Bytes, SnapshotError> {
    let records: Vec<_> = server
        .export_records()
        .into_iter()
        .map(|rec| (rec.rep, rec.source))
        .collect();
    swag_store::encode_records(&records)
}

/// Restores a server from a snapshot, bulk-loading the R-tree index.
///
/// Accepts both container versions (v1 snapshots written before ISSUE 10
/// remain loadable). A whole-buffer restore is strict: bytes past the
/// declared record count are [`SnapshotError::TrailingBytes`], not
/// silently ignored. Segment ids are re-assigned densely in snapshot
/// order (they are server-internal; external references use
/// [`SegmentRef`](crate::store::SegmentRef)).
pub fn load_snapshot(buf: impl Buf, cam: CameraProfile) -> Result<CloudServer, SnapshotError> {
    let decoded = swag_store::decode_container(buf)?;
    if decoded.trailing > 0 {
        return Err(SnapshotError::TrailingBytes(decoded.trailing));
    }
    Ok(CloudServer::from_records(cam, decoded.records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, QueryOptions};
    use crate::store::SegmentRef;
    use bytes::{BufMut, BytesMut};
    use swag_core::{Fov, RepFov};
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn populated_server(n: usize) -> CloudServer {
        let server = CloudServer::new(CameraProfile::smartphone());
        for i in 0..n {
            let p = center().offset(i as f64 * 7.0, 10.0 + i as f64 * 3.0);
            server.ingest_one(
                RepFov::new(i as f64, i as f64 + 5.0, Fov::new(p, i as f64 * 11.0)),
                SegmentRef {
                    provider_id: i as u64 % 7,
                    video_id: i as u64 / 7,
                    segment_idx: i as u32,
                },
            );
        }
        server
    }

    #[test]
    fn snapshot_round_trip_preserves_queries() {
        let server = populated_server(200);
        let bytes = save_snapshot(&server).unwrap();
        let restored = load_snapshot(bytes, CameraProfile::smartphone()).unwrap();
        assert_eq!(restored.stats().segments, 200);

        let q = Query::new(0.0, 300.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let mut a: Vec<_> = server.query(&q, &opts).iter().map(|h| h.source).collect();
        let mut b: Vec<_> = restored.query(&q, &opts).iter().map(|h| h.source).collect();
        a.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
        b.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_server_round_trips() {
        let server = CloudServer::new(CameraProfile::smartphone());
        let bytes = save_snapshot(&server).unwrap();
        let restored = load_snapshot(bytes, CameraProfile::smartphone()).unwrap();
        assert_eq!(restored.stats().segments, 0);
    }

    #[test]
    fn restored_server_accepts_new_ingest() {
        let server = populated_server(50);
        let restored =
            load_snapshot(save_snapshot(&server).unwrap(), CameraProfile::smartphone()).unwrap();
        restored.ingest_one(
            RepFov::new(999.0, 1000.0, Fov::new(center(), 0.0)),
            SegmentRef {
                provider_id: 42,
                video_id: 0,
                segment_idx: 0,
            },
        );
        assert_eq!(restored.stats().segments, 51);
        let q = Query::new(999.0, 1000.0, center(), 10.0);
        let hits = restored.query(
            &q,
            &QueryOptions {
                direction_filter: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].source.provider_id, 42);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            load_snapshot(&b"xx"[..], CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdeadbeef);
        buf.put_u8(1);
        buf.put_u32_le(0);
        assert!(matches!(
            load_snapshot(buf.freeze(), CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::BadMagic(0xdeadbeef)
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let server = populated_server(3);
        let bytes = save_snapshot(&server).unwrap();
        let cut = bytes.slice(0..bytes.len() - 5);
        assert_eq!(
            load_snapshot(cut, CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let server = populated_server(1);
        let bytes = save_snapshot(&server).unwrap();
        let mut raw = bytes.to_vec();
        raw[4] = 99; // version byte
        assert_eq!(
            load_snapshot(&raw[..], CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn rejects_trailing_bytes() {
        let server = populated_server(2);
        let mut raw = save_snapshot(&server).unwrap().to_vec();
        raw.extend_from_slice(b"junk");
        assert_eq!(
            load_snapshot(&raw[..], CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::TrailingBytes(4)
        );
    }

    #[test]
    fn loads_legacy_v1_snapshots() {
        let server = populated_server(25);
        let records: Vec<_> = server
            .export_records()
            .into_iter()
            .map(|rec| (rec.rep, rec.source))
            .collect();
        let v1 = swag_store::encode_records_v1(&records).unwrap();
        let restored = load_snapshot(v1, CameraProfile::smartphone()).unwrap();
        assert_eq!(restored.stats().segments, 25);
    }
}
