//! Server snapshots: serialise the segment store to bytes and restore it,
//! rebuilding the R-tree with an STR bulk load.
//!
//! The cloud server's state is exactly its representative-FoV records (the
//! index is derived data), so a snapshot is a framed sequence of
//! `(SegmentRef, RepFov)` records. Restoring bulk-loads the index, which
//! is both faster and better-packed than replaying inserts
//! (see `benches/index_insert.rs`).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use swag_core::descriptor::CodecError;
use swag_core::{CameraProfile, DescriptorCodec};

use crate::server::CloudServer;
use crate::store::SegmentRef;

/// Errors produced while reading snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before a complete header/record.
    Truncated,
    /// Bad magic bytes.
    BadMagic(u32),
    /// Unknown snapshot version.
    BadVersion(u8),
    /// A representative-FoV record failed to decode.
    BadRecord(CodecError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic 0x{m:08x}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadRecord(e) => write!(f, "bad record: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Snapshot magic: "SWAG".
const MAGIC: u32 = 0x5357_4147;
/// Current snapshot version.
const VERSION: u8 = 1;
/// Per-record framing on top of the descriptor codec.
const REF_SIZE: usize = 8 + 8 + 4;

/// Serialises a server's segment store.
///
/// Fails with [`SnapshotError::BadRecord`] if a stored record is outside
/// the codec's encodable domain (the server only holds records that came
/// in through the codec, so this indicates corruption).
pub fn save_snapshot(server: &CloudServer) -> Result<Bytes, SnapshotError> {
    let records = server.export_records();
    let mut buf = BytesMut::with_capacity(
        4 + 1 + 4 + records.len() * (REF_SIZE + DescriptorCodec::RECORD_SIZE),
    );
    buf.put_u32_le(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(records.len() as u32);
    for rec in &records {
        buf.put_u64_le(rec.source.provider_id);
        buf.put_u64_le(rec.source.video_id);
        buf.put_u32_le(rec.source.segment_idx);
        DescriptorCodec::encode_rep(&rec.rep, &mut buf).map_err(SnapshotError::BadRecord)?;
    }
    Ok(buf.freeze())
}

/// Restores a server from a snapshot, bulk-loading the R-tree index.
///
/// Segment ids are re-assigned densely in snapshot order (they are
/// server-internal; external references use [`SegmentRef`]).
pub fn load_snapshot(mut buf: impl Buf, cam: CameraProfile) -> Result<CloudServer, SnapshotError> {
    if buf.remaining() < 4 + 1 + 4 {
        return Err(SnapshotError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    if buf.remaining() != count * (REF_SIZE + DescriptorCodec::RECORD_SIZE) {
        return Err(SnapshotError::Truncated);
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let source = SegmentRef {
            provider_id: buf.get_u64_le(),
            video_id: buf.get_u64_le(),
            segment_idx: buf.get_u32_le(),
        };
        let rep = DescriptorCodec::decode_rep(&mut buf).map_err(SnapshotError::BadRecord)?;
        records.push((rep, source));
    }
    Ok(CloudServer::from_records(cam, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, QueryOptions};
    use swag_core::{Fov, RepFov};
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn populated_server(n: usize) -> CloudServer {
        let server = CloudServer::new(CameraProfile::smartphone());
        for i in 0..n {
            let p = center().offset(i as f64 * 7.0, 10.0 + i as f64 * 3.0);
            server.ingest_one(
                RepFov::new(i as f64, i as f64 + 5.0, Fov::new(p, i as f64 * 11.0)),
                SegmentRef {
                    provider_id: i as u64 % 7,
                    video_id: i as u64 / 7,
                    segment_idx: i as u32,
                },
            );
        }
        server
    }

    #[test]
    fn snapshot_round_trip_preserves_queries() {
        let server = populated_server(200);
        let bytes = save_snapshot(&server).unwrap();
        let restored = load_snapshot(bytes, CameraProfile::smartphone()).unwrap();
        assert_eq!(restored.stats().segments, 200);

        let q = Query::new(0.0, 300.0, center(), 500.0);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let mut a: Vec<_> = server.query(&q, &opts).iter().map(|h| h.source).collect();
        let mut b: Vec<_> = restored.query(&q, &opts).iter().map(|h| h.source).collect();
        a.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
        b.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_server_round_trips() {
        let server = CloudServer::new(CameraProfile::smartphone());
        let bytes = save_snapshot(&server).unwrap();
        let restored = load_snapshot(bytes, CameraProfile::smartphone()).unwrap();
        assert_eq!(restored.stats().segments, 0);
    }

    #[test]
    fn restored_server_accepts_new_ingest() {
        let server = populated_server(50);
        let restored =
            load_snapshot(save_snapshot(&server).unwrap(), CameraProfile::smartphone()).unwrap();
        restored.ingest_one(
            RepFov::new(999.0, 1000.0, Fov::new(center(), 0.0)),
            SegmentRef {
                provider_id: 42,
                video_id: 0,
                segment_idx: 0,
            },
        );
        assert_eq!(restored.stats().segments, 51);
        let q = Query::new(999.0, 1000.0, center(), 10.0);
        let hits = restored.query(
            &q,
            &QueryOptions {
                direction_filter: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].source.provider_id, 42);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            load_snapshot(&b"xx"[..], CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::Truncated
        );
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdeadbeef);
        buf.put_u8(1);
        buf.put_u32_le(0);
        assert!(matches!(
            load_snapshot(buf.freeze(), CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::BadMagic(0xdeadbeef)
        ));
    }

    #[test]
    fn rejects_truncated_body() {
        let server = populated_server(3);
        let bytes = save_snapshot(&server).unwrap();
        let cut = bytes.slice(0..bytes.len() - 5);
        assert_eq!(
            load_snapshot(cut, CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let server = populated_server(1);
        let bytes = save_snapshot(&server).unwrap();
        let mut raw = bytes.to_vec();
        raw[4] = 99; // version byte
        assert_eq!(
            load_snapshot(&raw[..], CameraProfile::smartphone()).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }
}
