//! Time-sharded FoV indexing with retention.
//!
//! A city-scale deployment ingests forever, but queries target recent
//! windows and storage is finite. Sharding the index by time buckets
//! keeps every R-tree small (bounded rebuild and memory cost) and makes
//! retention trivial: expiring old footage drops whole shards instead of
//! deleting records one by one.
//!
//! A segment whose interval spans several buckets is registered in each;
//! queries deduplicate. Expiry is shard-granular: a segment survives
//! until *every* bucket it touches has expired, so retention is
//! conservative (never drops data younger than the horizon).
//!
//! Shards sit behind `Arc`s so cloning the whole index — which the
//! snapshot-publishing server does on every epoch — costs one pointer
//! bump per shard, and publish-time [`ShardedFovIndex::bulk_insert`]
//! rebuilds only the shards the new batch touches (STR re-pack of old +
//! new), sharing every untouched shard with the previous snapshot.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;

use swag_core::RepFov;
use swag_exec::Executor;
use swag_obs::{FlightRecorder, Histogram, Registry};
use swag_rtree::{Aabb, SearchStats};

use crate::index::{fov_box, query_boxes, FovIndex, IndexKind, QueryBoxes};
use crate::query::Query;
use crate::store::SegmentId;

thread_local! {
    /// Reusable accumulator for cross-shard dedup: multi-shard probes
    /// collect per-shard matches here, sort + dedup in place, then copy
    /// an exact-sized result out. Clearing keeps the capacity, so steady-
    /// state queries allocate only their (returned) result vector.
    static DEDUP_SCRATCH: RefCell<Vec<SegmentId>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with the thread's cleared dedup scratch. `f` must not call
/// back into the executor (a helping wait could re-enter this scratch);
/// both probe paths finish all pool work before borrowing it.
fn with_scratch<R>(f: impl FnOnce(&mut Vec<SegmentId>) -> R) -> R {
    DEDUP_SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        scratch.clear();
        f(&mut scratch)
    })
}

/// Sorts + dedups the accumulated candidates and copies them into an
/// exact-sized result vector (the scratch keeps its capacity).
fn sorted_dedup(scratch: &mut Vec<SegmentId>) -> Vec<SegmentId> {
    scratch.sort_unstable();
    scratch.dedup();
    scratch.as_slice().to_vec()
}

/// Per-query fan-out metrics for a sharded index.
#[derive(Debug, Clone)]
struct ShardObs {
    /// Shards actually probed per query (buckets with a live shard).
    fanout: Arc<Histogram>,
    /// Deduplicated candidates returned per query.
    candidates: Arc<Histogram>,
}

/// What a `[t0, t1]` probe is estimated to cost, before running it
/// (the input to the engine's adaptive fan-out cost model).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProbeEstimate {
    /// Live shards the window touches.
    pub shards: usize,
    /// Indexed items across those shards.
    pub items: usize,
    /// Selectivity-weighted items: each shard's count scaled by the
    /// fraction of its time bucket the window overlaps. Assumes items
    /// spread roughly uniformly over a bucket — good enough to separate
    /// "a sliver of two shards" from "all of nine shards".
    pub work: f64,
}

/// What one [`ShardedFovIndex::expire_before`] call removed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExpireReport {
    /// Whole shards dropped.
    pub shards_dropped: usize,
    /// Bucket ids of the dropped shards, ascending — the write path
    /// bumps these buckets' cache versions so cached results that probed
    /// them are invalidated.
    pub buckets_dropped: Vec<i64>,
    /// Segments no longer present in *any* shard — every bucket they
    /// touched expired. The caller retires these in its segment store.
    pub segments_dropped: Vec<SegmentId>,
}

/// A time-sharded spatio-temporal index.
#[derive(Debug, Clone)]
pub struct ShardedFovIndex {
    shard_width_s: f64,
    kind: IndexKind,
    shards: BTreeMap<i64, Arc<FovIndex>>,
    /// Number of distinct indexed segments. Each id must be indexed at
    /// most once; the span a segment occupies is recomputed from its
    /// interval (insert, remove) or its stored box (expiry), so no
    /// per-segment map has to be deep-copied when the index is cloned
    /// for a new snapshot.
    segments: usize,
    obs: Option<ShardObs>,
    /// Flight recorder for per-probe/per-rebuild spans. The spans it
    /// opens inherit the ambient [`swag_obs::TraceCtx`], which the
    /// executor carries into stolen jobs — so a parallel fan-out yields
    /// the same span tree as the serial loop.
    recorder: Option<Arc<FlightRecorder>>,
}

impl ShardedFovIndex {
    /// Creates a sharded index with the given bucket width (seconds).
    ///
    /// # Panics
    /// Panics if `shard_width_s` is not positive and finite.
    pub fn new(shard_width_s: f64, kind: IndexKind) -> Self {
        assert!(
            shard_width_s.is_finite() && shard_width_s > 0.0,
            "shard width must be positive, got {shard_width_s}"
        );
        ShardedFovIndex {
            shard_width_s,
            kind,
            shards: BTreeMap::new(),
            segments: 0,
            obs: None,
            recorder: None,
        }
    }

    /// Wires per-query fan-out metrics (`swag_shard_*`) to `registry`.
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(ShardObs {
            fanout: registry.histogram("swag_shard_fanout"),
            candidates: registry.histogram("swag_shard_candidates"),
        });
    }

    /// Wires `shard_probe`/`shard_rebuild` spans to `recorder`. Until the
    /// recorder is enabled, each probe costs one relaxed load.
    pub fn set_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// An empty index with the same width, backend, and metric wiring
    /// (used when the server compacts its store and rebuilds from scratch).
    pub fn fresh_like(&self) -> Self {
        ShardedFovIndex {
            shard_width_s: self.shard_width_s,
            kind: self.kind,
            shards: BTreeMap::new(),
            segments: 0,
            obs: self.obs.clone(),
            recorder: self.recorder.clone(),
        }
    }

    /// The configured bucket width in seconds.
    pub fn shard_width_s(&self) -> f64 {
        self.shard_width_s
    }

    /// The index backend used for each shard.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    fn bucket_of(&self, t: f64) -> i64 {
        (t / self.shard_width_s).floor() as i64
    }

    /// Buckets a time interval touches (inclusive).
    fn buckets(&self, t0: f64, t1: f64) -> std::ops::RangeInclusive<i64> {
        self.bucket_of(t0)..=self.bucket_of(t1)
    }

    /// Number of indexed segments (each counted once, surviving expiry
    /// accounting included).
    pub fn len(&self) -> usize {
        self.segments
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.segments == 0
    }

    /// Number of live shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The live shards a `[t0, t1]` window would probe, as
    /// `(bucket, indexed items)` pairs in bucket order (used by plan
    /// explain renderings).
    pub fn probe_shards(&self, t0: f64, t1: f64) -> Vec<(i64, usize)> {
        self.shards
            .range(self.buckets(t0, t1))
            .map(|(bucket, shard)| (*bucket, shard.len()))
            .collect()
    }

    /// How many live shards a `[t0, t1]` window would probe, without
    /// materialising them (per-query fan-out accounting).
    pub fn probe_shard_count(&self, t0: f64, t1: f64) -> usize {
        self.shards.range(self.buckets(t0, t1)).count()
    }

    /// Estimates what probing `[t0, t1]` costs without running it: live
    /// shards, their item counts, and the selectivity-weighted work (the
    /// engine's fan-out cost model prices plans with this).
    pub fn estimate_probe(&self, t0: f64, t1: f64) -> ProbeEstimate {
        let w = self.shard_width_s;
        let mut est = ProbeEstimate::default();
        for (bucket, shard) in self.shards.range(self.buckets(t0, t1)) {
            let bucket_start = *bucket as f64 * w;
            let overlap = (t1.min(bucket_start + w) - t0.max(bucket_start)).clamp(0.0, w);
            est.shards += 1;
            est.items += shard.len();
            est.work += shard.len() as f64 * (overlap / w);
        }
        est
    }

    /// Every live shard as `(bucket, indexed items)` pairs in bucket
    /// order (per-shard gauge export).
    pub fn shard_sizes(&self) -> Vec<(i64, usize)> {
        self.shards
            .iter()
            .map(|(bucket, shard)| (*bucket, shard.len()))
            .collect()
    }

    /// Indexes a representative FoV into every bucket its interval spans.
    pub fn insert(&mut self, rep: &RepFov, id: SegmentId) {
        self.segments += 1;
        for bucket in self.buckets(rep.t_start, rep.t_end) {
            Arc::make_mut(
                self.shards
                    .entry(bucket)
                    .or_insert_with(|| Arc::new(FovIndex::new(self.kind))),
            )
            .insert(rep, id);
        }
    }

    /// Removes one indexed segment from every bucket it spans. Returns
    /// `false` if the id was not indexed (already removed or expired).
    pub fn remove(&mut self, rep: &RepFov, id: SegmentId) -> bool {
        let mut removed = false;
        for bucket in self.buckets(rep.t_start, rep.t_end) {
            let Some(shard) = self.shards.get_mut(&bucket) else {
                continue; // bucket already expired
            };
            removed |= Arc::make_mut(shard).remove(rep, id);
            if shard.is_empty() {
                self.shards.remove(&bucket);
            }
        }
        if removed {
            self.segments -= 1;
        }
        removed
    }

    /// Bulk-inserts a batch, rebuilding each touched shard once via an STR
    /// re-pack of its old items plus the new ones (publish path: untouched
    /// shards keep sharing memory with previous snapshots).
    pub fn bulk_insert(&mut self, items: &[(RepFov, SegmentId)]) {
        self.bulk_insert_exec(&Executor::serial(), items);
    }

    /// [`Self::bulk_insert`] with the touched shards' STR re-packs fanned
    /// out on `exec` (each rebuild also tiles its own leaves in parallel
    /// when large enough). The resulting index is identical to the serial
    /// build — workers merely claim different shards.
    pub fn bulk_insert_exec(&mut self, exec: &Executor, items: &[(RepFov, SegmentId)]) {
        self.segments += items.len();
        let mut per_bucket: BTreeMap<i64, Vec<(Aabb<3>, SegmentId)>> = BTreeMap::new();
        for (rep, id) in items {
            let b = fov_box(rep);
            for bucket in self.buckets(rep.t_start, rep.t_end) {
                per_bucket.entry(bucket).or_default().push((b, *id));
            }
        }
        let touched: Vec<(i64, Vec<(Aabb<3>, SegmentId)>)> = per_bucket.into_iter().collect();
        let shards = &self.shards;
        let kind = self.kind;
        let recorder = &self.recorder;
        let rebuilt = exec.par_map_owned(touched, |(bucket, new_items)| {
            let mut span = recorder.as_ref().map(|r| r.span("shard_rebuild"));
            if let Some(span) = &mut span {
                span.set_detail(new_items.len() as u64);
            }
            let tree = match shards.get(&bucket) {
                Some(old) => old.bulk_extend_par(exec, new_items),
                None => FovIndex::bulk_from_boxes_par(exec, kind, new_items),
            };
            (bucket, tree)
        });
        for (bucket, tree) in rebuilt {
            self.shards.insert(bucket, Arc::new(tree));
        }
    }

    /// All segment ids intersecting the query, deduplicated across shards.
    /// Only live shards inside the window are visited (a wide-open time
    /// range costs the number of shards, not the number of buckets).
    pub fn candidates(&self, q: &Query) -> Vec<SegmentId> {
        self.candidates_exec(&Executor::serial(), q)
    }

    /// [`Self::candidates`] with the per-shard probes fanned out on
    /// `exec`.
    ///
    /// Byte-identical to the serial probe: a multi-shard result is the
    /// ascending sort + dedup of the union of per-shard matches — the
    /// same vector no matter which worker scanned which shard — and a
    /// single-shard probe keeps the unsorted pass-through fast path in
    /// both modes.
    pub fn candidates_exec(&self, exec: &Executor, q: &Query) -> Vec<SegmentId> {
        self.candidates_in_exec(exec, &query_boxes(q), q.t_start, q.t_end)
    }

    /// [`Self::candidates_exec`] against an already-built query box set
    /// and time window (the plan-driven query path builds boxes once per
    /// plan instead of once per probe).
    pub fn candidates_in_exec(
        &self,
        exec: &Executor,
        boxes: &QueryBoxes,
        t0: f64,
        t1: f64,
    ) -> Vec<SegmentId> {
        let shards: Vec<&Arc<FovIndex>> = self
            .shards
            .range(self.buckets(t0, t1))
            .map(|(_, shard)| shard)
            .collect();
        let probed = shards.len() as u64;
        let recorder = &self.recorder;
        let out = match shards.as_slice() {
            [] => Vec::new(),
            // A segment appears at most once per shard, so a single-shard
            // probe (the common case for windows under the shard width)
            // needs no dedup pass.
            [only] => {
                let _probe = recorder.as_ref().map(|r| r.span("shard_probe"));
                only.candidates_in(boxes)
            }
            many if exec.is_serial() => with_scratch(|scratch| {
                for shard in many {
                    let _probe = recorder.as_ref().map(|r| r.span("shard_probe"));
                    shard.candidates_into(boxes, scratch);
                }
                sorted_dedup(scratch)
            }),
            many => {
                let per_shard = exec.par_map(many, |shard| {
                    let _probe = recorder.as_ref().map(|r| r.span("shard_probe"));
                    shard.candidates_in(boxes)
                });
                with_scratch(|scratch| {
                    for v in &per_shard {
                        scratch.extend_from_slice(v);
                    }
                    sorted_dedup(scratch)
                })
            }
        };
        if let Some(obs) = &self.obs {
            obs.fanout.record(probed);
            obs.candidates.record(out.len() as u64);
        }
        out
    }

    /// [`Self::candidates`] accumulating per-shard traversal counters into
    /// `stats` (used by the instrumented server query path).
    pub fn candidates_with_stats(&self, q: &Query, stats: &mut SearchStats) -> Vec<SegmentId> {
        self.candidates_with_stats_exec(&Executor::serial(), q, stats)
    }

    /// [`Self::candidates_exec`] accumulating per-shard traversal counters
    /// into `stats`. Parallel workers count into private stats that are
    /// summed afterwards, so totals match the serial scan exactly.
    pub fn candidates_with_stats_exec(
        &self,
        exec: &Executor,
        q: &Query,
        stats: &mut SearchStats,
    ) -> Vec<SegmentId> {
        self.candidates_with_stats_in_exec(exec, &query_boxes(q), q.t_start, q.t_end, stats)
    }

    /// [`Self::candidates_with_stats_exec`] against an already-built query
    /// box set and time window (the plan-driven query path builds boxes
    /// once per plan instead of once per probe).
    pub fn candidates_with_stats_in_exec(
        &self,
        exec: &Executor,
        boxes: &QueryBoxes,
        t0: f64,
        t1: f64,
        stats: &mut SearchStats,
    ) -> Vec<SegmentId> {
        let shards: Vec<&Arc<FovIndex>> = self
            .shards
            .range(self.buckets(t0, t1))
            .map(|(_, shard)| shard)
            .collect();
        let probed = shards.len() as u64;
        let recorder = &self.recorder;
        let out = match shards.as_slice() {
            [] => Vec::new(),
            [only] => {
                let _probe = recorder.as_ref().map(|r| r.span("shard_probe"));
                only.candidates_with_stats_in(boxes, stats)
            }
            many if exec.is_serial() => with_scratch(|scratch| {
                for shard in many {
                    let _probe = recorder.as_ref().map(|r| r.span("shard_probe"));
                    shard.candidates_with_stats_into(boxes, scratch, stats);
                }
                sorted_dedup(scratch)
            }),
            many => {
                let per_shard = exec.par_map(many, |shard| {
                    let _probe = recorder.as_ref().map(|r| r.span("shard_probe"));
                    let mut local = SearchStats::default();
                    let v = shard.candidates_with_stats_in(boxes, &mut local);
                    (v, local)
                });
                for (_, local) in &per_shard {
                    stats.merge(local);
                }
                with_scratch(|scratch| {
                    for (v, _) in &per_shard {
                        scratch.extend_from_slice(v);
                    }
                    sorted_dedup(scratch)
                })
            }
        };
        if let Some(obs) = &self.obs {
            obs.fanout.record(probed);
            obs.candidates.record(out.len() as u64);
        }
        out
    }

    /// Drops every shard that ends at or before `horizon_s`. Segments
    /// spanning the horizon survive in their later buckets (conservative
    /// retention); segments whose *every* bucket expired are reported in
    /// [`ExpireReport::segments_dropped`] so the caller can retire them
    /// from its store, and no longer count toward [`Self::len`].
    pub fn expire_before(&mut self, horizon_s: f64) -> ExpireReport {
        let cutoff = self.bucket_of(horizon_s);
        let keep = self.shards.split_off(&cutoff);
        let shards_dropped = self.shards.len();
        let dropped_shards = std::mem::replace(&mut self.shards, keep);
        // A segment died with the dropped shards iff its last bucket —
        // read straight off its stored box — is itself below the cutoff.
        // Segments straddling the cutoff keep living in later buckets.
        let mut segments_dropped = Vec::new();
        for shard in dropped_shards.values() {
            shard.for_each_item(|b, id| {
                if self.bucket_of(b.max[2]) < cutoff {
                    segments_dropped.push(id);
                }
            });
        }
        segments_dropped.sort_unstable();
        segments_dropped.dedup();
        self.segments -= segments_dropped.len();
        ExpireReport {
            shards_dropped,
            buckets_dropped: dropped_shards.keys().copied().collect(),
            segments_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn rep(t0: f64, t1: f64, north_m: f64) -> RepFov {
        RepFov::new(t0, t1, Fov::new(center().offset(0.0, north_m), 0.0))
    }

    fn q(t0: f64, t1: f64) -> Query {
        Query::new(t0, t1, center(), 500.0)
    }

    #[test]
    fn matches_flat_index_on_random_workload() {
        let mut sharded = ShardedFovIndex::new(600.0, IndexKind::RTree);
        let mut flat = FovIndex::new(IndexKind::RTree);
        for i in 0..500u32 {
            let t0 = f64::from(i) * 17.3 % 7200.0;
            let r = rep(t0, t0 + f64::from(i % 40), f64::from(i % 23) * 20.0);
            sharded.insert(&r, SegmentId(i));
            flat.insert(&r, SegmentId(i));
        }
        assert_eq!(sharded.len(), 500);
        for (t0, t1) in [
            (0.0, 7200.0),
            (100.0, 700.0),
            (3000.0, 3001.0),
            (6500.0, 7300.0),
        ] {
            let mut a = sharded.candidates(&q(t0, t1));
            let mut b = flat.candidates(&q(t0, t1));
            a.sort();
            b.sort();
            assert_eq!(a, b, "window {t0}..{t1}");
        }
    }

    #[test]
    fn bulk_insert_matches_incremental() {
        let mut incremental = ShardedFovIndex::new(300.0, IndexKind::RTree);
        let mut bulk = ShardedFovIndex::new(300.0, IndexKind::RTree);
        let old: Vec<(RepFov, SegmentId)> = (0..150u32)
            .map(|i| {
                let t0 = f64::from(i) * 13.0;
                (
                    rep(t0, t0 + f64::from(i % 60), f64::from(i % 17) * 25.0),
                    SegmentId(i),
                )
            })
            .collect();
        let new: Vec<(RepFov, SegmentId)> = (150..260u32)
            .map(|i| {
                let t0 = f64::from(i) * 7.0;
                (
                    rep(t0, t0 + f64::from(i % 90), f64::from(i % 13) * 30.0),
                    SegmentId(i),
                )
            })
            .collect();
        for (r, id) in old.iter().chain(&new) {
            incremental.insert(r, *id);
        }
        bulk.bulk_insert(&old);
        let snapshot = bulk.clone();
        bulk.bulk_insert(&new);
        assert_eq!(bulk.len(), 260);
        // The pre-extend clone is unaffected by the second bulk insert.
        assert_eq!(snapshot.len(), 150);
        for (t0, t1) in [(0.0, 3000.0), (500.0, 700.0), (1800.0, 1900.0)] {
            let mut a = bulk.candidates(&q(t0, t1));
            let mut b = incremental.candidates(&q(t0, t1));
            a.sort();
            b.sort();
            assert_eq!(a, b, "window {t0}..{t1}");
        }
    }

    #[test]
    fn spanning_segments_are_deduplicated() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        // Spans three buckets.
        idx.insert(&rep(50.0, 250.0, 10.0), SegmentId(1));
        assert_eq!(idx.shard_count(), 3);
        assert_eq!(idx.len(), 1);
        let hits = idx.candidates(&q(0.0, 300.0));
        assert_eq!(hits, vec![SegmentId(1)]);
    }

    #[test]
    fn expiry_drops_old_keeps_recent() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.insert(&rep(10.0, 20.0, 0.0), SegmentId(0)); // bucket 0
        idx.insert(&rep(150.0, 160.0, 0.0), SegmentId(1)); // bucket 1
        idx.insert(&rep(950.0, 960.0, 0.0), SegmentId(2)); // bucket 9
        assert_eq!(idx.shard_count(), 3);

        let report = idx.expire_before(500.0);
        assert_eq!(report.shards_dropped, 2);
        assert_eq!(report.segments_dropped, vec![SegmentId(0), SegmentId(1)]);
        assert_eq!(idx.shard_count(), 1);
        assert_eq!(idx.len(), 1, "len reflects survivors");
        assert!(idx.candidates(&q(0.0, 500.0)).is_empty());
        assert_eq!(idx.candidates(&q(900.0, 1000.0)), vec![SegmentId(2)]);
    }

    #[test]
    fn segment_spanning_horizon_survives() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.insert(&rep(90.0, 110.0, 0.0), SegmentId(7)); // buckets 0 and 1
        let report = idx.expire_before(100.0); // drops bucket 0
        assert_eq!(report.shards_dropped, 1);
        assert!(
            report.segments_dropped.is_empty(),
            "survivor must not be reported dropped"
        );
        assert_eq!(idx.len(), 1);
        // Still findable through its surviving bucket.
        assert_eq!(idx.candidates(&q(100.0, 120.0)), vec![SegmentId(7)]);
    }

    #[test]
    fn remove_unindexes_across_spanned_buckets() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        let spanning = rep(50.0, 250.0, 10.0);
        idx.insert(&spanning, SegmentId(1));
        idx.insert(&rep(10.0, 20.0, 0.0), SegmentId(2));
        assert!(idx.remove(&spanning, SegmentId(1)));
        assert!(!idx.remove(&spanning, SegmentId(1)), "double remove");
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates(&q(100.0, 300.0)).is_empty());
        assert_eq!(idx.candidates(&q(0.0, 300.0)), vec![SegmentId(2)]);
        // Emptied shards are dropped entirely.
        assert_eq!(idx.shard_count(), 1);
    }

    #[test]
    fn remove_after_partial_expiry_is_safe() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        let spanning = rep(90.0, 110.0, 0.0); // buckets 0 and 1
        idx.insert(&spanning, SegmentId(3));
        idx.expire_before(100.0); // bucket 0 gone
        assert!(idx.remove(&spanning, SegmentId(3)));
        assert!(idx.is_empty());
        assert!(idx.candidates(&q(100.0, 120.0)).is_empty());
    }

    #[test]
    fn negative_times_bucket_correctly() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.insert(&rep(0.0, 10.0, 0.0), SegmentId(0));
        // floor() keeps pre-epoch times in their own buckets; nothing
        // before t=0 exists here, but the query must not wrap.
        assert!(idx
            .candidates(&Query::new(-500.0, -1.0, center(), 500.0))
            .is_empty());
        assert_eq!(idx.candidates(&q(0.0, 10.0)), vec![SegmentId(0)]);
    }

    #[test]
    fn linear_shards_agree_with_rtree_shards() {
        let mut a = ShardedFovIndex::new(250.0, IndexKind::RTree);
        let mut b = ShardedFovIndex::new(250.0, IndexKind::Linear);
        for i in 0..200u32 {
            let r = rep(
                f64::from(i) * 9.0,
                f64::from(i) * 9.0 + 30.0,
                f64::from(i % 11) * 30.0,
            );
            a.insert(&r, SegmentId(i));
            b.insert(&r, SegmentId(i));
        }
        let mut ha = a.candidates(&q(300.0, 900.0));
        let mut hb = b.candidates(&q(300.0, 900.0));
        ha.sort();
        hb.sort();
        assert_eq!(ha, hb);
    }

    #[test]
    #[should_panic(expected = "shard width")]
    fn zero_width_rejected() {
        ShardedFovIndex::new(0.0, IndexKind::RTree);
    }

    #[test]
    fn fanout_metrics_count_probed_shards() {
        let reg = Registry::new();
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.attach_observability(&reg);
        idx.insert(&rep(10.0, 20.0, 0.0), SegmentId(0)); // bucket 0
        idx.insert(&rep(150.0, 160.0, 0.0), SegmentId(1)); // bucket 1
        idx.insert(&rep(950.0, 960.0, 0.0), SegmentId(2)); // bucket 9

        // Window spans buckets 0..=9, but only 3 shards exist.
        assert_eq!(idx.candidates(&q(0.0, 999.0)).len(), 3);
        // Window spans buckets 0..=1: both shards probed, 2 hits.
        assert_eq!(idx.candidates(&q(0.0, 199.0)).len(), 2);

        let fanout = reg.histogram("swag_shard_fanout").snapshot();
        assert_eq!(fanout.count, 2);
        assert_eq!(fanout.sum, 3 + 2);
        let cands = reg.histogram("swag_shard_candidates").snapshot();
        assert_eq!(cands.sum, 3 + 2);
    }
}
