//! Time-sharded FoV indexing with retention.
//!
//! A city-scale deployment ingests forever, but queries target recent
//! windows and storage is finite. Sharding the index by time buckets
//! keeps every R-tree small (bounded rebuild and memory cost) and makes
//! retention trivial: expiring old footage drops whole shards instead of
//! deleting records one by one.
//!
//! A segment whose interval spans several buckets is registered in each;
//! queries deduplicate. Expiry is shard-granular: a segment survives
//! until *every* bucket it touches has expired, so retention is
//! conservative (never drops data younger than the horizon).

use std::collections::BTreeMap;
use std::sync::Arc;

use swag_core::RepFov;
use swag_obs::{Histogram, Registry};

use crate::index::{FovIndex, IndexKind};
use crate::query::Query;
use crate::store::SegmentId;

/// Per-query fan-out metrics for a sharded index.
#[derive(Debug)]
struct ShardObs {
    /// Shards actually probed per query (buckets with a live shard).
    fanout: Arc<Histogram>,
    /// Deduplicated candidates returned per query.
    candidates: Arc<Histogram>,
}

/// A time-sharded spatio-temporal index.
#[derive(Debug)]
pub struct ShardedFovIndex {
    shard_width_s: f64,
    kind: IndexKind,
    shards: BTreeMap<i64, FovIndex>,
    len: usize,
    obs: Option<ShardObs>,
}

impl ShardedFovIndex {
    /// Creates a sharded index with the given bucket width (seconds).
    ///
    /// # Panics
    /// Panics if `shard_width_s` is not positive and finite.
    pub fn new(shard_width_s: f64, kind: IndexKind) -> Self {
        assert!(
            shard_width_s.is_finite() && shard_width_s > 0.0,
            "shard width must be positive, got {shard_width_s}"
        );
        ShardedFovIndex {
            shard_width_s,
            kind,
            shards: BTreeMap::new(),
            len: 0,
            obs: None,
        }
    }

    /// Wires per-query fan-out metrics (`swag_shard_*`) to `registry`.
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(ShardObs {
            fanout: registry.histogram("swag_shard_fanout"),
            candidates: registry.histogram("swag_shard_candidates"),
        });
    }

    fn bucket_of(&self, t: f64) -> i64 {
        (t / self.shard_width_s).floor() as i64
    }

    /// Buckets a time interval touches (inclusive).
    fn buckets(&self, t0: f64, t1: f64) -> std::ops::RangeInclusive<i64> {
        self.bucket_of(t0)..=self.bucket_of(t1)
    }

    /// Number of indexed segments (each counted once).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Indexes a representative FoV into every bucket its interval spans.
    pub fn insert(&mut self, rep: &RepFov, id: SegmentId) {
        for bucket in self.buckets(rep.t_start, rep.t_end) {
            self.shards
                .entry(bucket)
                .or_insert_with(|| FovIndex::new(self.kind))
                .insert(rep, id);
        }
        self.len += 1;
    }

    /// All segment ids intersecting the query, deduplicated across shards.
    pub fn candidates(&self, q: &Query) -> Vec<SegmentId> {
        let mut out: Vec<SegmentId> = Vec::new();
        let mut probed = 0u64;
        for bucket in self.buckets(q.t_start, q.t_end) {
            if let Some(shard) = self.shards.get(&bucket) {
                probed += 1;
                out.extend(shard.candidates(q));
            }
        }
        out.sort_unstable();
        out.dedup();
        if let Some(obs) = &self.obs {
            obs.fanout.record(probed);
            obs.candidates.record(out.len() as u64);
        }
        out
    }

    /// Drops every shard that ends at or before `horizon_s`. Returns the
    /// number of shards removed. Segments spanning the horizon survive in
    /// their later buckets (conservative retention).
    pub fn expire_before(&mut self, horizon_s: f64) -> usize {
        let cutoff = self.bucket_of(horizon_s);
        let keep = self.shards.split_off(&cutoff);
        let dropped = self.shards.len();
        self.shards = keep;
        // `len` intentionally tracks *inserted* segments, not survivors:
        // per-segment survivor counting would need a reverse map, and the
        // metric deployments care about is shard count / memory, which
        // `shard_count` provides. Document the semantics instead of lying.
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn rep(t0: f64, t1: f64, north_m: f64) -> RepFov {
        RepFov::new(t0, t1, Fov::new(center().offset(0.0, north_m), 0.0))
    }

    fn q(t0: f64, t1: f64) -> Query {
        Query::new(t0, t1, center(), 500.0)
    }

    #[test]
    fn matches_flat_index_on_random_workload() {
        let mut sharded = ShardedFovIndex::new(600.0, IndexKind::RTree);
        let mut flat = FovIndex::new(IndexKind::RTree);
        for i in 0..500u32 {
            let t0 = f64::from(i) * 17.3 % 7200.0;
            let r = rep(t0, t0 + f64::from(i % 40), f64::from(i % 23) * 20.0);
            sharded.insert(&r, SegmentId(i));
            flat.insert(&r, SegmentId(i));
        }
        assert_eq!(sharded.len(), 500);
        for (t0, t1) in [
            (0.0, 7200.0),
            (100.0, 700.0),
            (3000.0, 3001.0),
            (6500.0, 7300.0),
        ] {
            let mut a = sharded.candidates(&q(t0, t1));
            let mut b = flat.candidates(&q(t0, t1));
            a.sort();
            b.sort();
            assert_eq!(a, b, "window {t0}..{t1}");
        }
    }

    #[test]
    fn spanning_segments_are_deduplicated() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        // Spans three buckets.
        idx.insert(&rep(50.0, 250.0, 10.0), SegmentId(1));
        assert_eq!(idx.shard_count(), 3);
        let hits = idx.candidates(&q(0.0, 300.0));
        assert_eq!(hits, vec![SegmentId(1)]);
    }

    #[test]
    fn expiry_drops_old_keeps_recent() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.insert(&rep(10.0, 20.0, 0.0), SegmentId(0)); // bucket 0
        idx.insert(&rep(150.0, 160.0, 0.0), SegmentId(1)); // bucket 1
        idx.insert(&rep(950.0, 960.0, 0.0), SegmentId(2)); // bucket 9
        assert_eq!(idx.shard_count(), 3);

        let dropped = idx.expire_before(500.0);
        assert_eq!(dropped, 2);
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.candidates(&q(0.0, 500.0)).is_empty());
        assert_eq!(idx.candidates(&q(900.0, 1000.0)), vec![SegmentId(2)]);
    }

    #[test]
    fn segment_spanning_horizon_survives() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.insert(&rep(90.0, 110.0, 0.0), SegmentId(7)); // buckets 0 and 1
        idx.expire_before(100.0); // drops bucket 0
                                  // Still findable through its surviving bucket.
        assert_eq!(idx.candidates(&q(100.0, 120.0)), vec![SegmentId(7)]);
    }

    #[test]
    fn negative_times_bucket_correctly() {
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.insert(&rep(0.0, 10.0, 0.0), SegmentId(0));
        // floor() keeps pre-epoch times in their own buckets; nothing
        // before t=0 exists here, but the query must not wrap.
        assert!(idx
            .candidates(&Query::new(-500.0, -1.0, center(), 500.0))
            .is_empty());
        assert_eq!(idx.candidates(&q(0.0, 10.0)), vec![SegmentId(0)]);
    }

    #[test]
    fn linear_shards_agree_with_rtree_shards() {
        let mut a = ShardedFovIndex::new(250.0, IndexKind::RTree);
        let mut b = ShardedFovIndex::new(250.0, IndexKind::Linear);
        for i in 0..200u32 {
            let r = rep(
                f64::from(i) * 9.0,
                f64::from(i) * 9.0 + 30.0,
                f64::from(i % 11) * 30.0,
            );
            a.insert(&r, SegmentId(i));
            b.insert(&r, SegmentId(i));
        }
        let mut ha = a.candidates(&q(300.0, 900.0));
        let mut hb = b.candidates(&q(300.0, 900.0));
        ha.sort();
        hb.sort();
        assert_eq!(ha, hb);
    }

    #[test]
    #[should_panic(expected = "shard width")]
    fn zero_width_rejected() {
        ShardedFovIndex::new(0.0, IndexKind::RTree);
    }

    #[test]
    fn fanout_metrics_count_probed_shards() {
        let reg = Registry::new();
        let mut idx = ShardedFovIndex::new(100.0, IndexKind::RTree);
        idx.attach_observability(&reg);
        idx.insert(&rep(10.0, 20.0, 0.0), SegmentId(0)); // bucket 0
        idx.insert(&rep(150.0, 160.0, 0.0), SegmentId(1)); // bucket 1
        idx.insert(&rep(950.0, 960.0, 0.0), SegmentId(2)); // bucket 9

        // Window spans buckets 0..=9, but only 3 shards exist.
        assert_eq!(idx.candidates(&q(0.0, 999.0)).len(), 3);
        // Window spans buckets 0..=1: both shards probed, 2 hits.
        assert_eq!(idx.candidates(&q(0.0, 199.0)).len(), 2);

        let fanout = reg.histogram("swag_shard_fanout").snapshot();
        assert_eq!(fanout.count, 2);
        assert_eq!(fanout.sum, 3 + 2);
        let cands = reg.histogram("swag_shard_candidates").snapshot();
        assert_eq!(cands.sum, 3 + 2);
    }
}
