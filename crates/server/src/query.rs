//! Query types (paper §II-C, §V-B).

use serde::{Deserialize, Serialize};
use swag_geo::LatLon;

/// A querier's request `Q = (t_s, t_e, p̂, r̂)`: all video segments that can
/// cover the disc of radius `r̂` around `p̂` between `t_s` and `t_e`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Interval start, seconds.
    pub t_start: f64,
    /// Interval end, seconds.
    pub t_end: f64,
    /// Query area centre `p̂`.
    pub center: LatLon,
    /// Query area radius `r̂`, metres — the "empirical radius of view"
    /// (e.g. 20 m residential, 100 m highway; §V-B step 1).
    pub radius_m: f64,
}

impl Query {
    /// Creates a query.
    ///
    /// # Panics
    /// Panics if `t_end < t_start` or `radius_m <= 0`.
    pub fn new(t_start: f64, t_end: f64, center: LatLon, radius_m: f64) -> Self {
        assert!(t_end >= t_start, "query interval end precedes start");
        assert!(radius_m > 0.0, "query radius must be positive");
        Query {
            t_start,
            t_end,
            center,
            radius_m,
        }
    }
}

/// How retrieved candidates are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RankMode {
    /// By distance to the query centre, nearest first — the paper's §V-B
    /// rule.
    #[default]
    Distance,
    /// By composite quality (proximity × alignment × temporal coverage),
    /// best first — the "quality of each mobile video segment" ranking
    /// the paper's conclusion describes.
    Quality,
}

/// Retrieval knobs for the paper's filtering mechanism (§V-B steps 2-4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Return at most this many hits (step 4).
    pub top_n: usize,
    /// Drop FoVs whose orientation points away from the query centre
    /// (step 3).
    pub direction_filter: bool,
    /// Extra tolerance added to the camera half-angle in the direction
    /// filter, degrees (absorbs compass noise).
    pub direction_tolerance_deg: f64,
    /// Additionally require the FoV's view sector to geometrically
    /// intersect the query disc (a stricter *covering* test than the
    /// paper's distance sort; off by default for paper fidelity).
    pub require_coverage: bool,
    /// Result ordering.
    pub rank: RankMode,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            top_n: 10,
            direction_filter: true,
            direction_tolerance_deg: 10.0,
            require_coverage: false,
            rank: RankMode::Distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_query_constructs() {
        let q = Query::new(0.0, 10.0, LatLon::new(40.0, 116.0), 50.0);
        assert_eq!(q.radius_m, 50.0);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn inverted_interval_rejected() {
        Query::new(10.0, 0.0, LatLon::new(40.0, 116.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        Query::new(0.0, 1.0, LatLon::new(40.0, 116.0), 0.0);
    }

    #[test]
    fn default_options_match_paper() {
        let o = QueryOptions::default();
        assert!(o.direction_filter);
        assert!(!o.require_coverage);
        assert_eq!(o.top_n, 10);
    }
}
