//! Query types (paper §II-C, §V-B).

use serde::{Deserialize, Serialize};
use swag_geo::LatLon;

/// A querier's request `Q = (t_s, t_e, p̂, r̂)`: all video segments that can
/// cover the disc of radius `r̂` around `p̂` between `t_s` and `t_e`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Interval start, seconds.
    pub t_start: f64,
    /// Interval end, seconds.
    pub t_end: f64,
    /// Query area centre `p̂`.
    pub center: LatLon,
    /// Query area radius `r̂`, metres — the "empirical radius of view"
    /// (e.g. 20 m residential, 100 m highway; §V-B step 1).
    pub radius_m: f64,
}

/// Why a query (or its options) was rejected at validation time.
///
/// Ingress paths — the CLI, snapshot loaders, anything fed from a wire —
/// go through [`Query::try_new`] / [`QueryOptions::validate`] so hostile
/// input (inverted interval, NaN radius) surfaces as an error instead of
/// panicking the server. Internal callers that construct queries from
/// already-validated values keep using the panicking [`Query::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryError {
    /// `t_end < t_start`.
    InvertedInterval { t_start: f64, t_end: f64 },
    /// A NaN or infinite interval bound.
    NonFiniteInterval { t_start: f64, t_end: f64 },
    /// `radius_m` is NaN, infinite, zero, or negative.
    InvalidRadius { radius_m: f64 },
    /// A NaN or infinite centre coordinate. (Out-of-range finite
    /// coordinates cannot occur: [`LatLon::new`] clamps latitude and
    /// wraps longitude, but NaN survives both.)
    NonFiniteCenter { lat: f64, lng: f64 },
    /// The direction tolerance is NaN, infinite, or negative.
    InvalidTolerance { tolerance_deg: f64 },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            QueryError::InvertedInterval { t_start, t_end } => write!(
                f,
                "query interval end precedes start (t_start {t_start}, t_end {t_end})"
            ),
            QueryError::NonFiniteInterval { t_start, t_end } => write!(
                f,
                "query interval bounds must be finite (t_start {t_start}, t_end {t_end})"
            ),
            QueryError::InvalidRadius { radius_m } => {
                write!(
                    f,
                    "query radius must be positive and finite, got {radius_m}"
                )
            }
            QueryError::NonFiniteCenter { lat, lng } => {
                write!(f, "query center must be finite (lat {lat}, lng {lng})")
            }
            QueryError::InvalidTolerance { tolerance_deg } => write!(
                f,
                "direction tolerance must be finite and non-negative, got {tolerance_deg}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Folds `-0.0` onto `+0.0` so the two IEEE zero encodings — equal under
/// `==` and indistinguishable to every downstream computation — cannot
/// alias into distinct plan fingerprints (the result cache keys on the
/// canonical bit pattern of each field).
pub(crate) fn canon_zero(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

impl Query {
    /// Creates a query.
    ///
    /// # Panics
    /// Panics if `t_end < t_start` or `radius_m <= 0`.
    pub fn new(t_start: f64, t_end: f64, center: LatLon, radius_m: f64) -> Self {
        assert!(t_end >= t_start, "query interval end precedes start");
        assert!(radius_m > 0.0, "query radius must be positive");
        Query {
            t_start,
            t_end,
            center,
            radius_m,
        }
    }

    /// Fallible [`Self::new`] for untrusted input: rejects inverted or
    /// non-finite intervals, NaN/zero/negative radii, and non-finite or
    /// out-of-range centres instead of panicking.
    pub fn try_new(
        t_start: f64,
        t_end: f64,
        center: LatLon,
        radius_m: f64,
    ) -> Result<Self, QueryError> {
        if !t_start.is_finite() || !t_end.is_finite() {
            return Err(QueryError::NonFiniteInterval { t_start, t_end });
        }
        if t_end < t_start {
            return Err(QueryError::InvertedInterval { t_start, t_end });
        }
        if !radius_m.is_finite() || radius_m <= 0.0 {
            return Err(QueryError::InvalidRadius { radius_m });
        }
        if !center.lat.is_finite() || !center.lng.is_finite() {
            return Err(QueryError::NonFiniteCenter {
                lat: center.lat,
                lng: center.lng,
            });
        }
        // Canonicalize the two IEEE zeros: `-0.0` and `+0.0` compare
        // equal and retrieve identically, so they must also fingerprint
        // identically. (`radius_m == -0.0` was already rejected above.)
        Ok(Query {
            t_start: canon_zero(t_start),
            t_end: canon_zero(t_end),
            center: LatLon::new(canon_zero(center.lat), canon_zero(center.lng)),
            radius_m,
        })
    }
}

/// How retrieved candidates are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RankMode {
    /// By distance to the query centre, nearest first — the paper's §V-B
    /// rule.
    #[default]
    Distance,
    /// By composite quality (proximity × alignment × temporal coverage),
    /// best first — the "quality of each mobile video segment" ranking
    /// the paper's conclusion describes.
    Quality,
}

/// Retrieval knobs for the paper's filtering mechanism (§V-B steps 2-4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOptions {
    /// Return at most this many hits (step 4).
    pub top_n: usize,
    /// Drop FoVs whose orientation points away from the query centre
    /// (step 3).
    pub direction_filter: bool,
    /// Extra tolerance added to the camera half-angle in the direction
    /// filter, degrees (absorbs compass noise).
    pub direction_tolerance_deg: f64,
    /// Additionally require the FoV's view sector to geometrically
    /// intersect the query disc (a stricter *covering* test than the
    /// paper's distance sort; off by default for paper fidelity).
    pub require_coverage: bool,
    /// Result ordering.
    pub rank: RankMode,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            top_n: 10,
            direction_filter: true,
            direction_tolerance_deg: 10.0,
            require_coverage: false,
            rank: RankMode::Distance,
        }
    }
}

impl QueryOptions {
    /// Validates option values coming from untrusted input (a NaN or
    /// negative tolerance would silently disable the direction filter).
    /// `top_n == 0` is legal — it just returns no hits.
    pub fn validate(&self) -> Result<(), QueryError> {
        if !self.direction_tolerance_deg.is_finite() || self.direction_tolerance_deg < 0.0 {
            return Err(QueryError::InvalidTolerance {
                tolerance_deg: self.direction_tolerance_deg,
            });
        }
        Ok(())
    }

    /// [`Self::validate`] plus canonicalization for untrusted input:
    /// returns the options with `-0.0` tolerance folded onto `+0.0` so
    /// semantically equal option sets compile to plans with identical
    /// fingerprints.
    pub fn validated(self) -> Result<Self, QueryError> {
        self.validate()?;
        Ok(QueryOptions {
            direction_tolerance_deg: canon_zero(self.direction_tolerance_deg),
            ..self
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_query_constructs() {
        let q = Query::new(0.0, 10.0, LatLon::new(40.0, 116.0), 50.0);
        assert_eq!(q.radius_m, 50.0);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn inverted_interval_rejected() {
        Query::new(10.0, 0.0, LatLon::new(40.0, 116.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn zero_radius_rejected() {
        Query::new(0.0, 1.0, LatLon::new(40.0, 116.0), 0.0);
    }

    #[test]
    fn try_new_rejects_hostile_input() {
        let c = LatLon::new(40.0, 116.0);
        assert!(Query::try_new(0.0, 10.0, c, 50.0).is_ok());
        assert!(matches!(
            Query::try_new(10.0, 0.0, c, 50.0),
            Err(QueryError::InvertedInterval { .. })
        ));
        assert!(matches!(
            Query::try_new(f64::NAN, 10.0, c, 50.0),
            Err(QueryError::NonFiniteInterval { .. })
        ));
        for r in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Query::try_new(0.0, 10.0, c, r),
                Err(QueryError::InvalidRadius { .. })
            ));
        }
        assert!(matches!(
            Query::try_new(0.0, 10.0, LatLon::new(f64::NAN, 116.0), 50.0),
            Err(QueryError::NonFiniteCenter { .. })
        ));
        // Out-of-range finite coordinates are clamped by LatLon::new
        // before try_new ever sees them.
        assert!(Query::try_new(0.0, 10.0, LatLon::new(91.0, 116.0), 50.0).is_ok());
    }

    #[test]
    fn error_display_names_the_problem() {
        let e = Query::try_new(10.0, 0.0, LatLon::new(40.0, 116.0), 50.0).unwrap_err();
        assert!(e.to_string().contains("interval"));
        let e = Query::try_new(0.0, 10.0, LatLon::new(40.0, 116.0), -5.0).unwrap_err();
        assert!(e.to_string().contains("radius"));
    }

    #[test]
    fn options_validation_rejects_nan_tolerance() {
        assert!(QueryOptions::default().validate().is_ok());
        let bad = QueryOptions {
            direction_tolerance_deg: f64::NAN,
            ..QueryOptions::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(QueryError::InvalidTolerance { .. })
        ));
        let neg = QueryOptions {
            direction_tolerance_deg: -1.0,
            ..QueryOptions::default()
        };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn try_new_canonicalizes_negative_zero() {
        // -0.0 == +0.0, so both spellings must produce bit-identical
        // queries (and therefore identical plan fingerprints).
        let neg = Query::try_new(-0.0, -0.0, LatLon::new(-0.0, -0.0), 50.0).unwrap();
        let pos = Query::try_new(0.0, 0.0, LatLon::new(0.0, 0.0), 50.0).unwrap();
        assert_eq!(neg.t_start.to_bits(), pos.t_start.to_bits());
        assert_eq!(neg.t_end.to_bits(), pos.t_end.to_bits());
        assert_eq!(neg.center.lat.to_bits(), pos.center.lat.to_bits());
        assert_eq!(neg.center.lng.to_bits(), pos.center.lng.to_bits());
        // Non-zero values pass through untouched.
        let q = Query::try_new(-5.0, 10.0, LatLon::new(40.0, -116.0), 50.0).unwrap();
        assert_eq!(q.t_start, -5.0);
        assert_eq!(q.center.lng, -116.0);
    }

    #[test]
    fn validated_canonicalizes_tolerance_zero() {
        let neg = QueryOptions {
            direction_tolerance_deg: -0.0,
            ..QueryOptions::default()
        };
        let canon = neg.validated().unwrap();
        assert_eq!(canon.direction_tolerance_deg.to_bits(), 0.0f64.to_bits());
        assert!(QueryOptions {
            direction_tolerance_deg: f64::NAN,
            ..QueryOptions::default()
        }
        .validated()
        .is_err());
    }

    #[test]
    fn default_options_match_paper() {
        let o = QueryOptions::default();
        assert!(o.direction_filter);
        assert!(!o.require_coverage);
        assert_eq!(o.top_n, 10);
    }
}
