//! Rank-based retrieval: the paper's filtering mechanism (§V-B).
//!
//! Candidates retrieved from the index (step 2) are filtered by direction
//! (step 3: "exclude the FoVs that have the improper direction"), ranked by
//! distance to the query centre ("closer FoVs have a higher probability to
//! cover the query area"), and truncated to the top N (step 4).

use serde::{Deserialize, Serialize};
use swag_core::{CameraProfile, RepFov};
use swag_geo::angle_diff_deg;

use crate::engine::plan::QueryPlan;
use crate::query::{Query, QueryOptions, RankMode};
use crate::store::{SegmentId, SegmentRecord, SegmentRef, SegmentStore};

/// One ranked retrieval result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchHit {
    /// Server-side id of the segment.
    pub id: SegmentId,
    /// Which provider video segment to fetch.
    pub source: SegmentRef,
    /// The segment's representative FoV.
    pub rep: RepFov,
    /// Distance from the FoV position to the query centre, metres (the
    /// paper's ranking key).
    pub distance_m: f64,
    /// Quality score in `[0, 1]` (proximity × alignment × temporal
    /// overlap); the ranking key under [`RankMode::Quality`].
    pub quality: f64,
}

/// Quality of one segment for a query: the product of
///
/// * **proximity** — `1 − d/R` clamped to `[0, 1]` ("closer FoVs have a
///   higher probability to cover the query area", §V-B);
/// * **alignment** — how centrally the query centre sits in the covered
///   angle range (`1` on-axis, `0` at the sector edge);
/// * **temporal coverage** — the fraction of the query window the segment
///   spans (the `U_t` of §VII, normalised).
pub fn quality_score(rep: &RepFov, cam: &CameraProfile, query: &Query) -> f64 {
    quality_score_with_distance(rep, cam, query, rep.fov.p.distance_m(query.center))
}

/// [`quality_score`] with the FoV→centre distance already computed.
/// Every hit needs that distance anyway (it is the distance-rank key),
/// so the batch ranking path computes it once per candidate and feeds
/// it to both consumers; `d` must equal
/// `rep.fov.p.distance_m(query.center)` bit-for-bit.
fn quality_score_with_distance(rep: &RepFov, cam: &CameraProfile, query: &Query, d: f64) -> f64 {
    let proximity = (1.0 - d / cam.view_radius_m).clamp(0.0, 1.0);

    let disp = rep.fov.p.displacement_to(query.center);
    let alignment = if disp.norm() < 1e-9 {
        1.0
    } else {
        let off_axis = angle_diff_deg(disp.azimuth_deg(), rep.fov.theta);
        (1.0 - off_axis / cam.half_angle_deg).clamp(0.0, 1.0)
    };

    let window = (query.t_end - query.t_start).max(1e-9);
    let overlap = (rep.t_end.min(query.t_end) - rep.t_start.max(query.t_start)).max(0.0);
    let temporal = (overlap / window).clamp(0.0, 1.0);

    proximity * alignment * temporal
}

/// Applies steps 3-4 of the filtering mechanism to index candidates.
/// Convenience wrapper over the plan-driven pipeline for callers (bench
/// harnesses, external users) holding raw `(Query, QueryOptions)` pairs.
pub fn rank_candidates(
    candidates: &[SegmentId],
    store: &SegmentStore,
    cam: &CameraProfile,
    query: &Query,
    opts: &QueryOptions,
) -> Vec<SearchHit> {
    let plan = QueryPlan::compile(query, opts);
    let mut hits = collect_hits(candidates, store, cam, &plan);
    rank_hits(&mut hits, plan.rank, plan.k);
    hits
}

/// Resolves candidate ids against the store, applies the plan's filter
/// chain, and builds unranked hits. Retired (retracted) records are
/// dropped here as defense in depth: with sharded/snapshot indexes a
/// stale candidate id must never resurface a retracted segment.
///
/// Structured as struct-of-arrays phases over the surviving candidates:
/// the branchy resolve + filter pass first gathers the survivors, then
/// one dense loop computes every FoV→centre distance, then one loop
/// scores and materialises hits from the precomputed distances. Keeping
/// each phase a homogeneous loop over parallel arrays lets the compiler
/// vectorise the arithmetic (the same shape the [`swag_core::CamTrig`]
/// similarity fast path uses), and computes each distance once instead
/// of twice (rank key + quality proximity term).
pub(crate) fn collect_hits(
    candidates: &[SegmentId],
    store: &SegmentStore,
    cam: &CameraProfile,
    plan: &QueryPlan,
) -> Vec<SearchHit> {
    // Phase 1 — resolve + filter: the branchy pass, survivors only.
    let recs: Vec<&SegmentRecord> = candidates
        .iter()
        .filter(|&&id| !store.is_retired(id))
        .map(|&id| store.get(id))
        .filter(|rec| plan.filters.accepts(&rec.rep, cam, &plan.query))
        .collect();
    // Phase 2 — distances: one dense arithmetic loop over the survivors.
    let center = plan.query.center;
    let dists: Vec<f64> = recs
        .iter()
        .map(|rec| rec.rep.fov.p.distance_m(center))
        .collect();
    // Phase 3 — score + materialise from the precomputed distances.
    recs.iter()
        .zip(&dists)
        .map(|(rec, &d)| hit_with_distance(rec, cam, &plan.query, d))
        .collect()
}

/// Builds one hit from a record that already passed the filters.
pub(crate) fn hit_for(rec: &SegmentRecord, cam: &CameraProfile, query: &Query) -> SearchHit {
    hit_with_distance(rec, cam, query, rec.rep.fov.p.distance_m(query.center))
}

/// [`hit_for`] with the FoV→centre distance already computed.
fn hit_with_distance(rec: &SegmentRecord, cam: &CameraProfile, query: &Query, d: f64) -> SearchHit {
    SearchHit {
        id: rec.id,
        source: rec.source,
        rep: rec.rep,
        distance_m: d,
        quality: quality_score_with_distance(&rec.rep, cam, query, d),
    }
}

/// Step 4 — **the** ranking definition, consumed by every read entry
/// point: stable-sorts by the rank mode's key and truncates to `k`.
pub(crate) fn rank_hits(hits: &mut Vec<SearchHit>, rank: RankMode, k: usize) {
    match rank {
        RankMode::Distance => hits.sort_by(|a, b| a.distance_m.total_cmp(&b.distance_m)),
        RankMode::Quality => hits.sort_by(|a, b| b.quality.total_cmp(&a.quality)),
    }
    hits.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn center() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    /// A store with segments at increasing distances, all pointing at the
    /// centre, plus one pointing away.
    fn store() -> (SegmentStore, Vec<SegmentId>) {
        let mut s = SegmentStore::new();
        let mut ids = Vec::new();
        for (i, dist) in [30.0, 10.0, 50.0, 20.0].iter().enumerate() {
            // Place the camera `dist` metres south of the centre, looking
            // north (towards the centre).
            let p = center().offset(180.0, *dist);
            let rep = RepFov::new(0.0, 10.0, Fov::new(p, 0.0));
            ids.push(s.push(
                rep,
                SegmentRef {
                    provider_id: i as u64,
                    video_id: 0,
                    segment_idx: 0,
                },
            ));
        }
        // Looking away from the centre.
        let p = center().offset(180.0, 15.0);
        ids.push(s.push(
            RepFov::new(0.0, 10.0, Fov::new(p, 180.0)),
            SegmentRef {
                provider_id: 99,
                video_id: 0,
                segment_idx: 0,
            },
        ));
        (s, ids)
    }

    fn query() -> Query {
        Query::new(0.0, 10.0, center(), 100.0)
    }

    #[test]
    fn ranks_by_distance() {
        let (s, ids) = store();
        let cam = CameraProfile::smartphone();
        let opts = QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = rank_candidates(&ids, &s, &cam, &query(), &opts);
        assert_eq!(hits.len(), 5);
        let dists: Vec<f64> = hits.iter().map(|h| h.distance_m).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "{dists:?}");
        assert_eq!(hits[0].source.provider_id, 1); // the 10 m one
    }

    #[test]
    fn direction_filter_drops_backwards_camera() {
        let (s, ids) = store();
        let cam = CameraProfile::smartphone();
        let opts = QueryOptions {
            direction_filter: true,
            direction_tolerance_deg: 0.0,
            ..QueryOptions::default()
        };
        let hits = rank_candidates(&ids, &s, &cam, &query(), &opts);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|h| h.source.provider_id != 99));
    }

    #[test]
    fn top_n_truncates_after_ranking() {
        let (s, ids) = store();
        let cam = CameraProfile::smartphone();
        let opts = QueryOptions {
            top_n: 2,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = rank_candidates(&ids, &s, &cam, &query(), &opts);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].source.provider_id, 1);
        assert_eq!(hits[1].source.provider_id, 99); // 15 m, even if backwards
    }

    #[test]
    fn quality_score_components() {
        let cam = CameraProfile::smartphone();
        let q = query();
        // On-axis, close, full temporal overlap: near-perfect quality.
        let good = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 10.0), 0.0));
        let s_good = quality_score(&good, &cam, &q);
        assert!(s_good > 0.85, "{s_good}");
        // Far away: proximity term collapses.
        let far = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 99.0), 0.0));
        assert!(quality_score(&far, &cam, &q) < 0.05);
        // Off-axis by more than α: alignment term zero.
        let askew = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 10.0), 40.0));
        assert_eq!(quality_score(&askew, &cam, &q), 0.0);
        // Brief segment: temporal term shrinks proportionally.
        let brief = RepFov::new(0.0, 1.0, Fov::new(center().offset(180.0, 10.0), 0.0));
        let s_brief = quality_score(&brief, &cam, &q);
        assert!((s_brief - s_good * 0.1).abs() < 1e-9);
        // Standing on the query centre: alignment defined as perfect.
        let on_top = RepFov::new(0.0, 10.0, Fov::new(center(), 123.0));
        assert!(quality_score(&on_top, &cam, &q) > 0.99);
    }

    #[test]
    fn quality_rank_mode_orders_by_score() {
        let mut s = SegmentStore::new();
        // Nearest but pointing sideways (half-angle off) vs. slightly
        // farther but dead-on and longer.
        let askew = RepFov::new(0.0, 2.0, Fov::new(center().offset(180.0, 10.0), 20.0));
        let dead_on = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 30.0), 0.0));
        let ids = vec![
            s.push(
                askew,
                SegmentRef {
                    provider_id: 0,
                    video_id: 0,
                    segment_idx: 0,
                },
            ),
            s.push(
                dead_on,
                SegmentRef {
                    provider_id: 1,
                    video_id: 0,
                    segment_idx: 0,
                },
            ),
        ];
        let cam = CameraProfile::smartphone();
        let by_distance = rank_candidates(
            &ids,
            &s,
            &cam,
            &query(),
            &QueryOptions {
                direction_filter: false,
                ..QueryOptions::default()
            },
        );
        assert_eq!(by_distance[0].source.provider_id, 0);
        let by_quality = rank_candidates(
            &ids,
            &s,
            &cam,
            &query(),
            &QueryOptions {
                direction_filter: false,
                rank: RankMode::Quality,
                ..QueryOptions::default()
            },
        );
        assert_eq!(by_quality[0].source.provider_id, 1);
        assert!(by_quality[0].quality > by_quality[1].quality);
    }

    #[test]
    fn coverage_requirement_is_stricter() {
        let mut s = SegmentStore::new();
        // Camera 50 m south looking north with R = 100: covers the centre.
        let covering = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 50.0), 0.0));
        // Camera 50 m south looking east: points 90° off.
        let tangent = RepFov::new(0.0, 10.0, Fov::new(center().offset(180.0, 50.0), 90.0));
        let ids = vec![
            s.push(
                covering,
                SegmentRef {
                    provider_id: 0,
                    video_id: 0,
                    segment_idx: 0,
                },
            ),
            s.push(
                tangent,
                SegmentRef {
                    provider_id: 1,
                    video_id: 0,
                    segment_idx: 0,
                },
            ),
        ];
        let cam = CameraProfile::smartphone();
        let q = Query::new(0.0, 10.0, center(), 10.0);
        let opts = QueryOptions {
            direction_filter: false,
            require_coverage: true,
            ..QueryOptions::default()
        };
        let hits = rank_candidates(&ids, &s, &cam, &q, &opts);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].source.provider_id, 0);
    }

    #[test]
    fn retired_candidates_never_rank() {
        // Regression (privacy): a stale candidate list containing a
        // retracted segment's id must not resurface it.
        let (mut s, ids) = store();
        s.retire(ids[1]); // the closest one
        let cam = CameraProfile::smartphone();
        let opts = QueryOptions {
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = rank_candidates(&ids, &s, &cam, &query(), &opts);
        assert_eq!(hits.len(), 4);
        assert!(hits.iter().all(|h| h.id != ids[1]));
        assert!(hits.iter().all(|h| h.source.provider_id != 1));
    }

    #[test]
    fn empty_candidates_give_empty_hits() {
        let (s, _) = store();
        let cam = CameraProfile::smartphone();
        let hits = rank_candidates(&[], &s, &cam, &query(), &QueryOptions::default());
        assert!(hits.is_empty());
    }
}
