//! End-to-end tests of the `swag` binary: every subcommand exercised
//! against real files in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn swag(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_swag"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swag-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = swag(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = swag(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_writes_valid_trace_csv() {
    let trace = tmp("sim.csv");
    let out = swag(&[
        "simulate",
        "--scenario",
        "walk",
        "--seed",
        "3",
        "--duration",
        "10",
        "--out",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let content = std::fs::read_to_string(&trace).unwrap();
    assert!(content.starts_with("t,lat,lng,theta\n"));
    assert_eq!(content.lines().count(), 1 + 251); // header + 10 s @ 25 fps
}

#[test]
fn simulate_rejects_unknown_scenario() {
    let out = swag(&["simulate", "--scenario", "submarine"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
}

#[test]
fn segment_reports_and_exports_reps() {
    let trace = tmp("seg-in.csv");
    let reps = tmp("seg-out.csv");
    assert!(swag(&[
        "simulate",
        "--scenario",
        "bike",
        "--seed",
        "5",
        "--out",
        trace.to_str().unwrap()
    ])
    .status
    .success());
    let out = swag(&[
        "segment",
        "--in",
        trace.to_str().unwrap(),
        "--thresh",
        "0.5",
        "--out",
        reps.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("segments"), "{stderr}");
    let reps_csv = std::fs::read_to_string(&reps).unwrap();
    assert!(reps_csv.starts_with("t_start,t_end,lat,lng,theta\n"));
    assert!(reps_csv.lines().count() >= 3);
}

#[test]
fn ingest_query_retract_cycle() {
    let trace_a = tmp("prov-a.csv");
    let trace_b = tmp("prov-b.csv");
    let snapshot = tmp("db.swag");
    let _ = std::fs::remove_file(&snapshot);
    for (path, seed) in [(&trace_a, "7"), (&trace_b, "8")] {
        assert!(swag(&[
            "simulate",
            "--scenario",
            "bike",
            "--seed",
            seed,
            "--out",
            path.to_str().unwrap()
        ])
        .status
        .success());
    }

    let out = swag(&[
        "ingest",
        "--snapshot",
        snapshot.to_str().unwrap(),
        trace_a.to_str().unwrap(),
        trace_b.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(snapshot.exists());

    // Query a spot on the shared route.
    let query = |extra: &[&str]| {
        let mut args = vec![
            "query",
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--lat",
            "40.0005",
            "--lng",
            "116.32",
            "--radius",
            "100",
            "--t0",
            "0",
            "--t1",
            "60",
        ];
        args.extend_from_slice(extra);
        swag(&args)
    };
    let out = query(&[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("hits over"), "{stdout}");
    assert!(stdout.contains("provider"), "{stdout}");

    // Retract provider 0, verify it disappears.
    let out = swag(&[
        "retract",
        "--snapshot",
        snapshot.to_str().unwrap(),
        "--provider",
        "0",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&query(&["--top", "100"]).stdout).to_string();
    assert!(
        !stdout.contains("provider    0"),
        "provider 0 still visible:\n{stdout}"
    );
}

#[test]
fn trace_renders_waterfalls_and_exports_chrome_json() {
    let chrome = tmp("trace.json");
    let out = swag(&[
        "trace",
        "--seed",
        "5",
        "--queries",
        "8",
        "--threads",
        "2",
        "--top",
        "2",
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("8 query traces"));
    assert!(stdout.contains("#1 slowest query"));
    assert!(stdout.contains("#2 slowest query"));
    assert!(stdout.contains("slow-query capture"));
    // Waterfall rows carry label, duration, thread tag, and a bar.
    assert!(stdout.contains("query"));
    assert!(stdout.contains(" us t"));
    assert!(stdout.contains('|'));

    // The Chrome export is structurally sound JSON with complete ("X")
    // query spans carrying trace/span ids. Checked textually so the test
    // needs no JSON dependency; CI re-validates with a real parser.
    let json = std::fs::read_to_string(&chrome).unwrap();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}\n") || json.ends_with("]}"));
    assert!(json.contains("\"name\":\"query\""));
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"dur\":"));
    assert!(json.contains("\"trace\":"));
}

#[test]
fn trace_slow_threshold_pins_every_query() {
    // Threshold 0 us is configured via --slow-micros 1: practically every
    // query exceeds 1 us wall time, so the capture fills.
    let out = swag(&[
        "trace",
        "--seed",
        "5",
        "--queries",
        "4",
        "--top",
        "1",
        "--slow-micros",
        "1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(threshold 1 us)"));
    assert!(
        !stdout.contains("0 pinned"),
        "slow queries captured:\n{stdout}"
    );
}

#[test]
fn query_validates_arguments() {
    let out = swag(&[
        "query",
        "--snapshot",
        "/nonexistent",
        "--lat",
        "0",
        "--lng",
        "0",
        "--radius",
        "10",
        "--t0",
        "5",
        "--t1",
        "1",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("precedes"));

    let out = swag(&["query", "--lat", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--snapshot"));
}

#[test]
fn export_writes_geojson() {
    let trace = tmp("exp.csv");
    let geo = tmp("exp.geojson");
    assert!(swag(&[
        "simulate",
        "--scenario",
        "walk",
        "--seed",
        "1",
        "--duration",
        "5",
        "--out",
        trace.to_str().unwrap()
    ])
    .status
    .success());
    let out = swag(&[
        "export",
        "--in",
        trace.to_str().unwrap(),
        "--geojson",
        geo.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&geo).unwrap();
    assert!(json.contains("\"type\":\"FeatureCollection\""));
    assert!(json.contains("\"type\":\"LineString\""));
}

#[test]
fn simplify_reduces_clean_bike_trace_to_corners() {
    let trace = tmp("simp.csv");
    let out_path = tmp("simp-out.csv");
    assert!(swag(&[
        "simulate",
        "--scenario",
        "bike",
        "--seed",
        "2",
        "--out",
        trace.to_str().unwrap()
    ])
    .status
    .success());
    let out = swag(&[
        "simplify",
        "--in",
        trace.to_str().unwrap(),
        "--tolerance",
        "3",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let simplified = std::fs::read_to_string(&out_path).unwrap();
    // A clean L-shaped ride collapses to start, corner, end.
    assert_eq!(simplified.lines().count(), 1 + 3);
}

#[test]
fn top_once_renders_dashboard() {
    let out = swag(&["top", "--once", "--window-millis", "200", "--threads", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("live ops surface"), "{text}");
    for op in ["index_scan", "delta_scan", "ranking"] {
        assert!(text.contains(op), "missing operator row {op}:\n{text}");
    }
    assert!(text.contains("slo query_latency"), "{text}");
    assert!(text.contains("slo exec_queue_wait"), "{text}");
    // Windowed admission split and wide-event retention rows.
    assert!(text.contains("rate_limited"), "{text}");
    assert!(text.contains("overloaded"), "{text}");
    assert!(text.contains("events"), "{text}");
    assert!(text.contains("tail-sampled"), "{text}");
    // A single --once frame is plain text for scripts: no ANSI clears.
    assert!(!text.contains('\x1b'), "once frame must not clear screen");
}

#[test]
fn query_and_explain_analyze_annotate_operators() {
    let trace = tmp("ana.csv");
    let snapshot = tmp("ana.swag");
    let _ = std::fs::remove_file(&snapshot);
    assert!(swag(&[
        "simulate",
        "--scenario",
        "bike",
        "--seed",
        "7",
        "--out",
        trace.to_str().unwrap()
    ])
    .status
    .success());
    assert!(swag(&[
        "ingest",
        "--snapshot",
        snapshot.to_str().unwrap(),
        trace.to_str().unwrap()
    ])
    .status
    .success());

    let run = |cmd: &str| {
        let out = swag(&[
            cmd,
            "--snapshot",
            snapshot.to_str().unwrap(),
            "--lat",
            "40.0005",
            "--lng",
            "116.32",
            "--radius",
            "100",
            "--t0",
            "0",
            "--t1",
            "60",
            "--analyze",
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };

    let explain = run("explain");
    // Every operator annotated with measured time and rows, plus the
    // decision lines.
    for needle in [
        "EXPLAIN ANALYZE",
        "measured:",
        "index_scan",
        "delta_scan",
        "ranking",
        "rows",
        "admission:",
        "fanout",
        "digest",
    ] {
        assert!(explain.contains(needle), "missing {needle:?}:\n{explain}");
    }

    // `query --analyze` renders the same report, then the hits.
    let query = run("query");
    assert!(query.contains("measured:"), "{query}");
    assert!(query.contains("hits over"), "{query}");
}

#[test]
fn events_capture_replays_to_matching_digest() {
    let capture = tmp("cap.jsonl");
    let _ = std::fs::remove_file(&capture);
    let out = swag(&[
        "events",
        "--once",
        "--slow",
        "--ticks",
        "6",
        "--seed",
        "9",
        "--threads",
        "2",
        "--out",
        capture.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("events kept of"), "{text}");
    assert!(text.contains("digest"), "{text}");
    // The shed burst guarantees always-kept shed events in the capture.
    assert!(text.contains("shed_rate_limited"), "{text}");

    let jsonl = std::fs::read_to_string(&capture).unwrap();
    assert!(jsonl.starts_with("{\"capture\":{\"seed\":9,"), "{jsonl}");
    assert!(jsonl.contains("\"words\":["), "{jsonl}");

    // Replaying the slowest served event rebuilds the workload and
    // reproduces the captured result digest.
    let out = swag(&["replay", "--from", capture.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains("digest match:"), "{text}");
}

#[test]
fn serve_binds_ephemeral_port_and_serves_metrics() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swag"))
        .args([
            "serve",
            "--metrics-addr",
            "127.0.0.1:0",
            "--duration",
            "30",
            "--window-millis",
            "200",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("serve starts");

    // The address line is printed (and flushed) before the load loop.
    let mut stdout = child.stdout.take().unwrap();
    let addr = {
        use std::io::Read as _;
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while stdout.read(&mut byte).unwrap_or(0) == 1 {
            if byte[0] == b'\n' {
                break;
            }
            buf.push(byte[0]);
        }
        let line = String::from_utf8_lossy(&buf).to_string();
        let addr = line
            .rsplit("http://")
            .next()
            .expect("address line")
            .trim()
            .to_string();
        assert!(
            line.contains("metrics endpoint listening on"),
            "unexpected first line: {line}"
        );
        addr
    };

    // Give the workload a few window widths to accumulate, then scrape.
    std::thread::sleep(std::time::Duration::from_millis(600));
    let metrics = http_get(&addr, "/metrics");
    assert!(metrics.contains("# TYPE swag_server_op_micros histogram"));
    assert!(metrics.contains("swag_server_op_micros_bucket{op=\"index_scan\""));
    assert!(metrics.contains("swag_exec_queue_wait_micros_count"));
    // Windowed exports appear once at least one window has rotated.
    assert!(
        metrics.contains("_w_p99"),
        "expected windowed p99 gauges in:\n{metrics}"
    );
    let health = http_get(&addr, "/healthz");
    assert!(health.contains("ok uptime_micros="), "{health}");

    child.kill().expect("stop serve");
    let _ = child.wait();
}

/// Minimal HTTP GET returning the response body.
fn http_get(addr: &str, path: &str) -> String {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => response,
    }
}
