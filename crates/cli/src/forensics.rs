//! `swag events` and `swag replay` — the forensic capture/replay loop.
//!
//! `swag events` drives the shared live workload ([`LiveStack`]) with
//! the wide-event log enabled and prints (or exports) the tail-sampled
//! kept events: one structured record per query with the plan
//! fingerprint, the concrete cache/admission/fanout decisions, measured
//! per-operator times, latency, and a result digest. The capture is
//! **deterministic**: warm-up ticks run with the log paused, then one
//! query-only probe pass and a rate-limit burst record with the log
//! live, so a capture file plus its header (seed, ticks, threads)
//! pins the exact store state every event executed against.
//!
//! `swag replay` closes the loop: it rebuilds that state from a capture
//! file's header, re-executes a chosen event's query (bit-exact,
//! reconstructed from the event words) under EXPLAIN ANALYZE, and diffs
//! the result digest — a captured anomaly becomes a reproducible
//! investigation.

use std::io::Write as _;

use swag_server::{QueryEvent, QueryOutcome};

use crate::args::ArgParser;
use crate::live::{LiveConfig, LiveStack};
use crate::{open_reader, open_writer};

/// Warm-up ticks before the capture pass (also the capture tick).
const DEFAULT_TICKS: u64 = 12;

/// One row of the events table.
fn event_row(i: usize, ev: &QueryEvent) -> String {
    format!(
        "#{i:<4} {:<18} cache {:<10} {:<8} {:>7} us {:>4} hits  fp {:#018x}  digest {:#018x}  gens {}/{} delta {}\n",
        ev.outcome.to_string(),
        ev.cache.to_string(),
        if ev.fanout_parallel {
            "parallel"
        } else {
            "serial"
        },
        ev.total_micros,
        ev.hit_count,
        ev.fingerprint,
        ev.digest,
        ev.global_gen,
        ev.delta_gen,
        ev.delta_len,
    )
}

/// The JSONL capture header carrying everything replay needs to rebuild
/// the workload state the events executed against.
fn capture_header(cfg: &LiveConfig, ticks: u64) -> String {
    format!(
        "{{\"capture\":{{\"seed\":{},\"ticks\":{ticks},\"threads\":{},\"window_millis\":{},\"slo_millis\":{},\"keep_per_mille\":{}}}}}",
        cfg.seed, cfg.threads, cfg.window_millis, cfg.slo_millis, cfg.keep_per_mille
    )
}

/// Extracts `"key":<u64>` from a JSON header line.
fn header_u64(line: &str, key: &str) -> Result<u64, String> {
    let needle = format!("\"{key}\":");
    let start = line
        .find(&needle)
        .ok_or_else(|| format!("capture header missing \"{key}\""))?
        + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|e| format!("capture header \"{key}\": {e}"))
}

/// Runs the deterministic capture: warm ticks with the log paused, then
/// a probe pass plus a shed burst with it live. Returns the kept events.
fn capture(stack: &LiveStack, ticks: u64) -> Result<Vec<QueryEvent>, String> {
    let log = stack
        .server
        .event_log()
        .ok_or("wide-event log is not enabled on this server")?;
    log.set_enabled(false);
    for tick in 0..ticks {
        stack.drive(tick);
    }
    log.set_enabled(true);
    stack.probe(ticks);
    stack.shed_burst();
    log.set_enabled(false);
    Ok(log.kept())
}

/// `swag events` — capture the live workload's wide events and print the
/// tail-sampled kept log (`--slow` sorts by latency, `--shed` filters to
/// shed queries, `--out FILE` writes a replayable JSONL capture,
/// `--follow` keeps capturing round after round).
pub fn events(args: ArgParser) -> Result<(), String> {
    let cfg = LiveConfig::from_args(&args)?;
    let ticks = args.get_u64("ticks", DEFAULT_TICKS)?;
    let follow = args.has_flag("--follow");
    let slow = args.has_flag("--slow");
    let shed = args.has_flag("--shed");
    let iterations = args.get_u64("iterations", 0)?;

    let stack = LiveStack::build(&cfg)?;
    let mut kept = capture(&stack, ticks)?;
    let stats = stack
        .server
        .event_log()
        .expect("capture() already proved the log exists")
        .stats();

    let render = |kept: &mut Vec<QueryEvent>| -> String {
        if shed {
            kept.retain(|e| !matches!(e.outcome, QueryOutcome::Served));
        }
        if slow {
            kept.sort_by_key(|e| std::cmp::Reverse(e.total_micros));
        }
        let mut out = String::new();
        for (i, ev) in kept.iter().enumerate() {
            out.push_str(&event_row(i, ev));
        }
        out
    };

    print!("{}", render(&mut kept));
    println!(
        "{} events kept of {} recorded (keep {}/1000; sheds and >= {} us always kept)",
        kept.len(),
        stats.pushed,
        cfg.keep_per_mille,
        cfg.slo_millis * 1_000,
    );

    if let Some(path) = args.get("out") {
        let mut w = open_writer(path)?;
        writeln!(w, "{}", capture_header(&cfg, ticks)).map_err(|e| e.to_string())?;
        for ev in &kept {
            writeln!(w, "{}", ev.to_json()).map_err(|e| e.to_string())?;
        }
        w.flush().map_err(|e| e.to_string())?;
        eprintln!(
            "wrote {} events to {path} (replay with: swag replay --from {path})",
            kept.len()
        );
    }

    if follow {
        let log = stack
            .server
            .event_log()
            .expect("capture() already proved the log exists");
        let mut round = 0u64;
        loop {
            round += 1;
            log.clear();
            log.set_enabled(true);
            stack.drive(ticks + round);
            stack.probe(ticks + round);
            log.set_enabled(false);
            let mut fresh = log.kept();
            println!("--- round {round} ---");
            print!("{}", render(&mut fresh));
            std::io::stdout().flush().map_err(|e| e.to_string())?;
            if iterations > 0 && round >= iterations {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
        }
    }
    Ok(())
}

/// `swag replay` — re-execute a captured event against a rebuilt engine
/// and diff the result digest.
pub fn replay(args: ArgParser) -> Result<(), String> {
    let path = args.require("from")?;
    let mut lines = Vec::new();
    {
        use std::io::BufRead as _;
        for line in open_reader(path)?.lines() {
            let line = line.map_err(|e| format!("{path}: {e}"))?;
            if !line.trim().is_empty() {
                lines.push(line);
            }
        }
    }
    let header = lines
        .first()
        .filter(|l| l.contains("\"capture\":"))
        .ok_or_else(|| format!("{path}: first line is not a capture header"))?
        .clone();
    let events: Vec<QueryEvent> = lines[1..]
        .iter()
        .map(|l| QueryEvent::from_json(l).map_err(|e| format!("{path}: {e}")))
        .collect::<Result<_, _>>()?;
    if events.is_empty() {
        return Err(format!("{path}: no events to replay"));
    }

    // Pick the event: --index N by file order, else the slowest served
    // one (falling back to the slowest overall when every event is a
    // shed, so `swag replay` of a pure shed capture still renders).
    let ev = match args.get("index") {
        Some(raw) => {
            let i: usize = raw.parse().map_err(|e| format!("--index: {e}"))?;
            *events
                .get(i)
                .ok_or_else(|| format!("--index {i} out of range ({} events)", events.len()))?
        }
        None => *events
            .iter()
            .filter(|e| matches!(e.outcome, QueryOutcome::Served))
            .max_by_key(|e| e.total_micros)
            .unwrap_or(&events[0]),
    };

    // Rebuild the exact workload state the capture header pins.
    let cfg = LiveConfig {
        seed: header_u64(&header, "seed")?,
        threads: header_u64(&header, "threads")? as usize,
        window_millis: header_u64(&header, "window_millis")?,
        slo_millis: header_u64(&header, "slo_millis")?,
        keep_per_mille: header_u64(&header, "keep_per_mille")?,
        // Replays rebuild state from the capture's warm ticks, never
        // from disk — a data dir would make them non-reproducible.
        data_dir: None,
    };
    let ticks = header_u64(&header, "ticks")?;
    let stack = LiveStack::build(&cfg)?;
    let log = stack
        .server
        .event_log()
        .ok_or("wide-event log is not enabled on this server")?;
    log.set_enabled(false);
    for tick in 0..ticks {
        stack.drive(tick);
    }

    println!(
        "replaying event: {}",
        event_row(0, &ev).trim_start_matches("#0    ").trim_end()
    );
    let analyzed = stack.server.query_analyzed(1, &ev.query(), &ev.options());
    print!("{}", analyzed.report.render());
    let re = analyzed.report.event;

    if re.global_gen != ev.global_gen
        || re.delta_gen != ev.delta_gen
        || re.delta_len != ev.delta_len
    {
        println!(
            "stamp drift: captured gens {}/{} delta {}, replayed gens {}/{} delta {} — digests may differ legitimately",
            ev.global_gen, ev.delta_gen, ev.delta_len, re.global_gen, re.delta_gen, re.delta_len,
        );
    }
    if !matches!(ev.outcome, QueryOutcome::Served) {
        println!(
            "captured event was shed ({}) — no captured result to diff; replayed execution returned {} hits, digest {:#018x}",
            ev.outcome, re.hit_count, re.digest,
        );
        return Ok(());
    }
    if re.digest == ev.digest {
        println!(
            "digest match: {:#018x} ({} hits, captured {} us, replayed {} us)",
            re.digest, re.hit_count, ev.total_micros, re.total_micros,
        );
        Ok(())
    } else {
        println!("digest MISMATCH:");
        println!(
            "  captured : digest {:#018x}  {} hits  cache {}  gens {}/{} delta {}",
            ev.digest, ev.hit_count, ev.cache, ev.global_gen, ev.delta_gen, ev.delta_len,
        );
        println!(
            "  replayed : digest {:#018x}  {} hits  cache {}  gens {}/{} delta {}",
            re.digest, re.hit_count, re.cache, re.global_gen, re.delta_gen, re.delta_len,
        );
        Err("replayed result digest does not match the captured event".into())
    }
}
