//! `swag` — command-line front end for the SWAG retrieval system.
//!
//! ```text
//! swag simulate --scenario bike --seed 7 --out ride.csv
//! swag segment  --in ride.csv --thresh 0.5 --smooth 0.15 --out reps.csv
//! swag ingest   --snapshot db.swag ride.csv walk.csv
//! swag query    --snapshot db.swag --lat 40.0 --lng 116.32 \
//!               --radius 100 --t0 0 --t1 60 --top 10
//! swag explain  --snapshot db.swag --lat 40.0 --lng 116.32 \
//!               --radius 100 --t0 0 --t1 60
//! swag retract  --snapshot db.swag --provider 1
//! swag stats    --format prometheus
//! swag trace    --queries 64 --chrome trace.json
//! ```
//!
//! Traces are plain CSV (`t,lat,lng,theta`; see
//! [`swag_core::trace_io`]), snapshots are the binary format of
//! [`swag_server::persistence`].

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

mod args;
mod commands;
mod durable;
mod forensics;
mod live;

use args::ArgParser;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = argv.remove(0);
    let parser = ArgParser::new(argv);
    let result = match command.as_str() {
        "simulate" => commands::simulate(parser),
        "segment" => commands::segment(parser),
        "ingest" => commands::ingest(parser),
        "query" => commands::query(parser),
        "explain" => commands::explain(parser),
        "retract" => durable::retract(parser),
        "recover" => durable::recover(parser),
        "stats" => commands::stats(parser),
        "trace" => commands::trace(parser),
        "export" => commands::export(parser),
        "simplify" => commands::simplify(parser),
        "serve" => commands::serve(parser),
        "top" => commands::top(parser),
        "events" => forensics::events(parser),
        "replay" => forensics::replay(parser),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "\
swag — content-free crowd-sourced video retrieval (ICPP 2015 reproduction)

USAGE:
  swag simulate --scenario <walk|strafe|rotate|drive|bike|city> [--seed N]
                [--duration SECS] [--noise] [--out FILE]
  swag segment  --in FILE [--thresh T] [--smooth ALPHA] [--out FILE]
  swag ingest   --snapshot FILE TRACE.csv [TRACE.csv ...]
                [--thresh T] [--smooth ALPHA]
  swag query    <--snapshot FILE|--data-dir DIR> --lat LAT --lng LNG
                --radius M --t0 S --t1 S [--top N] [--tolerance DEG]
                [--no-direction-filter] [--coverage] [--quality]
                [--explain] [--analyze]
  swag explain  <--snapshot FILE|--data-dir DIR> --lat LAT --lng LNG
                --radius M --t0 S --t1 S [--top N] [--tolerance DEG]
                [--no-direction-filter] [--coverage] [--quality] [--analyze]
  swag retract  <--snapshot FILE|--data-dir DIR> --provider ID
  swag recover  --data-dir DIR
  swag stats    [--format <pretty|prometheus|json>] [--seed N] [--queries N]
                [--threads N] [--shard-width SECS] [--retain SECS] [--cache N]
                [--data-dir DIR]
  swag trace    [--seed N] [--queries N] [--top K] [--threads N]
                [--slow-micros US] [--chrome FILE]
  swag export   --in TRACE.csv --geojson FILE
  swag simplify --in TRACE.csv --tolerance M --out FILE
  swag serve    [--metrics-addr ADDR] [--duration SECS] [--seed N]
                [--threads N] [--window-millis MS] [--slo-millis MS]
                [--data-dir DIR]
  swag top      [--once] [--iterations N] [--interval-millis MS] [--seed N]
                [--threads N] [--window-millis MS] [--slo-millis MS]
                [--data-dir DIR]
  swag events   [--once|--follow] [--slow] [--shed] [--out FILE] [--ticks N]
                [--seed N] [--threads N] [--slo-millis MS] [--keep-per-mille N]
  swag replay   --from FILE [--index N] [default: slowest captured event]
  swag help

Traces are CSV: 't,lat,lng,theta'. Snapshots are binary server state.";

/// Opens a buffered reader over a file.
fn open_reader(path: &str) -> Result<BufReader<File>, String> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot open '{path}': {e}"))
}

/// Opens a buffered writer over a file (created/truncated).
fn open_writer(path: &str) -> Result<BufWriter<File>, String> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| format!("cannot create '{path}': {e}"))
}

/// Reads a whole file into bytes.
fn read_bytes(path: &str) -> Result<Vec<u8>, String> {
    let mut buf = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut buf))
        .map_err(|e| format!("cannot read '{path}': {e}"))?;
    Ok(buf)
}

/// Writes bytes to a file.
fn write_bytes(path: &str, bytes: &[u8]) -> Result<(), String> {
    File::create(path)
        .and_then(|mut f| f.write_all(bytes))
        .map_err(|e| format!("cannot write '{path}': {e}"))
}
