//! The `swag` subcommands.

use std::io::Write as _;
use std::sync::Arc;

use swag_client::{ClientPipeline, Uploader};
use swag_core::{read_trace_csv, write_reps_csv, write_trace_csv, CameraProfile, RepFov, TimedFov};
use swag_exec::{ExecConfig, Executor};
use swag_geo::{LatLon, Trajectory};
use swag_net::{
    observe_plan, plan_uploads, plan_uploads_traced, Connectivity, DataPlan, NetworkLink,
    UploadPolicy,
};
use swag_obs::{
    assemble, chrome_trace_json, labeled_name, render_waterfall, FlightRecorder, Metric, Registry,
    SpanTree, DEFAULT_RING_CAPACITY,
};
use swag_sensors::{scenarios, SensorNoise};
use swag_server::{
    load_snapshot, save_snapshot, CacheConfig, CloudServer, Query, QueryOptions, RankMode,
    SegmentRef, ServerConfig,
};

use crate::args::ArgParser;
use crate::live;
use crate::{open_reader, open_writer, read_bytes, write_bytes};

/// Default camera for CLI operations.
pub(crate) fn camera() -> CameraProfile {
    CameraProfile::smartphone()
}

/// `swag simulate` — generate a synthetic trace CSV.
pub fn simulate(args: ArgParser) -> Result<(), String> {
    let scenario = args.require("scenario")?.to_string();
    let seed = args.get_u64("seed", 42)?;
    let duration = args.get_f64("duration", 60.0)?;
    let noise = if args.has_flag("--noise") {
        SensorNoise::smartphone()
    } else {
        SensorNoise::NONE
    };
    let trace: Vec<TimedFov> = match scenario.as_str() {
        "walk" => scenarios::walk_parallel(duration, &noise, seed),
        "strafe" => scenarios::walk_perpendicular(duration, &noise, seed),
        "rotate" => scenarios::rotate_in_place(duration, 10.0, &noise, seed),
        "drive" => scenarios::drive_straight(duration, 14.0, &noise, seed),
        "bike" => scenarios::bike_ride_with_turn(duration.max(20.0) * 2.0, 4.0, &noise, seed),
        "city" => scenarios::city_walk(seed, (duration / 60.0).ceil().max(1.0) as usize, &noise),
        other => {
            return Err(format!(
                "unknown scenario '{other}' (walk|strafe|rotate|drive|bike|city)"
            ))
        }
    };
    match args.get("out") {
        Some(path) => {
            let mut w = open_writer(path)?;
            write_trace_csv(&mut w, &trace).map_err(|e| e.to_string())?;
            w.flush().map_err(|e| e.to_string())?;
            eprintln!("wrote {} frame records to {path}", trace.len());
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            write_trace_csv(&mut stdout, &trace).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// `swag segment` — run the client pipeline over a trace CSV.
pub fn segment(args: ArgParser) -> Result<(), String> {
    let input = args.require("in")?;
    let thresh = args.get_f64("thresh", 0.5)?;
    let trace = read_trace_csv(open_reader(input)?).map_err(|e| e.to_string())?;
    if trace.is_empty() {
        return Err("trace is empty".into());
    }
    let result = run_pipeline(&args, thresh, &trace)?;
    eprintln!(
        "{} frames -> {} segments (thresh {thresh})",
        result.frames,
        result.segment_count()
    );
    for (i, rep) in result.reps.iter().enumerate() {
        eprintln!(
            "  seg {i:>3}: t [{:>8.2}, {:>8.2}] s  @ ({:.6}, {:.6}) theta {:>6.1} deg",
            rep.t_start, rep.t_end, rep.fov.p.lat, rep.fov.p.lng, rep.fov.theta
        );
    }
    if let Some(path) = args.get("out") {
        let mut w = open_writer(path)?;
        write_reps_csv(&mut w, &result.reps).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        eprintln!("wrote representative FoVs to {path}");
    }
    Ok(())
}

fn run_pipeline(
    args: &ArgParser,
    thresh: f64,
    trace: &[TimedFov],
) -> Result<swag_client::RecordingResult, String> {
    let alpha = args.get_f64("smooth", 0.0)?;
    Ok(if alpha > 0.0 {
        ClientPipeline::process_trace_smoothed(camera(), thresh, alpha, trace)
    } else {
        ClientPipeline::process_trace(camera(), thresh, trace)
    })
}

/// `swag ingest` — segment traces and build/extend a snapshot.
pub fn ingest(args: ArgParser) -> Result<(), String> {
    let snapshot_path = args.require("snapshot")?;
    let thresh = args.get_f64("thresh", 0.5)?;
    if args.positionals().is_empty() {
        return Err("no trace files given".into());
    }

    // Extend an existing snapshot when present.
    let server = match read_bytes(snapshot_path) {
        Ok(bytes) => {
            let server = load_snapshot(&bytes[..], camera()).map_err(|e| e.to_string())?;
            eprintln!(
                "extending snapshot {snapshot_path} ({} segments)",
                server.stats().segments
            );
            server
        }
        Err(_) => CloudServer::new(camera()),
    };

    // Continue provider numbering after existing records.
    let mut next_provider = server
        .export_records()
        .iter()
        .map(|r| r.source.provider_id + 1)
        .max()
        .unwrap_or(0);

    #[allow(clippy::explicit_counter_loop)] // starts from the snapshot's max id
    for path in args.positionals() {
        let trace = read_trace_csv(open_reader(path)?).map_err(|e| format!("{path}: {e}"))?;
        if trace.is_empty() {
            return Err(format!("{path}: trace is empty"));
        }
        let result = run_pipeline(&args, thresh, &trace)?;
        let reps: Vec<RepFov> = result.reps;
        for (i, rep) in reps.iter().enumerate() {
            server.ingest_one(
                *rep,
                SegmentRef {
                    provider_id: next_provider,
                    video_id: 0,
                    segment_idx: i as u32,
                },
            );
        }
        eprintln!(
            "{path}: {} frames -> {} segments as provider {next_provider}",
            result.frames,
            reps.len()
        );
        next_provider += 1;
    }

    let bytes = save_snapshot(&server).map_err(|e| e.to_string())?;
    write_bytes(snapshot_path, &bytes)?;
    eprintln!(
        "snapshot {snapshot_path}: {} segments, {} bytes",
        server.stats().segments,
        bytes.len()
    );
    Ok(())
}

/// Parses and validates the shared query arguments (`--lat`, `--lng`,
/// `--radius`, `--t0`, `--t1`, plus option flags) through the fallible
/// ingress path: hostile values surface as [`swag_server::QueryError`]
/// messages instead of panicking the server.
fn parse_query_args(args: &ArgParser) -> Result<(Query, QueryOptions), String> {
    let lat = args.require_f64("lat")?;
    let lng = args.require_f64("lng")?;
    let radius = args.require_f64("radius")?;
    let t0 = args.require_f64("t0")?;
    let t1 = args.require_f64("t1")?;
    let q = Query::try_new(t0, t1, LatLon::new(lat, lng), radius).map_err(|e| e.to_string())?;
    let opts = QueryOptions {
        top_n: args.get_u64("top", 10)? as usize,
        direction_filter: !args.has_flag("--no-direction-filter"),
        direction_tolerance_deg: args.get_f64("tolerance", 10.0)?,
        require_coverage: args.has_flag("--coverage"),
        rank: if args.has_flag("--quality") {
            RankMode::Quality
        } else {
            RankMode::Distance
        },
    }
    .validated()
    .map_err(|e| e.to_string())?;
    Ok((q, opts))
}

/// Cheap presence check for the state source a query-style command
/// reads, run *before* argument parsing so "which file?" errors come
/// ahead of "which query?" errors (the CLI tests pin this ordering).
fn require_source(args: &ArgParser) -> Result<(), String> {
    match (args.get("snapshot"), args.get("data-dir")) {
        (Some(_), Some(_)) => Err("pass either --snapshot or --data-dir, not both".into()),
        (None, None) => Err("missing required --snapshot (or --data-dir)".into()),
        _ => Ok(()),
    }
}

/// Loads the server a query-style command operates on: a binary
/// snapshot file (`--snapshot`) or a durable data directory
/// (`--data-dir`, recovering WAL + incremental snapshot + cold tier).
pub(crate) fn load_server(args: &ArgParser) -> Result<CloudServer, String> {
    match (args.get("snapshot"), args.get("data-dir")) {
        (Some(path), None) => {
            let bytes = read_bytes(path)?;
            load_snapshot(&bytes[..], camera()).map_err(|e| e.to_string())
        }
        (None, Some(dir)) => {
            CloudServer::open(dir, camera(), ServerConfig::default()).map_err(|e| e.to_string())
        }
        (Some(_), Some(_)) => Err("pass either --snapshot or --data-dir, not both".into()),
        (None, None) => Err("missing required --snapshot (or --data-dir)".into()),
    }
}

/// `swag explain` — print the typed plan a query would execute against a
/// snapshot, without running it (against a data dir, the plan includes
/// cold-run reachability). `--analyze` instead executes the query for
/// real and annotates every operator with measured time and rows.
pub fn explain(args: ArgParser) -> Result<(), String> {
    require_source(&args)?;
    let (q, opts) = parse_query_args(&args)?;
    let server = load_server(&args)?;
    if args.has_flag("--analyze") {
        print!("{}", server.query_analyzed(0, &q, &opts).report.render());
    } else {
        print!("{}", server.explain(&q, &opts));
    }
    Ok(())
}

/// `swag query` — answer a spatio-temporal query from a snapshot or a
/// durable data directory.
pub fn query(args: ArgParser) -> Result<(), String> {
    require_source(&args)?;
    let (q, opts) = parse_query_args(&args)?;
    let server = load_server(&args)?;

    if args.has_flag("--explain") {
        print!("{}", server.explain(&q, &opts));
    }
    let hits = if args.has_flag("--analyze") {
        // EXPLAIN ANALYZE: the same execution, instrumented — the report
        // is printed and the (byte-identical) hits listed below as usual.
        let analyzed = server.query_analyzed(0, &q, &opts);
        print!("{}", analyzed.report.render());
        analyzed.hits
    } else {
        server.query(&q, &opts)
    };
    println!(
        "{} hits over {} indexed segments ({} us)",
        hits.len(),
        server.stats().segments,
        server.stats().query_micros_total
    );
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "#{rank:<3} provider {:>4} video {:>3} seg {:>3}  {:>6.0} m  q={:.3}  t [{:>9.2}, {:>9.2}] s",
            hit.source.provider_id,
            hit.source.video_id,
            hit.source.segment_idx,
            hit.distance_m,
            hit.quality,
            hit.rep.t_start,
            hit.rep.t_end,
        );
    }
    Ok(())
}

/// `swag stats` — run a probe workload through the instrumented pipeline
/// and render the resulting metrics.
///
/// The workload exercises every instrumented layer: a synthetic recording
/// is segmented on the client, its descriptors encoded and upload-planned
/// over a WiFi/cellular timeline, ingested by an observable server, and
/// queried around each recorded segment.
pub fn stats(args: ArgParser) -> Result<(), String> {
    let format = args.get("format").unwrap_or("pretty");
    let seed = args.get_u64("seed", 42)?;
    let n_queries = args.get_u64("queries", 32)?;
    let threads = args.get_u64("threads", 1)? as usize;
    let cache_cap = args.get_u64("cache", 0)? as usize;
    let shard_width_s = args.get_f64("shard-width", 600.0)?;
    if !(shard_width_s.is_finite() && shard_width_s > 0.0) {
        return Err("--shard-width must be positive".into());
    }
    let retain_s = match args.get("retain") {
        None => None,
        Some(raw) => {
            let h: f64 = raw.parse().map_err(|e| format!("--retain: {e}"))?;
            if !(h.is_finite() && h > 0.0) {
                return Err("--retain must be positive".into());
            }
            Some(h)
        }
    };
    let registry = Registry::new();

    // Client layer: segment a simulated city recording.
    let trace = scenarios::city_walk(seed, 3, &SensorNoise::smartphone());
    let mut pipeline = ClientPipeline::new(camera(), 0.5)
        .with_smoothing(0.15)
        .with_observability(&registry);
    for &frame in &trace {
        pipeline.push(frame);
    }
    let recording = pipeline.finish();
    if recording.reps.is_empty() {
        return Err("probe workload produced no segments".into());
    }

    // Upload layer: encode descriptors and plan their transmission.
    let mut uploader = Uploader::new(0);
    uploader.attach_observability(&registry);
    let (wire, batch) = uploader
        .upload(recording.reps.clone())
        .map_err(|e| e.to_string())?;
    let uploads = [(30.0, wire.len()), (400.0, wire.len())];
    let plan = plan_uploads(
        UploadPolicy::WifiPreferred { max_delay_s: 300.0 },
        &Connectivity::new(vec![(0.0, 60.0), (900.0, 1800.0)]),
        &uploads,
        &NetworkLink::cellular_4g(),
        &NetworkLink::wifi(),
        &DataPlan::metered(),
    );
    observe_plan(&plan, &uploads, &registry);

    // Server layer: ingest and query around every recorded segment.
    // With `--data-dir` the probe server is durable: ingests hit the
    // WAL and the durability row below reports real counters.
    let probe_config = ServerConfig {
        shard_width_s,
        retention_horizon_s: retain_s,
        cache: CacheConfig::enabled(cache_cap),
        ..ServerConfig::default()
    };
    let mut server = match args.get("data-dir") {
        Some(dir) => CloudServer::open(dir, camera(), probe_config).map_err(|e| e.to_string())?,
        None => CloudServer::with_config(camera(), probe_config),
    };
    server.set_executor(if threads <= 1 {
        Executor::serial()
    } else {
        Executor::new(ExecConfig::with_threads(threads))
    });
    server.attach_observability(&registry);
    server.ingest_batch(&batch);
    let probes: Vec<Query> = (0..n_queries)
        .map(|i| {
            let rep = &recording.reps[i as usize % recording.reps.len()];
            Query::new(rep.t_start - 5.0, rep.t_end + 5.0, rep.fov.p, 150.0)
        })
        .collect();
    server.query_batch(&probes, &QueryOptions::default(), threads);
    if cache_cap > 0 {
        // Second pass reads warm result-cache entries, so the hit/miss
        // split in the rendered metrics reflects a steady-state mix.
        server.query_batch(&probes, &QueryOptions::default(), threads);
    }
    server.query_nearest(
        0.0,
        trace.last().map_or(60.0, |f| f.t),
        recording.reps[0].fov.p,
        3,
        &QueryOptions::default(),
        5_000.0,
    );
    // Durable probes leave a replay-free directory behind (no-op when
    // memory-only).
    server.quiesce();

    match format {
        "prometheus" => print!("{}", registry.render_prometheus()),
        "json" => print!("{}", registry.render_json()),
        "pretty" => {
            print_metrics_table(&registry);
            let s = server.stats();
            println!(
                "\nsnapshot: {} segments, {} shards ({shard_width_s} s wide), \
                 {} pending in delta, retention {}",
                s.segments,
                s.shards,
                s.pending_delta,
                retain_s.map_or("off".to_string(), |h| format!("{h} s")),
            );
            let e = server.executor().stats();
            println!(
                "executor: {} thread{} ({}), {} tasks, {} steals",
                e.threads,
                if e.threads == 1 { "" } else { "s" },
                if server.executor().is_serial() {
                    "serial"
                } else {
                    "work-stealing"
                },
                e.tasks,
                e.steals,
            );
            let ch = registry.counter("swag_server_cache_hits_total").get();
            let cm = registry.counter("swag_server_cache_misses_total").get();
            let shed =
                reason_total(&registry, "rate_limited") + reason_total(&registry, "overloaded");
            println!(
                "cache: {}, {ch} hits / {cm} misses ({:.0}% hit rate); \
                 admission: {} admitted, {shed} shed",
                if cache_cap > 0 {
                    format!("on (cap {cache_cap})")
                } else {
                    "off".to_string()
                },
                if ch + cm > 0 {
                    100.0 * ch as f64 / (ch + cm) as f64
                } else {
                    0.0
                },
                registry.counter("swag_server_admitted_total").get(),
            );
            match server.durability_stats() {
                Some(d) => println!(
                    "durability: on — wal {} records / {} B appended ({} B unsynced), \
                     {} snapshots ({} buckets), cold {} runs / {} segments",
                    d.wal_records,
                    d.wal_appended_bytes,
                    d.wal_lag_bytes,
                    d.snapshots_written,
                    d.snapshot_buckets_written,
                    d.cold_runs,
                    d.cold_segments,
                ),
                None => println!("durability: off (memory-only; pass --data-dir DIR)"),
            }
        }
        other => return Err(format!("unknown format '{other}' (pretty|prometheus|json)")),
    }
    Ok(())
}

/// `swag trace` — replay the probe workload with causal tracing enabled
/// and render the slowest query span trees as ASCII waterfalls.
///
/// One [`FlightRecorder`] is shared across every layer — client
/// segmentation, descriptor encoding, upload planning, and the server —
/// so a single trace shows the full request path. `--chrome FILE` also
/// exports every recorded span in Chrome trace-event JSON (load it at
/// `chrome://tracing` or <https://ui.perfetto.dev>).
pub fn trace(args: ArgParser) -> Result<(), String> {
    let seed = args.get_u64("seed", 42)?;
    let n_queries = args.get_u64("queries", 32)?;
    let top = args.get_u64("top", 3)? as usize;
    let threads = args.get_u64("threads", 1)? as usize;
    let slow_micros = match args.get("slow-micros") {
        None => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|e| format!("--slow-micros: {e}"))?,
        ),
    };

    let recorder = Arc::new(FlightRecorder::new(DEFAULT_RING_CAPACITY));
    recorder.enable();

    // Client layer: segment a simulated city recording, traced.
    let frames = scenarios::city_walk(seed, 3, &SensorNoise::smartphone());
    let mut pipeline = ClientPipeline::new(camera(), 0.5)
        .with_smoothing(0.15)
        .with_flight_recorder(recorder.clone());
    for &frame in &frames {
        pipeline.push(frame);
    }
    let recording = pipeline.finish();
    if recording.reps.is_empty() {
        return Err("probe workload produced no segments".into());
    }

    // Upload layer: encode descriptors and plan their transmission.
    let mut uploader = Uploader::new(0);
    uploader.attach_flight_recorder(recorder.clone());
    let (wire, batch) = uploader
        .upload(recording.reps.clone())
        .map_err(|e| e.to_string())?;
    let uploads = [(30.0, wire.len()), (400.0, wire.len())];
    plan_uploads_traced(
        &recorder,
        UploadPolicy::WifiPreferred { max_delay_s: 300.0 },
        &Connectivity::new(vec![(0.0, 60.0), (900.0, 1800.0)]),
        &uploads,
        &NetworkLink::cellular_4g(),
        &NetworkLink::wifi(),
        &DataPlan::metered(),
    );

    // Server layer: ingest and query around every recorded segment.
    let mut server = CloudServer::with_config(
        camera(),
        ServerConfig {
            slow_query_micros: slow_micros,
            ..ServerConfig::default()
        },
    );
    server.set_executor(if threads <= 1 {
        Executor::serial()
    } else {
        Executor::new(ExecConfig::with_threads(threads))
    });
    server.set_flight_recorder(recorder.clone());
    server.ingest_batch(&batch);
    let probes: Vec<Query> = (0..n_queries)
        .map(|i| {
            let rep = &recording.reps[i as usize % recording.reps.len()];
            Query::new(rep.t_start - 5.0, rep.t_end + 5.0, rep.fov.p, 150.0)
        })
        .collect();
    server.query_batch(&probes, &QueryOptions::default(), threads);

    let events = recorder.dump();
    if let Some(path) = args.get("chrome") {
        let json = chrome_trace_json(&events);
        write_bytes(path, json.as_bytes())?;
        eprintln!(
            "wrote {} span events as Chrome trace JSON to {path}",
            events.len()
        );
    }

    let trees = assemble(&events);
    let (mut query_trees, other_trees): (Vec<SpanTree>, Vec<SpanTree>) = trees
        .into_iter()
        .partition(|t| t.roots.iter().any(|r| r.label == "query"));
    query_trees.sort_by_key(|t| std::cmp::Reverse(t.total_micros()));
    println!(
        "{} span events across {} query traces (+{} other traces), {} queries replayed",
        events.len(),
        query_trees.len(),
        other_trees.len(),
        n_queries,
    );
    let slow = recorder.slow_queries();
    println!(
        "slow-query capture: {} pinned (threshold {})",
        slow.len(),
        match recorder.slow_threshold_micros() {
            0 => "off".to_string(),
            t => format!("{t} us"),
        },
    );
    for (rank, tree) in query_trees.iter().take(top.max(1)).enumerate() {
        println!(
            "\n#{} slowest query — {} us, {} spans, trace {}",
            rank + 1,
            tree.total_micros(),
            tree.span_count(),
            tree.trace_id,
        );
        print!("{}", render_waterfall(tree, 48));
    }
    Ok(())
}

/// Cumulative total of one `swag_server_shed_total` reason label.
fn reason_total(registry: &Registry, reason: &str) -> u64 {
    registry
        .counter(&labeled_name(
            "swag_server_shed_total",
            &[("reason", reason)],
        ))
        .get()
}

fn print_metrics_table(registry: &Registry) {
    println!(
        "{:<44} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "metric", "count", "mean", "p50", "p90", "p99", "max"
    );
    for name in registry.names() {
        match registry.get(&name) {
            Some(Metric::Counter(c)) => println!("{name:<44} {:>10}", c.get()),
            Some(Metric::Gauge(g)) => println!("{name:<44} {:>10}", g.get()),
            Some(Metric::Histogram(h)) => {
                let s = h.snapshot();
                println!(
                    "{name:<44} {:>10} {:>10.1} {:>8} {:>8} {:>8} {:>10}",
                    s.count,
                    s.mean(),
                    s.p50(),
                    s.p90(),
                    s.p99(),
                    s.max
                );
            }
            None => {}
        }
    }
}

/// `swag export` — convert a trace CSV to GeoJSON for map viewers.
pub fn export(args: ArgParser) -> Result<(), String> {
    let input = args.require("in")?;
    let output = args.require("geojson")?;
    let trace = read_trace_csv(open_reader(input)?).map_err(|e| e.to_string())?;
    let json = swag::geojson::trace_to_geojson(&trace);
    write_bytes(output, json.as_bytes())?;
    eprintln!("wrote {} frame records as GeoJSON to {output}", trace.len());
    Ok(())
}

/// `swag simplify` — Douglas-Peucker-simplify a trace's path (positions
/// only; timestamps/azimuths of the kept vertices are preserved).
pub fn simplify(args: ArgParser) -> Result<(), String> {
    let input = args.require("in")?;
    let output = args.require("out")?;
    let tolerance = args.get_f64("tolerance", 5.0)?;
    if tolerance < 0.0 {
        return Err("--tolerance must be non-negative".into());
    }
    let trace = read_trace_csv(open_reader(input)?).map_err(|e| e.to_string())?;
    let path = Trajectory::new(trace.iter().map(|f| f.fov.p).collect());
    let kept = path.simplify_m(tolerance);

    // Map kept vertices back to their original frame records, in order.
    let mut kept_iter = kept.points().iter().peekable();
    let simplified: Vec<TimedFov> = trace
        .iter()
        .filter(|f| {
            if kept_iter
                .peek()
                .is_some_and(|&&k| k.distance_m(f.fov.p) < 1e-6)
            {
                kept_iter.next();
                true
            } else {
                false
            }
        })
        .copied()
        .collect();

    let mut w = open_writer(output)?;
    write_trace_csv(&mut w, &simplified).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "{} -> {} vertices at {tolerance} m tolerance ({:.1}x smaller)",
        trace.len(),
        simplified.len(),
        trace.len() as f64 / simplified.len().max(1) as f64
    );
    Ok(())
}

/// `swag serve` — run the live probe workload with the embedded metrics
/// endpoint, for Prometheus scrapes and `curl` spelunking.
pub fn serve(args: ArgParser) -> Result<(), String> {
    let cfg = live::LiveConfig::from_args(&args)?;
    let addr = args
        .get("metrics-addr")
        .unwrap_or("127.0.0.1:9464")
        .to_string();
    let duration_s = args.get_u64("duration", 0)?;

    let stack = live::LiveStack::build(&cfg)?;
    let endpoint = stack
        .surface
        .serve(&addr)
        .map_err(|e| format!("cannot bind metrics endpoint '{addr}': {e}"))?;
    // Scripted callers (CI) grep this exact line for the resolved
    // ephemeral port, so keep its shape stable.
    println!("metrics endpoint listening on http://{}", endpoint.addr());
    println!("routes: /metrics /vars /slo /healthz");
    if duration_s > 0 {
        println!("serving workload for {duration_s}s");
    } else {
        println!("serving workload until interrupted (Ctrl-C)");
    }
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let started = std::time::Instant::now();
    let mut tick = 0u64;
    loop {
        stack.drive(tick);
        // Pump the window clock so rotations, windowed-export gauges and
        // SLO states stay fresh even when nobody is scraping.
        stack.surface.refresh(false);
        tick += 1;
        std::thread::sleep(std::time::Duration::from_millis(50));
        if duration_s > 0 && started.elapsed().as_secs() >= duration_s {
            break;
        }
    }
    let statuses = stack.surface.refresh(true);
    for s in &statuses {
        eprintln!(
            "slo {}: {} (burn short {:.2}x long {:.2}x)",
            s.spec.name, s.state, s.short.burn, s.long.burn
        );
    }
    eprintln!(
        "served {tick} workload ticks in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `swag top` — refreshing terminal dashboard over the live workload's
/// windowed metrics and SLO states; `--once` renders a single frame for
/// scripts.
pub fn top(args: ArgParser) -> Result<(), String> {
    let cfg = live::LiveConfig::from_args(&args)?;
    let once = args.has_flag("--once");
    let iterations = args.get_u64("iterations", 0)?;
    let interval_millis = args.get_u64("interval-millis", 1_000)?.max(50);

    let stack = live::LiveStack::build(&cfg)?;
    // Baseline every metric before the first burst so the first frame
    // shows windowed deltas rather than since-startup totals.
    stack.surface.refresh(true);

    if once {
        for tick in 0..8 {
            stack.drive(tick);
        }
        let statuses = stack.surface.refresh(true);
        print!("{}", live::render_dashboard(&stack, &statuses));
        return Ok(());
    }

    let mut tick = 0u64;
    let mut frames = 0u64;
    loop {
        let deadline =
            std::time::Instant::now() + std::time::Duration::from_millis(interval_millis);
        while std::time::Instant::now() < deadline {
            stack.drive(tick);
            tick += 1;
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        let statuses = stack.surface.refresh(true);
        // Clear screen + home, then one whole frame.
        print!("\x1b[2J\x1b[H{}", live::render_dashboard(&stack, &statuses));
        std::io::stdout().flush().map_err(|e| e.to_string())?;
        frames += 1;
        if iterations > 0 && frames >= iterations {
            return Ok(());
        }
    }
}
