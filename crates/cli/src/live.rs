//! Shared live-workload harness for `swag serve` and `swag top`.
//!
//! Both commands need the same thing the `stats`/`trace` probes build
//! once: a fully instrumented stack (client segmentation → descriptor
//! upload → observable server) — but running *continuously*, so the
//! windowed metrics, SLO burn rates, and the `/metrics` endpoint have a
//! moving workload to describe. [`LiveStack::build`] wires the stack and
//! its [`OpsSurface`]; [`LiveStack::drive`] advances the workload one
//! tick (shifted ingest + a probe query batch, so publishes, retention,
//! and shard churn all happen over time); [`render_dashboard`] formats
//! the windowed views as the `swag top` screen.

use std::sync::Arc;

use swag_client::{ClientPipeline, Uploader};
use swag_core::{CameraProfile, RepFov, UploadBatch};
use swag_exec::{ExecConfig, Executor};
use swag_net::{observe_plan, plan_uploads, Connectivity, DataPlan, NetworkLink, UploadPolicy};
use swag_obs::{
    labeled_name, Metric, OpsSurface, Registry, SloSpec, SloStatus, WallClock, WindowSpec,
    WindowView,
};
use swag_sensors::{scenarios, SensorNoise};
use swag_server::{
    AdmissionConfig, CacheConfig, CloudServer, EventLogConfig, Query, QueryOptions, ServerConfig,
};

use crate::args::ArgParser;

/// Knobs shared by `swag serve`, `swag top`, `swag events`, and
/// `swag replay`.
pub struct LiveConfig {
    pub seed: u64,
    pub threads: usize,
    /// Window width for the metric rings, milliseconds.
    pub window_millis: u64,
    /// Query-latency SLO threshold, milliseconds. Doubles as the
    /// wide-event log's always-keep slow threshold.
    pub slo_millis: u64,
    /// Tail-sampling keep rate for ordinary (served, under-SLO) events,
    /// out of 1000. Sheds and slow queries are always kept.
    pub keep_per_mille: u64,
    /// Data directory for durable serving (`None` = memory-only). With
    /// a directory, ingests are WAL-logged, publishes snapshot
    /// incrementally, and retention demotes expired shards to the cold
    /// tier instead of dropping them.
    pub data_dir: Option<String>,
}

impl LiveConfig {
    /// Parses the shared `--seed/--threads/--window-millis/--slo-millis/
    /// --keep-per-mille` arguments.
    pub fn from_args(args: &ArgParser) -> Result<LiveConfig, String> {
        let cfg = LiveConfig {
            seed: args.get_u64("seed", 42)?,
            threads: args.get_u64("threads", 2)? as usize,
            window_millis: args.get_u64("window-millis", 2_000)?,
            slo_millis: args.get_u64("slo-millis", 5)?,
            keep_per_mille: args.get_u64("keep-per-mille", 1_000)?,
            data_dir: args.get("data-dir").map(str::to_string),
        };
        if cfg.window_millis == 0 {
            return Err("--window-millis must be positive".into());
        }
        if cfg.slo_millis == 0 {
            return Err("--slo-millis must be positive".into());
        }
        if cfg.keep_per_mille > 1_000 {
            return Err("--keep-per-mille is out of 1000".into());
        }
        Ok(cfg)
    }
}

/// The instrumented stack both live commands drive.
pub struct LiveStack {
    pub registry: Arc<Registry>,
    pub surface: Arc<OpsSurface>,
    pub server: Arc<CloudServer>,
    /// Representative FoVs of the base recording; re-ingested
    /// time-shifted every few ticks to keep publishes/retention moving.
    reps: Vec<RepFov>,
    probes: Vec<Query>,
    threads: usize,
}

/// Seconds of paper time each drive tick advances the workload.
const TICK_SHIFT_S: f64 = 60.0;

impl LiveStack {
    /// Builds the instrumented probe stack and its ops surface.
    pub fn build(cfg: &LiveConfig) -> Result<LiveStack, String> {
        let cam = CameraProfile::smartphone();
        let registry = Arc::new(Registry::new());

        // Client layer: segment a simulated city recording.
        let trace = scenarios::city_walk(cfg.seed, 3, &SensorNoise::smartphone());
        let mut pipeline = ClientPipeline::new(cam, 0.5)
            .with_smoothing(0.15)
            .with_observability(&registry);
        for &frame in &trace {
            pipeline.push(frame);
        }
        let recording = pipeline.finish();
        if recording.reps.is_empty() {
            return Err("probe workload produced no segments".into());
        }

        // Upload layer: encode descriptors and plan their transmission.
        let mut uploader = Uploader::new(0);
        uploader.attach_observability(&registry);
        let (wire, batch) = uploader
            .upload(recording.reps.clone())
            .map_err(|e| e.to_string())?;
        let uploads = [(30.0, wire.len()), (400.0, wire.len())];
        let plan = plan_uploads(
            UploadPolicy::WifiPreferred { max_delay_s: 300.0 },
            &Connectivity::new(vec![(0.0, 60.0), (900.0, 1800.0)]),
            &uploads,
            &NetworkLink::cellular_4g(),
            &NetworkLink::wifi(),
            &DataPlan::metered(),
        );
        observe_plan(&plan, &uploads, &registry);

        // Server layer: small publish threshold and a retention horizon,
        // so the shifted re-ingest keeps the snapshot lifecycle active.
        // The result cache and admission control run here with generous
        // budgets: the dashboard's hit-rate and shed-rate rows describe a
        // live mix rather than zeros.
        let server_config = ServerConfig {
            publish_threshold: 64,
            retention_horizon_s: Some(1_800.0),
            cache: CacheConfig::enabled(2_048),
            admission: AdmissionConfig {
                enabled: true,
                rate_per_s: 500.0,
                burst: 250.0,
                ..AdmissionConfig::default()
            },
            // The forensic wide-event log rides along on every live
            // command: `swag events`/`swag replay` read it, and the
            // dashboard's events row stays non-zero on `swag top`.
            events: EventLogConfig {
                enabled: true,
                kept_capacity: 512,
                keep_per_mille: cfg.keep_per_mille as u32,
                slow_micros: cfg.slo_millis * 1_000,
                seed: cfg.seed,
                ..EventLogConfig::default()
            },
            ..ServerConfig::default()
        };
        // With `--data-dir` the live server is durable: it recovers
        // whatever a previous run left behind, WAL-logs every ingest,
        // and retention demotes expired shards to the cold tier.
        let mut server = match &cfg.data_dir {
            Some(dir) => CloudServer::open(dir, cam, server_config)
                .map_err(|e| format!("cannot open data dir '{dir}': {e}"))?,
            None => CloudServer::with_config(cam, server_config),
        };
        server.set_executor(if cfg.threads <= 1 {
            Executor::serial()
        } else {
            Executor::new(ExecConfig::with_threads(cfg.threads))
        });
        server.attach_observability(&registry);
        server.ingest_batch(&batch);
        let server = Arc::new(server);

        let probes: Vec<Query> = recording
            .reps
            .iter()
            .map(|rep| Query::new(rep.t_start - 5.0, rep.t_end + 5.0, rep.fov.p, 150.0))
            .collect();

        let surface = Arc::new(OpsSurface::new(
            registry.clone(),
            Arc::new(WallClock),
            WindowSpec::new(cfg.window_millis * 1_000, 30),
        ));
        surface.add_slo(SloSpec::latency(
            "query_latency",
            "swag_server_query_micros",
            cfg.slo_millis * 1_000,
            0.99,
        ));
        surface.add_slo(SloSpec::latency(
            "exec_queue_wait",
            "swag_exec_queue_wait_micros",
            1_000,
            0.95,
        ));
        let gauges_server = server.clone();
        surface.add_refresher(move |reg| gauges_server.refresh_gauges(reg));

        Ok(LiveStack {
            registry,
            surface,
            server,
            reps: recording.reps,
            probes,
            threads: cfg.threads,
        })
    }

    /// Advances the workload one tick: every few ticks a time-shifted
    /// copy of the recording is ingested as a new provider (advancing
    /// paper time so publishes fire and retention eventually expires old
    /// shards), then the probe queries run as one batch, time-shifted
    /// the same way so they chase the freshest shards.
    pub fn drive(&self, tick: u64) {
        let shift = (tick / 4) as f64 * TICK_SHIFT_S;
        if tick.is_multiple_of(4) {
            let reps: Vec<RepFov> = self
                .reps
                .iter()
                .map(|r| RepFov::new(r.t_start + shift, r.t_end + shift, r.fov))
                .collect();
            self.server.ingest_batch(&UploadBatch {
                provider_id: 1_000 + tick / 4,
                video_id: 0,
                reps,
            });
        }
        let probes: Vec<Query> = self
            .probes
            .iter()
            .map(|q| Query::new(q.t_start + shift, q.t_end + shift, q.center, q.radius_m))
            .collect();
        self.server
            .query_batch(&probes, &QueryOptions::default(), self.threads);
        // One admitted probe per tick drives the admission counters (and,
        // between ingests, reads a warm result-cache entry).
        let _ = self.server.query_admitted(
            1 + tick % 8,
            &probes[tick as usize % probes.len()],
            &QueryOptions::default(),
        );
    }

    /// The query-only half of [`Self::drive`]: runs every probe once
    /// through admission at `tick`'s time shift, ingesting nothing. A
    /// capture pass over a warmed stack is exactly this, so `swag
    /// replay` can rebuild the same store state by re-driving the warm
    /// ticks and skipping the probes.
    pub fn probe(&self, tick: u64) {
        let shift = (tick / 4) as f64 * TICK_SHIFT_S;
        for (i, q) in self.probes.iter().enumerate() {
            let probe = Query::new(q.t_start + shift, q.t_end + shift, q.center, q.radius_m);
            let _ = self.server.query_admitted(
                1 + (tick + i as u64) % 8,
                &probe,
                &QueryOptions::default(),
            );
        }
    }

    /// Fires a burst of requests from one client well past its
    /// token-bucket burst (250), guaranteeing rate-limited sheds — each
    /// one an always-kept wide event. Returns how many were shed.
    pub fn shed_burst(&self) -> usize {
        let q = &self.probes[0];
        (0..300)
            .filter(|_| {
                self.server
                    .query_admitted(999, q, &QueryOptions::default())
                    .is_err()
            })
            .count()
    }
}

/// Events per second of a windowed view, `None`-safe.
fn rate(view: &Option<WindowView>) -> f64 {
    view.as_ref().map_or(0.0, WindowView::rate_per_s)
}

/// Windowed p50/p99 of a histogram view, as `(p50, p99)`.
fn quantiles(view: &Option<WindowView>) -> (u64, u64) {
    view.as_ref()
        .and_then(|v| v.sample.histogram())
        .map_or((0, 0), |h| (h.p50(), h.p99()))
}

/// Sum per second carried by a windowed histogram view (e.g. rows/s).
fn sum_rate(view: &Option<WindowView>) -> f64 {
    match view {
        Some(v) if v.span_micros > 0 => {
            let sum = v.sample.histogram().map_or(0, |h| h.sum);
            sum as f64 / (v.span_micros as f64 / 1e6)
        }
        _ => 0.0,
    }
}

fn gauge(registry: &Registry, name: &str) -> i64 {
    match registry.get(name) {
        Some(Metric::Gauge(g)) => g.get(),
        _ => 0,
    }
}

/// Renders the `swag top` screen from the surface's windowed views and
/// the latest SLO evaluations.
pub fn render_dashboard(stack: &LiveStack, statuses: &[SloStatus]) -> String {
    let windows = stack.surface.windows();
    let view = |name: &str| windows.view(name, usize::MAX);
    let spec = windows.spec();
    let mut out = String::new();

    let q = view("swag_server_query_micros");
    let (q50, q99) = quantiles(&q);
    out.push_str(&format!(
        "swag top — live ops surface   window {:.1}s x {}   rotations {}\n",
        spec.width_micros as f64 / 1e6,
        spec.capacity,
        windows.rotations(),
    ));
    out.push_str(&format!(
        "queries {:>8.1}/s   p50 {q50} us   p99 {q99} us   hits index {:.1}/s delta {:.1}/s\n",
        rate(&q),
        rate(&view(&labeled_name(
            "swag_server_hits_total",
            &[("src", "index")]
        ))),
        rate(&view(&labeled_name(
            "swag_server_hits_total",
            &[("src", "delta")]
        ))),
    ));
    out.push_str(&format!(
        "epoch age {} us   staged delta {}   compiled plans {}   shards {}\n\n",
        gauge(&stack.registry, "swag_server_epoch_age_micros"),
        gauge(&stack.registry, "swag_server_staged_delta"),
        gauge(&stack.registry, "swag_server_compiled_plans"),
        stack.server.stats().shards,
    ));

    out.push_str(&format!(
        "{:<12} {:>10} {:>9} {:>9} {:>12} {:>12}\n",
        "operator", "rate/s", "p50 us", "p99 us", "rows_in/s", "rows_out/s"
    ));
    for op in ["index_scan", "delta_scan", "ranking"] {
        let micros = view(&labeled_name("swag_server_op_micros", &[("op", op)]));
        let (p50, p99) = quantiles(&micros);
        out.push_str(&format!(
            "{op:<12} {:>10.1} {p50:>9} {p99:>9} {:>12.0} {:>12.0}\n",
            rate(&micros),
            sum_rate(&view(&labeled_name(
                "swag_server_op_rows_in",
                &[("op", op)]
            ))),
            sum_rate(&view(&labeled_name(
                "swag_server_op_rows_out",
                &[("op", op)]
            ))),
        ));
    }
    let (shards50, shards99) = quantiles(&view("swag_server_shards_probed"));
    out.push_str(&format!(
        "shards probed per query: p50 {shards50} p99 {shards99}\n\n"
    ));

    let (qw50, qw99) = quantiles(&view("swag_exec_queue_wait_micros"));
    let (sw50, sw99) = quantiles(&view("swag_exec_steal_wait_micros"));
    out.push_str(&format!(
        "executor  tasks {:>8.1}/s  steals {:>6.1}/s  queue_wait p50/p99 {qw50}/{qw99} us  steal_wait {sw50}/{sw99} us\n",
        rate(&view("swag_exec_tasks_total")),
        rate(&view("swag_exec_steals_total")),
    ));
    let (rb50, rb99) = quantiles(&view("swag_server_snapshot_rebuild_micros"));
    out.push_str(&format!(
        "publish   {:>8.2}/s  rebuild p50/p99 {rb50}/{rb99} us  retention dropped {:.1}/s  ingested {:.1}/s\n",
        rate(&view("swag_server_publishes_total")),
        rate(&view("swag_server_retention_dropped_total")),
        rate(&view("swag_server_segments_ingested_total")),
    ));
    let cache_hits = rate(&view("swag_server_cache_hits_total"));
    let cache_lookups = cache_hits + rate(&view("swag_server_cache_misses_total"));
    let shed_rate_limited = rate(&view(&labeled_name(
        "swag_server_shed_total",
        &[("reason", "rate_limited")],
    )));
    let shed_overloaded = rate(&view(&labeled_name(
        "swag_server_shed_total",
        &[("reason", "overloaded")],
    )));
    let shed_rate = shed_rate_limited + shed_overloaded;
    out.push_str(&format!(
        "cache     {:>8.1}/s lookups  hit rate {:>5.1}%  entries {}  evictions {:.1}/s\n",
        cache_lookups,
        if cache_lookups > 0.0 {
            100.0 * cache_hits / cache_lookups
        } else {
            0.0
        },
        gauge(&stack.registry, "swag_server_cache_entries"),
        rate(&view("swag_server_cache_evictions_total")),
    ));
    out.push_str(&format!(
        "admission {:>8.1}/s admitted  shed {shed_rate:.2}/s (rate_limited {shed_rate_limited:.2}/s, overloaded {shed_overloaded:.2}/s)  queue depth {}\n",
        rate(&view("swag_server_admitted_total")),
        gauge(&stack.registry, "swag_server_queue_depth"),
    ));
    out.push_str(&format!(
        "events    {:>8.1}/s recorded  kept {:.1}/s (tail-sampled; sheds and slow always kept)\n",
        rate(&view(&labeled_name(
            "swag_server_events_total",
            &[("stage", "pushed")]
        ))),
        rate(&view(&labeled_name(
            "swag_server_events_total",
            &[("stage", "kept")]
        ))),
    ));
    match stack.server.durability_stats() {
        Some(d) => out.push_str(&format!(
            "durable   wal lag {} B (seq {})  snapshots {} (age {})  cold {} runs / {} segs\n\n",
            d.wal_lag_bytes,
            d.wal_seq,
            d.snapshots_written,
            d.last_snapshot_age_micros
                .map_or("never".to_string(), |us| format!("{us} us")),
            d.cold_runs,
            d.cold_segments,
        )),
        None => out.push_str("durable   off (memory-only; pass --data-dir DIR)\n\n"),
    }

    for s in statuses {
        out.push_str(&format!(
            "slo {:<16} {:<8} burn short {:>7.2}x long {:>7.2}x  ({}/{} good, objective {:.0}% <= {} us)\n",
            s.spec.name,
            s.state.as_str(),
            s.short.burn,
            s.long.burn,
            s.long.good,
            s.long.total,
            s.spec.objective * 100.0,
            s.spec.threshold_micros,
        ));
    }
    out
}
