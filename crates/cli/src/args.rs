//! Minimal flag parser: `--key value`, `--flag`, and positionals.

use std::collections::HashMap;

/// Parsed command-line arguments.
pub struct ArgParser {
    options: HashMap<String, String>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

/// Flags that take no value.
const BARE_FLAGS: &[&str] = &[
    "--noise",
    "--no-direction-filter",
    "--coverage",
    "--quality",
    "--explain",
    "--analyze",
    "--once",
    "--follow",
    "--slow",
    "--shed",
];

impl ArgParser {
    /// Splits raw arguments into options, bare flags and positionals.
    pub fn new(argv: Vec<String>) -> Self {
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut it = argv.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(stripped) = arg.strip_prefix("--") {
                if BARE_FLAGS.contains(&arg.as_str()) {
                    flags.push(arg.clone());
                } else if let Some(value) = it.next() {
                    options.insert(stripped.to_string(), value);
                } else {
                    // Trailing option without value: record empty, callers
                    // will report a good error via `require`.
                    options.insert(stripped.to_string(), String::new());
                }
            } else {
                positionals.push(arg);
            }
        }
        ArgParser {
            options,
            flags,
            positionals,
        }
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options
            .get(key)
            .map(String::as_str)
            .filter(|s| !s.is_empty())
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// An optional f64 option with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// A required f64 option.
    pub fn require_f64(&self, key: &str) -> Result<f64, String> {
        self.require(key)?
            .parse()
            .map_err(|e| format!("--{key}: {e}"))
    }

    /// An optional u64 option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// Whether a bare flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The positional arguments.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ArgParser {
        ArgParser::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn options_flags_and_positionals() {
        let p = parse(&[
            "--seed", "7", "--noise", "a.csv", "b.csv", "--thresh", "0.5",
        ]);
        assert_eq!(p.get("seed"), Some("7"));
        assert!(p.has_flag("--noise"));
        assert_eq!(p.positionals(), &["a.csv".to_string(), "b.csv".to_string()]);
        assert_eq!(p.get_f64("thresh", 0.0).unwrap(), 0.5);
    }

    #[test]
    fn defaults_and_requirements() {
        let p = parse(&[]);
        assert_eq!(p.get_f64("thresh", 0.5).unwrap(), 0.5);
        assert_eq!(p.get_u64("seed", 42).unwrap(), 42);
        assert!(p.require("snapshot").is_err());
    }

    #[test]
    fn bad_numbers_error_with_key() {
        let p = parse(&["--radius", "abc"]);
        let err = p.require_f64("radius").unwrap_err();
        assert!(err.contains("--radius"));
    }

    #[test]
    fn trailing_option_without_value() {
        let p = parse(&["--out"]);
        assert!(p.get("out").is_none());
        assert!(p.require("out").is_err());
    }
}
