//! Durability subcommands: `swag retract` and `swag recover`.

use swag_core::RepFov;
use swag_server::{save_snapshot, CloudServer, SegmentRef, ServerConfig};

use crate::args::ArgParser;
use crate::commands::{camera, load_server};
use crate::write_bytes;

/// `swag retract` — remove a provider's segments from a snapshot file,
/// or (with `--data-dir`) durably from a data directory: the retraction
/// is WAL-logged, so it survives a crash without rewriting anything.
pub fn retract(args: ArgParser) -> Result<(), String> {
    let provider = args.get_u64("provider", u64::MAX)?;
    if provider == u64::MAX {
        return Err("missing required --provider".into());
    }
    let server = load_server(&args)?;
    let removed = server.retract_provider(provider);
    if let Some(snapshot_path) = args.get("snapshot") {
        let bytes = save_snapshot(&server).map_err(|e| e.to_string())?;
        write_bytes(snapshot_path, &bytes)?;
    } else {
        server.quiesce();
    }
    eprintln!(
        "retracted {removed} segments of provider {provider}; {} remain",
        server.stats().segments
    );
    Ok(())
}

/// Order-sensitive FNV-1a over every exported record: the recovery
/// fingerprint `swag recover` prints. Recovery is deterministic, so two
/// recoveries of the same directory must print the same digest — the
/// crash-recovery smoke test in CI greps exactly that.
fn records_digest(records: &[(RepFov, SegmentRef)]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    };
    for (rep, source) in records {
        eat(source.provider_id);
        eat(source.video_id);
        eat(u64::from(source.segment_idx));
        eat(rep.t_start.to_bits());
        eat(rep.t_end.to_bits());
        eat(rep.fov.p.lat.to_bits());
        eat(rep.fov.p.lng.to_bits());
        eat(rep.fov.theta.to_bits());
    }
    h
}

/// `swag recover` — open a durable data directory, replay its WAL on
/// top of the latest incremental snapshot, and report what came back.
pub fn recover(args: ArgParser) -> Result<(), String> {
    let dir = args.require("data-dir")?;
    let server =
        CloudServer::open(dir, camera(), ServerConfig::default()).map_err(|e| e.to_string())?;
    let stats = server.stats();
    let d = server
        .durability_stats()
        .ok_or("data dir opened without durability")?;
    let records: Vec<(RepFov, SegmentRef)> = server
        .export_records()
        .into_iter()
        .map(|rec| (rec.rep, rec.source))
        .collect();
    println!(
        "recovered {} segments across {} shards from '{dir}'",
        stats.segments, stats.shards
    );
    // Scripted callers (CI) grep this exact line and compare digests
    // across recovery runs, so keep its shape stable.
    println!("recovery digest 0x{:016x}", records_digest(&records));
    println!(
        "wal: next seq {}, {} B unsynced; cold tier: {} runs, {} segments",
        d.wal_seq, d.wal_lag_bytes, d.cold_runs, d.cold_segments
    );
    Ok(())
}
