//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! behind parking_lot's panic-free guard API (no `Result` on acquisition;
//! a poisoned lock is recovered, matching parking_lot's no-poisoning
//! semantics).

use std::sync::PoisonError;

/// `parking_lot::RwLock` look-alike over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `parking_lot::Mutex` look-alike over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Mutex guard.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
