//! No-op `Serialize` / `Deserialize` derives for the offline serde stub.
//!
//! The derives expand to nothing: in-tree code never calls serde-based
//! (de)serialisation, it only decorates types with the derives.

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
