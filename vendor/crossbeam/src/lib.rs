//! Offline stand-in for the `crossbeam::thread::scope` API, built on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Semantics differ from real crossbeam in one way: a panicking child
//! thread makes the enclosing `scope` call panic at join time instead of
//! returning `Err`. Every call site in this workspace immediately
//! `unwrap()`s / `expect()`s the result, so the observable behaviour — a
//! panic naming the failure — is the same.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// A scope handle: spawn children that may borrow from the enclosing
    /// stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so
        /// children can spawn grandchildren.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = vec![1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    total.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    )
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = std::sync::atomic::AtomicU64::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }
}
