//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, `Strategy` with `prop_map`/`boxed`,
//! range and tuple/array strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `prop::sample::Index`, `any::<T>()`, `prop_oneof!`,
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! the case number and assertion, not a minimised input), and sampling is
//! plain uniform rather than bias-weighted. Case generation is
//! deterministic per test name, so failures reproduce across runs.

pub mod test_runner {
    //! Deterministic RNG, per-test configuration, and case outcomes.

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input; the case is skipped.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Convenience constructor used by the assertion macros.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 generator; seeded from the test name so every run of a
    /// given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG from an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// RNG seeded by hashing `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                func: f,
            }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.func)(self.source.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
                }
            }
        )+};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].sample(rng))
        }
    }

    /// String-literal strategies. Real proptest interprets the literal as
    /// a full regex; this stand-in only honours a trailing `{lo,hi}`
    /// repetition bound and draws printable characters (ASCII-weighted,
    /// with separators and the occasional non-ASCII scalar), which covers
    /// the `"\\PC{lo,hi}"` patterns used in this workspace.
    impl Strategy for str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = repetition_bounds(self).unwrap_or((0, 32));
            let len = lo + rng.below(hi - lo + 1);
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                let c = match rng.below(20) {
                    0..=13 => (0x20 + rng.below(0x5f)) as u8 as char,
                    14 => ',',
                    15 => '\n',
                    16 => '\t',
                    17 => '"',
                    _ => loop {
                        // Random printable non-ASCII scalar.
                        if let Some(c) = char::from_u32(0xa1 + rng.below(0xfff) as u32) {
                            if !c.is_control() {
                                break c;
                            }
                        }
                    },
                };
                out.push(c);
            }
            out
        }
    }

    /// Parses a trailing `{n}` or `{lo,hi}` regex repetition.
    fn repetition_bounds(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_suffix('}')?;
        let (_, rep) = body.rsplit_once('{')?;
        match rep.split_once(',') {
            Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
            None => {
                let n = rep.trim().parse().ok()?;
                Some((n, n))
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary: Sized {
        /// Draws one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, wide-range values; real proptest also generates
            // NaN/infinities, which no test here relies on.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool::ANY`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `bool` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample::Index`).

    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// A deferred index: generated unconstrained, projected onto a
    /// collection length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Index into a collection of `len` elements; `len` must be
        /// non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed at {}:{}: {}", file!(), line!(), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "{:?} != {:?}", lhs, rhs);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs == rhs, "{:?} != {:?}: {}", lhs, rhs, format!($($fmt)+));
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(lhs != rhs, "{:?} == {:?}", lhs, rhs);
    }};
}

/// Skips the current case (without failing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let outcome = (|rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $p = $crate::strategy::Strategy::sample(&($s), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })(&mut rng);
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property failed on case {case}: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced module re-exports (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_seed(42);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let neg = Strategy::sample(&(-50i32..-10), &mut rng);
            assert!((-50..-10).contains(&neg));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::test_runner::TestRng::from_seed(7);
        let strat = crate::collection::vec((0u8..4, prop::bool::ANY), 2..6);
        for _ in 0..200 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&(n, _)| n < 4));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        let strat = prop_oneof![(0u8..1).prop_map(|_| 'a'), (0u8..1).prop_map(|_| 'b')];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(Strategy::sample(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), arr in [0.0f64..1.0, 0.0f64..1.0]) {
            prop_assume!(a + b > 0);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(arr.len(), 2);
            prop_assert_ne!(arr[0], 2.0);
        }

        #[test]
        fn index_projects_into_collections(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }
}
