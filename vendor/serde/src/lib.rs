//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on public types purely
//! as decoration — nothing in-tree actually serialises through serde (the
//! wire and snapshot codecs are hand-written in `swag-core` /
//! `swag-server`). With no network access to fetch the real crate, this
//! stub supplies the two marker traits and no-op derive macros so the
//! derives compile to nothing.

/// Marker for serialisable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserialisable types (no-op stand-in).
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialisation marker mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
