//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::{from_seed, seed_from_u64}`, and the
//! `Rng` extension methods `random::<T>()` / `random_range(..)`.
//!
//! The container this repository grows in has no network access, so the
//! real crates.io `rand` cannot be fetched; the workspace `[patch]`es it
//! with this implementation. The generator is SplitMix64 — statistically
//! solid for the seeded simulation workloads here (uniformity, Box–Muller
//! Gaussian inputs), though it is *not* the real `StdRng` stream and is
//! explicitly not cryptographic.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Random: Sized {
    /// Draws one uniform value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Random>::random(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as Random>::random(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its natural full range
    /// (`[0, 1)` for floats).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform sample from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Legacy 0.8-style alias for [`Rng::random_range`].
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::StdRng { state };
        for b in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            b.copy_from_slice(&bytes[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 here; the real
    /// crate uses ChaCha12 — streams differ, statistical behaviour for
    /// this workspace's workloads does not).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[..8]);
            StdRng {
                state: u64::from_le_bytes(bytes),
            }
        }

        fn seed_from_u64(state: u64) -> Self {
            // Pre-mix so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: state ^ 0x5155_7472_4c5f_7a6b,
            };
            rng.state = rng.next_u64();
            rng
        }
    }

    /// Alias: the small generator is the same stub.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn float_range_is_half_open_unit() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.random_range(-3.0f64..7.5);
            assert!((-3.0..7.5).contains(&x));
            let n = rng.random_range(5u32..9);
            assert!((5..9).contains(&n));
            let m = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&m));
        }
    }

    #[test]
    fn mean_is_plausibly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
