//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors the subset of criterion's API the bench targets use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, throughput annotations) with a simple wall-clock
//! sampler instead of criterion's statistical machinery.
//!
//! Like real criterion, when the binary is executed by `cargo test`
//! (no `--bench` argument) every benchmark body runs exactly once as a
//! smoke test, so the test suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The sampler here runs each
/// batch identically; the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// Mean wall-clock time per iteration from the last `iter*` call.
    last_mean: Option<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run bodies once (under `cargo test`).
    Smoke,
    /// Measure wall-clock time (under `cargo bench`).
    Measure,
}

/// Budget per measured benchmark; modest because the harness targets
/// single-core CI containers.
const MEASURE_BUDGET: Duration = Duration::from_millis(120);

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm up and pick an iteration count that fills the budget.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MEASURE_BUDGET || n >= 1 << 24 {
                self.last_mean = Some(elapsed / n as u32);
                return;
            }
            n = if elapsed.is_zero() {
                n * 16
            } else {
                // Aim straight for the budget with 2x headroom.
                (n * 2)
                    .max((n as u128 * MEASURE_BUDGET.as_nanos() / elapsed.as_nanos().max(1)) as u64)
            };
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            return;
        }
        let mut timed = Duration::ZERO;
        let mut n: u64 = 0;
        while timed < MEASURE_BUDGET && n < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            n += 1;
        }
        self.last_mean = Some(timed / n.max(1) as u32);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench to the target; cargo test does not.
        let bench = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if bench { Mode::Measure } else { Mode::Smoke },
        }
    }
}

impl Criterion {
    /// Parses command-line arguments (kept for API parity; detection
    /// already happened in `default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self.mode, &id.id, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sample count hint; accepted for API parity, the sampler is
    /// budget-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the work-per-iteration used in rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.mode, &full, self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion.mode, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    mode: Mode,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        mode,
        last_mean: None,
    };
    f(&mut bencher);
    if mode == Mode::Smoke {
        return;
    }
    match bencher.last_mean {
        Some(mean) => {
            let rate = throughput.map(|t| rate_suffix(t, mean)).unwrap_or_default();
            println!("{name:<56} time: {}{rate}", fmt_duration(mean));
        }
        None => println!("{name:<56} (no measurement)"),
    }
}

fn rate_suffix(throughput: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Bytes(n) => {
            format!("  thrpt: {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => format!("  thrpt: {:.0} elem/s", n as f64 / secs),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runner invoked by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 8), &8u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion { mode: Mode::Smoke };
        sample_bench(&mut c);
    }

    #[test]
    fn measure_mode_reports_a_mean() {
        let mut b = Bencher {
            mode: Mode::Measure,
            last_mean: None,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.last_mean.is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("vga").id, "vga");
    }
}
