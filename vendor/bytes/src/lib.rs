//! Offline stand-in for the `bytes` crate: the `Buf`/`BufMut` traits and
//! `Bytes`/`BytesMut` containers, implemented over `Vec<u8>`/`Arc<[u8]>`.
//! Covers the API surface the workspace codecs use (little-endian
//! fixed-width reads/writes, `freeze`, `slice`, `to_vec`).

use std::sync::Arc;

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize) {
        for _ in 0..n {
            self.get_u8();
        }
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable immutable byte buffer (shared `Arc<[u8]>` view).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-view.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len() - self.read
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Removes all contents.
    pub fn clear(&mut self) {
        self.inner.clear();
        self.read = 0;
    }

    /// Converts into an immutable [`Bytes`] (unread portion).
    pub fn freeze(self) -> Bytes {
        let mut v = self.inner;
        if self.read > 0 {
            v.drain(..self.read);
        }
        Bytes::from(v)
    }

    /// Copies the unread contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner[self.read..]
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.inner[read..]
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.inner[self.read..self.read + dst.len()]);
        self.read += dst.len();
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v, read: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_fixed_width() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i32_le(-5);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 4);
        let mut r = &frozen[..];
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_slice_and_buf_cursor() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut cur = s.clone();
        assert_eq!(cur.get_u8(), 2);
        assert_eq!(cur.remaining(), 2);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        r.get_u32_le();
    }
}
