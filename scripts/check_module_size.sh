#!/usr/bin/env bash
# Module-size guard: no Rust source file under crates/*/src/ may exceed
# MAX_LINES. Keeping modules small is what keeps the layered engine
# layered — when a file grows past the cap, split it along an operator
# or responsibility boundary instead of raising the cap.
#
# Allowlist: files that predate the guard and have a documented reason
# to stay monolithic. Shrink this list; never grow it without a matching
# note here.
#   crates/bench/src/bin/figures.rs — one self-contained binary emitting
#     every paper figure; splitting it would scatter a single report.
set -euo pipefail

MAX_LINES=800
ALLOWLIST=(
  "crates/bench/src/bin/figures.rs"
)

cd "$(dirname "$0")/.."

allowed() {
  local f="$1"
  for a in "${ALLOWLIST[@]}"; do
    [[ "$f" == "$a" ]] && return 0
  done
  return 1
}

fail=0
while IFS= read -r f; do
  lines=$(wc -l < "$f")
  if (( lines > MAX_LINES )); then
    if allowed "$f"; then
      echo "allow: $f ($lines lines, allowlisted)"
    else
      echo "FAIL:  $f ($lines lines > $MAX_LINES)" >&2
      fail=1
    fi
  fi
done < <(find crates -path '*/src/*' -name '*.rs' | sort)

# Allowlisted files that dropped back under the cap should be delisted.
for a in "${ALLOWLIST[@]}"; do
  if [[ -f "$a" ]] && (( $(wc -l < "$a") <= MAX_LINES )); then
    echo "NOTE:  $a is now under $MAX_LINES lines - remove it from the allowlist"
  fi
done

if (( fail )); then
  echo "module-size guard failed: split the offending module(s)" >&2
  exit 1
fi
echo "module-size guard OK (cap $MAX_LINES lines)"
